//! Event-driven reactor TCP transport: one poll loop for every peer.
//!
//! [`TcpMesh`](crate::tcp::TcpMesh) spends two threads per connection (a
//! reader and, effectively, a writer inside `send`), which caps a process at
//! a few hundred peers. `ReactorMesh` multiplexes *all* connections of one
//! endpoint onto a single reactor thread built on a hand-rolled `epoll`
//! wrapper ([`crate::sys`]): readiness-driven reads decode frames
//! incrementally out of a flat buffer ([`decode_frame_at`]), writes coalesce
//! every queued payload into one pooled batch buffer per wakeup (the
//! `send_batch` path and the plain `send` path share it), and a
//! [`DeadlineQueue`] fires reconnect backoff and keepalives in
//! virtual-deadline order. Torn links surface as
//! [`PeerEvent`]s for the membership layer, exactly as they do on the
//! threaded transport.
//!
//! Topologies: [`ReactorMesh::local`] builds a full loopback mesh,
//! [`ReactorMesh::star`] a hub-and-spokes cluster (node 0 connected to every
//! other node — the shape the 256-peer soak and `perf net` bench use), and
//! [`ReactorMesh::join`] the distributed listen/dial dance of
//! `TcpMesh::join`.
//!
//! Sends are asynchronous: `send` enqueues and the reactor drains. A peer
//! that stops draining accumulates queued bytes until the per-peer budget
//! ([`ReactorTuning::max_queued_bytes`]) is hit, at which point `send`
//! fails with [`NetError::Backpressure`] instead of growing without bound.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use sdso_obs::{EventKind, MonoClock, Recorder, THREAD_ROLE_DIALER, THREAD_ROLE_REACTOR};

use crate::deadline::{Backoff, DeadlineQueue};
use crate::endpoint::{check_peer, Endpoint, NodeId, PeerEvent};
use crate::error::NetError;
use crate::frame::{append_frame, decode_frame_at};
use crate::message::{Incoming, Payload};
use crate::metrics::{obs_class, NetMetrics, NetMetricsSnapshot};
use crate::sys::{Interest, Poller, Ready, WakeHandle};
use crate::time::{SimInstant, SimSpan};

/// Frame `from` id reserved for reactor keepalives; filtered before the
/// application sees them and excluded from protocol metrics.
const KEEPALIVE_FROM: NodeId = NodeId::MAX;

/// Poll token of the eventfd waker.
const TOKEN_WAKER: u64 = u64::MAX;
/// Poll token of the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX - 1;
/// Poll tokens at or above this are handshake-pending inbound connections.
const TOKEN_PENDING_BASE: u64 = 1 << 32;

/// Per-`read` syscall chunk size.
const READ_CHUNK: usize = 64 * 1024;
/// Bytes of queued payloads coalesced into one write buffer per refill.
const WRITE_COALESCE_BUDGET: usize = 256 * 1024;

/// Timeout, backoff, keepalive, and queue-budget tuning for a
/// [`ReactorEndpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReactorTuning {
    /// Timeout for each (re)connection attempt.
    pub connect_timeout: Duration,
    /// First reconnect backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff growth cap.
    pub backoff_max: Duration,
    /// Backed-off reconnection attempts (after the immediate one) before the
    /// link is declared dead and sends to it fail for good.
    pub max_reconnect_attempts: u32,
    /// Interval between keepalive frames on idle links; `Duration::ZERO`
    /// disables keepalives.
    pub keepalive_interval: Duration,
    /// Per-peer cap on queued (accepted but unwritten) payload bytes; sends
    /// beyond it fail with [`NetError::Backpressure`].
    pub max_queued_bytes: usize,
}

impl Default for ReactorTuning {
    fn default() -> Self {
        ReactorTuning {
            connect_timeout: Duration::from_secs(5),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
            max_reconnect_attempts: 8,
            keepalive_interval: Duration::from_secs(1),
            max_queued_bytes: 32 * 1024 * 1024,
        }
    }
}

/// State shared between the application-facing endpoint and its reactor
/// thread. All flags are advisory snapshots — races only shift which error
/// path a racing send takes, never its safety.
#[derive(Debug)]
struct Shared {
    /// Accepted-but-unwritten payload bytes per peer (backpressure gauge).
    queued: Vec<AtomicUsize>,
    /// Whether a live connection to the peer exists right now.
    link_up: Vec<AtomicBool>,
    /// Whether the link is permanently dead (reconnect budget exhausted).
    dead: Vec<AtomicBool>,
    /// Membership: sends to inactive peers are dropped silently.
    active: Vec<AtomicBool>,
    /// Link events queued for [`Endpoint::take_peer_events`].
    peer_events: Mutex<Vec<PeerEvent>>,
    /// Collapses app-side wakeups between reactor command drains.
    notified: AtomicBool,
}

impl Shared {
    fn new(n: usize) -> Arc<Shared> {
        Arc::new(Shared {
            queued: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            link_up: (0..n).map(|_| AtomicBool::new(false)).collect(),
            dead: (0..n).map(|_| AtomicBool::new(false)).collect(),
            active: (0..n).map(|_| AtomicBool::new(true)).collect(),
            peer_events: Mutex::new(Vec::new()),
            notified: AtomicBool::new(false),
        })
    }
}

/// Commands from the endpoint (and the dialer thread) to the reactor.
enum Cmd {
    /// Enqueue one payload for `to`.
    Send { to: NodeId, payload: Payload },
    /// Enqueue several payloads for `to`, coalesced into one flush.
    Batch { to: NodeId, payloads: Vec<Payload> },
    /// Test hook / fault injection: tear the connection down now.
    InjectDisconnect(NodeId),
    /// Ask the reactor to (re)dial `peer` (membership re-join).
    Redial(NodeId),
    /// Outcome of a dial request, reported by the dialer thread.
    Dialed { peer: NodeId, stream: Result<TcpStream, std::io::Error> },
    /// Stop the loop and close everything.
    Shutdown,
}

/// A dial order for the auxiliary dialer thread.
struct DialReq {
    peer: NodeId,
    addr: SocketAddr,
}

/// Timers multiplexed on the reactor's [`DeadlineQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Timer {
    /// Periodic keepalive sweep over all live links.
    Keepalive,
    /// Next reconnect attempt for a torn dial-side link.
    Reconnect(NodeId),
}

/// One live connection inside the reactor.
struct Conn {
    stream: TcpStream,
    /// Flat inbound buffer; frames are decoded out of it incrementally.
    rbuf: Vec<u8>,
    /// Encoded outbound bytes in flight (pooled).
    wbuf: BytesMut,
    /// Bytes of `wbuf` already written to the socket.
    woff: usize,
    /// Whether the poll registration currently includes write interest.
    want_write: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: crate::pool::global().get(),
            woff: 0,
            want_write: false,
        }
    }
}

/// An inbound connection that has not yet delivered its 2-byte peer-id
/// handshake.
struct PendingConn {
    stream: TcpStream,
    got: [u8; 2],
    len: usize,
}

/// Constructors for reactor-driven TCP clusters.
#[derive(Debug)]
pub struct ReactorMesh;

impl ReactorMesh {
    /// Builds an `n`-node full mesh over loopback, one single-threaded
    /// reactor per endpoint.
    ///
    /// # Errors
    ///
    /// Propagates socket and epoll setup errors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds `NodeId::MAX - 1`.
    pub fn local(n: usize) -> Result<Vec<ReactorEndpoint>, NetError> {
        ReactorMesh::local_with(n, ReactorTuning::default())
    }

    /// [`ReactorMesh::local`] with explicit tuning.
    ///
    /// # Errors
    ///
    /// Propagates socket and epoll setup errors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds `NodeId::MAX - 1`.
    pub fn local_with(n: usize, tuning: ReactorTuning) -> Result<Vec<ReactorEndpoint>, NetError> {
        assert!(n > 0, "cluster must have at least one node");
        assert!(n < usize::from(NodeId::MAX), "cluster too large");
        // A full mesh holds both ends of every pairwise connection in this
        // process: n*(n-1) stream fds plus each endpoint's listener, epoll
        // and wakeup fds. At 256 nodes that is ~66k descriptors — far past
        // the usual 1024 soft limit, so bump it like `star_with` does.
        crate::sys::raise_nofile_limit((n as u64) * (n as u64) + 4 * (n as u64) + 64);
        let listeners: Vec<TcpListener> =
            (0..n).map(|_| TcpListener::bind(("127.0.0.1", 0))).collect::<Result<_, _>>()?;
        let addrs: Vec<SocketAddr> =
            listeners.iter().map(TcpListener::local_addr).collect::<Result<_, _>>()?;
        let mut streams: Vec<Vec<Option<TcpStream>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        // Symmetric assignment into streams[i][j] and streams[j][i]: no
        // iterator form can hold both mutable slots at once.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in (i + 1)..n {
                let out = TcpStream::connect(addrs[i])?;
                let (inc, _) = listeners[i].accept()?;
                out.set_nodelay(true)?;
                inc.set_nodelay(true)?;
                streams[j][i] = Some(out);
                streams[i][j] = Some(inc);
            }
        }
        let all_addrs: Vec<Option<SocketAddr>> = addrs.into_iter().map(Some).collect();
        streams
            .into_iter()
            .zip(listeners)
            .enumerate()
            .map(|(id, (peers, listener))| {
                let links: Vec<bool> = (0..n).map(|p| p != id).collect();
                ReactorEndpoint::spawn(
                    id as NodeId,
                    n,
                    peers,
                    Some(listener),
                    all_addrs.clone(),
                    links,
                    tuning,
                )
            })
            .collect()
    }

    /// Builds an `n`-node hub-and-spokes cluster over loopback: node 0 (the
    /// hub) is connected to every spoke, spokes are connected only to the
    /// hub. `n - 1` connections total instead of `n·(n-1)/2`, which is what
    /// makes 256+ peers practical on one machine.
    ///
    /// Sends between two spokes fail with [`NetError::Disconnected`]; route
    /// through the hub at the protocol layer instead.
    ///
    /// # Errors
    ///
    /// Propagates socket and epoll setup errors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is less than two or exceeds `NodeId::MAX - 1`.
    pub fn star(n: usize) -> Result<Vec<ReactorEndpoint>, NetError> {
        ReactorMesh::star_with(n, ReactorTuning::default())
    }

    /// [`ReactorMesh::star`] with explicit tuning.
    ///
    /// # Errors
    ///
    /// Propagates socket and epoll setup errors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is less than two or exceeds `NodeId::MAX - 1`.
    pub fn star_with(n: usize, tuning: ReactorTuning) -> Result<Vec<ReactorEndpoint>, NetError> {
        assert!(n >= 2, "a star needs a hub and at least one spoke");
        assert!(n < usize::from(NodeId::MAX), "cluster too large");
        crate::sys::raise_nofile_limit((n as u64) * 4 + 64);
        let hub_listener = TcpListener::bind(("127.0.0.1", 0))?;
        let hub_addr = hub_listener.local_addr()?;
        let mut hub_row: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        let mut spoke_streams: Vec<Option<TcpStream>> = Vec::with_capacity(n - 1);
        for hub_slot in hub_row.iter_mut().skip(1) {
            let out = TcpStream::connect(hub_addr)?;
            let (inc, _) = hub_listener.accept()?;
            out.set_nodelay(true)?;
            inc.set_nodelay(true)?;
            spoke_streams.push(Some(out));
            *hub_slot = Some(inc);
        }
        let mut addrs: Vec<Option<SocketAddr>> = (0..n).map(|_| None).collect();
        addrs[0] = Some(hub_addr);

        let hub_links: Vec<bool> = (0..n).map(|p| p != 0).collect();
        let mut endpoints = Vec::with_capacity(n);
        endpoints.push(ReactorEndpoint::spawn(
            0,
            n,
            hub_row,
            Some(hub_listener),
            addrs.clone(),
            hub_links,
            tuning,
        )?);
        for (spoke, stream) in spoke_streams.into_iter().enumerate() {
            let id = (spoke + 1) as NodeId;
            let mut row: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
            row[0] = stream;
            let links: Vec<bool> = (0..n).map(|p| p == 0).collect();
            endpoints.push(ReactorEndpoint::spawn(id, n, row, None, addrs.clone(), links, tuning)?);
        }
        Ok(endpoints)
    }

    /// Joins a distributed full mesh as node `id`, given every node's listen
    /// address — the same dance as `TcpMesh::join`: listen on `addrs[id]`,
    /// dial every lower-id peer (sending a 2-byte id handshake), accept one
    /// connection from every higher-id peer.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and rejects malformed handshakes.
    pub fn join(id: NodeId, addrs: &[SocketAddr]) -> Result<ReactorEndpoint, NetError> {
        ReactorMesh::join_with(id, addrs, ReactorTuning::default())
    }

    /// [`ReactorMesh::join`] with explicit tuning.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and rejects malformed handshakes.
    pub fn join_with(
        id: NodeId,
        addrs: &[SocketAddr],
        tuning: ReactorTuning,
    ) -> Result<ReactorEndpoint, NetError> {
        let n = addrs.len();
        if usize::from(id) >= n {
            return Err(NetError::InvalidPeer { peer: id, cluster: n });
        }
        let listener = TcpListener::bind(addrs[usize::from(id)])?;
        let mut peers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        for peer in 0..id {
            let stream = connect_with_retry(addrs[usize::from(peer)], tuning.connect_timeout)?;
            stream.set_nodelay(true)?;
            let mut s = stream.try_clone()?;
            s.write_all(&id.to_le_bytes())?;
            peers[usize::from(peer)] = Some(stream);
        }
        for _ in (id + 1)..n as u16 {
            let (mut stream, _) = listener.accept()?;
            stream.set_nodelay(true)?;
            let mut idbuf = [0u8; 2];
            stream.read_exact(&mut idbuf)?;
            let peer = NodeId::from_le_bytes(idbuf);
            if usize::from(peer) >= n || peer <= id || peers[usize::from(peer)].is_some() {
                return Err(NetError::Codec(format!("bad handshake id {peer}")));
            }
            peers[usize::from(peer)] = Some(stream);
        }
        let links: Vec<bool> = (0..n).map(|p| p != usize::from(id)).collect();
        let addrs: Vec<Option<SocketAddr>> = addrs.iter().copied().map(Some).collect();
        ReactorEndpoint::spawn(id, n, peers, Some(listener), addrs, links, tuning)
    }
}

fn connect_with_retry(addr: SocketAddr, timeout: Duration) -> Result<TcpStream, NetError> {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect_timeout(&addr, timeout) {
            Ok(s) => return Ok(s),
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
}

/// The auxiliary dialer thread: the only blocking connect in the transport.
/// The reactor posts [`DialReq`]s; results come back as [`Cmd::Dialed`] plus
/// a waker nudge. One thread serves all peers — reconnects are rare and the
/// backoff schedule serializes them naturally.
fn spawn_dialer(
    me: NodeId,
    rx: Receiver<DialReq>,
    cmd_tx: Sender<Cmd>,
    waker: WakeHandle,
    connect_timeout: Duration,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        while let Ok(req) = rx.recv() {
            let stream =
                TcpStream::connect_timeout(&req.addr, connect_timeout).and_then(|mut s| {
                    s.set_nodelay(true)?;
                    s.write_all(&me.to_le_bytes())?;
                    Ok(s)
                });
            if cmd_tx.send(Cmd::Dialed { peer: req.peer, stream }).is_err() {
                return;
            }
            waker.wake();
        }
    })
}

/// One node's endpoint over the reactor transport.
///
/// Dropping it shuts the reactor down and joins its threads.
#[derive(Debug)]
pub struct ReactorEndpoint {
    id: NodeId,
    num_nodes: usize,
    shared: Arc<Shared>,
    has_link: Vec<bool>,
    tuning: ReactorTuning,
    cmd_tx: Sender<Cmd>,
    rx: Receiver<Result<Incoming, NetError>>,
    waker: WakeHandle,
    reactor: Option<JoinHandle<()>>,
    dialer: Option<JoinHandle<()>>,
    clock: MonoClock,
    metrics: NetMetrics,
    recorder: Recorder,
    listen_addr_inner: Option<SocketAddr>,
}

impl ReactorEndpoint {
    #[allow(clippy::too_many_arguments)]
    fn spawn(
        id: NodeId,
        num_nodes: usize,
        peers: Vec<Option<TcpStream>>,
        listener: Option<TcpListener>,
        addrs: Vec<Option<SocketAddr>>,
        has_link: Vec<bool>,
        tuning: ReactorTuning,
    ) -> Result<ReactorEndpoint, NetError> {
        let poller = Poller::new()?;
        let waker = WakeHandle::new()?;
        poller.add(&waker, TOKEN_WAKER, Interest::READ)?;
        let mut listen_addr_inner = None;
        if let Some(l) = &listener {
            listen_addr_inner = l.local_addr().ok();
            l.set_nonblocking(true)?;
            poller.add(l, TOKEN_LISTENER, Interest::READ)?;
        }
        let shared = Shared::new(num_nodes);
        let mut conns: Vec<Option<Conn>> = Vec::with_capacity(num_nodes);
        for (peer, stream) in peers.into_iter().enumerate() {
            match stream {
                None => conns.push(None),
                Some(s) => {
                    s.set_nonblocking(true)?;
                    poller.add(&s, peer as u64, Interest::READ)?;
                    shared.link_up[peer].store(true, Ordering::SeqCst);
                    conns.push(Some(Conn::new(s)));
                }
            }
        }
        let (cmd_tx, cmd_rx) = unbounded::<Cmd>();
        let (tx, rx) = unbounded::<Result<Incoming, NetError>>();
        let (dial_tx, dial_rx) = unbounded::<DialReq>();
        let dialer =
            spawn_dialer(id, dial_rx, cmd_tx.clone(), waker.clone(), tuning.connect_timeout);
        let reactor = Reactor {
            me: id,
            n: num_nodes,
            tuning,
            poller,
            waker: waker.clone(),
            shared: Arc::clone(&shared),
            conns,
            queues: (0..num_nodes).map(|_| VecDeque::new()).collect(),
            dirty: vec![false; num_nodes],
            pending: Vec::new(),
            listener,
            addrs,
            has_link: has_link.clone(),
            backoff: (0..num_nodes)
                .map(|_| {
                    Backoff::new(
                        tuning.backoff_base,
                        tuning.backoff_max,
                        tuning.max_reconnect_attempts,
                    )
                })
                .collect(),
            dialing: vec![false; num_nodes],
            timers: DeadlineQueue::new(),
            clock: MonoClock::new(),
            cmd_rx,
            dial_tx,
            tx,
            metrics: NetMetrics::new(),
        };
        let metrics = reactor.metrics.clone();
        let handle = std::thread::spawn(move || reactor.run());
        Ok(ReactorEndpoint {
            id,
            num_nodes,
            shared,
            has_link,
            tuning,
            cmd_tx,
            rx,
            waker,
            reactor: Some(handle),
            dialer: Some(dialer),
            clock: MonoClock::new(),
            metrics,
            recorder: Recorder::disabled(),
            listen_addr_inner,
        })
    }

    fn wake(&self) {
        if !self.shared.notified.swap(true, Ordering::SeqCst) {
            self.waker.wake();
        }
    }

    fn note_send(&self, to: NodeId, payload: &Payload) {
        self.metrics.record_send(payload.class, payload.wire_len());
        self.recorder.record(
            self.clock.micros(),
            EventKind::Send,
            u32::from(to),
            obs_class(payload.class),
            payload.wire_len(),
        );
    }

    fn note_recv(&self, msg: &Incoming) {
        self.metrics.record_recv(msg.payload.class, msg.payload.wire_len());
        self.recorder.record(
            self.clock.micros(),
            EventKind::Recv,
            u32::from(msg.from),
            obs_class(msg.payload.class),
            msg.payload.wire_len(),
        );
    }

    /// Validates a send to `to` against topology, membership, liveness, and
    /// the backpressure budget. `Ok(true)` means "enqueue it", `Ok(false)`
    /// means "drop silently" (removed peer).
    fn admit(&self, to: NodeId, bytes: usize) -> Result<bool, NetError> {
        check_peer(self.id, to, self.num_nodes)?;
        if !self.has_link[usize::from(to)] {
            return Err(NetError::Disconnected);
        }
        if !self.shared.active[usize::from(to)].load(Ordering::SeqCst) {
            return Ok(false);
        }
        if self.shared.dead[usize::from(to)].load(Ordering::SeqCst) {
            return Err(NetError::Disconnected);
        }
        // The higher-id side of a pair dials; the lower-id side can only
        // wait to be re-dialled, so its sends fail while the link is down
        // (mirroring `TcpMesh`).
        if self.id < to && !self.shared.link_up[usize::from(to)].load(Ordering::SeqCst) {
            return Err(NetError::Disconnected);
        }
        let queued = self.shared.queued[usize::from(to)].load(Ordering::SeqCst);
        if queued + bytes > self.tuning.max_queued_bytes {
            return Err(NetError::Backpressure {
                peer: to,
                queued,
                limit: self.tuning.max_queued_bytes,
            });
        }
        self.shared.queued[usize::from(to)].fetch_add(bytes, Ordering::SeqCst);
        Ok(true)
    }

    /// Test hook: forcibly tears down the connection to `peer`, as if the
    /// network dropped it. On the dialling side the reactor re-dials with
    /// backoff; on the accepting side sends fail until the peer re-dials.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidPeer`] for out-of-range peers.
    pub fn inject_disconnect(&mut self, peer: NodeId) -> Result<(), NetError> {
        check_peer(self.id, peer, self.num_nodes)?;
        self.cmd_tx.send(Cmd::InjectDisconnect(peer)).map_err(|_| NetError::Disconnected)?;
        self.wake();
        Ok(())
    }

    /// The address this endpoint accepts re-dials on, if it listens at all
    /// (star spokes do not).
    pub fn listen_addr(&self) -> Option<SocketAddr> {
        self.listen_addr_inner
    }
}

impl Endpoint for ReactorEndpoint {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn send(&mut self, to: NodeId, payload: Payload) -> Result<(), NetError> {
        if !self.admit(to, payload.bytes.len())? {
            return Ok(());
        }
        self.note_send(to, &payload);
        self.cmd_tx.send(Cmd::Send { to, payload }).map_err(|_| NetError::Disconnected)?;
        self.wake();
        Ok(())
    }

    fn send_batch(&mut self, to: NodeId, payloads: Vec<Payload>) -> Result<(), NetError> {
        if payloads.is_empty() {
            return Ok(());
        }
        let total: usize = payloads.iter().map(|p| p.bytes.len()).sum();
        if !self.admit(to, total)? {
            return Ok(());
        }
        let wire_bytes: u64 = payloads.iter().map(|p| u64::from(p.wire_len())).sum();
        for payload in &payloads {
            self.note_send(to, payload);
        }
        self.metrics.record_batch(payloads.len(), wire_bytes);
        self.recorder.record(
            self.clock.micros(),
            EventKind::BatchSend,
            u32::from(to),
            payloads.len() as u32,
            wire_bytes as u32,
        );
        self.cmd_tx.send(Cmd::Batch { to, payloads }).map_err(|_| NetError::Disconnected)?;
        self.wake();
        Ok(())
    }

    fn recv(&mut self) -> Result<Incoming, NetError> {
        let before = self.now();
        let msg = self.rx.recv().map_err(|_| NetError::Disconnected)??;
        self.metrics.record_blocked(self.now().saturating_since(before));
        self.note_recv(&msg);
        Ok(msg)
    }

    fn try_recv(&mut self) -> Result<Option<Incoming>, NetError> {
        match self.rx.try_recv() {
            Ok(Ok(msg)) => {
                self.note_recv(&msg);
                Ok(Some(msg))
            }
            Ok(Err(e)) => Err(e),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    fn recv_deadline(&mut self, timeout: SimSpan) -> Result<Option<Incoming>, NetError> {
        let before = self.now();
        match self.rx.recv_timeout(Duration::from_micros(timeout.as_micros())) {
            Ok(Ok(msg)) => {
                self.metrics.record_blocked(self.now().saturating_since(before));
                self.note_recv(&msg);
                Ok(Some(msg))
            }
            Ok(Err(e)) => Err(e),
            Err(RecvTimeoutError::Timeout) => {
                self.metrics.record_blocked(self.now().saturating_since(before));
                Ok(None)
            }
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    fn advance(&mut self, _dt: SimSpan) {
        // Real computation already consumed wall time.
    }

    fn now(&self) -> SimInstant {
        SimInstant::from_micros(self.clock.micros())
    }

    fn metrics(&self) -> NetMetricsSnapshot {
        self.metrics.snapshot()
    }

    fn metrics_delta(&mut self) -> NetMetricsSnapshot {
        self.metrics.snapshot_delta()
    }

    fn attach_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
        // The poll and dialer threads were spawned before any recorder
        // existed; announce them now. Attachment happens-before everything
        // the recorder sees from either thread, so the edge is sound.
        let at = self.clock.micros();
        self.recorder.record(
            at,
            EventKind::ThreadSpawn,
            u32::from(self.id),
            THREAD_ROLE_REACTOR,
            0,
        );
        self.recorder.record(at, EventKind::ThreadSpawn, u32::from(self.id), THREAD_ROLE_DIALER, 0);
    }

    fn remove_peer(&mut self, peer: NodeId) {
        if usize::from(peer) < self.num_nodes {
            self.shared.active[usize::from(peer)].store(false, Ordering::SeqCst);
        }
    }

    fn add_peer(&mut self, peer: NodeId) {
        if usize::from(peer) < self.num_nodes {
            self.shared.active[usize::from(peer)].store(true, Ordering::SeqCst);
            self.shared.dead[usize::from(peer)].store(false, Ordering::SeqCst);
            // Dial side: proactively re-establish the link for the rejoiner.
            if self.id > peer && !self.shared.link_up[usize::from(peer)].load(Ordering::SeqCst) {
                let _ = self.cmd_tx.send(Cmd::Redial(peer));
                self.wake();
            }
        }
    }

    fn take_peer_events(&mut self) -> Vec<PeerEvent> {
        let events: Vec<PeerEvent> = std::mem::take(&mut *self.shared.peer_events.lock());
        for ev in &events {
            if let PeerEvent::Down(peer) = ev {
                self.recorder.record(
                    self.clock.micros(),
                    EventKind::PeerDown,
                    u32::from(*peer),
                    0,
                    0,
                );
            }
        }
        events
    }
}

impl Drop for ReactorEndpoint {
    fn drop(&mut self) {
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        self.waker.wake();
        if let Some(t) = self.reactor.take() {
            let _ = t.join();
            self.recorder.record(
                self.clock.micros(),
                EventKind::ThreadJoin,
                u32::from(self.id),
                THREAD_ROLE_REACTOR,
                0,
            );
        }
        if let Some(t) = self.dialer.take() {
            let _ = t.join();
            self.recorder.record(
                self.clock.micros(),
                EventKind::ThreadJoin,
                u32::from(self.id),
                THREAD_ROLE_DIALER,
                0,
            );
        }
    }
}

/// The single-threaded poll loop owning every socket of one endpoint.
struct Reactor {
    me: NodeId,
    n: usize,
    tuning: ReactorTuning,
    poller: Poller,
    waker: WakeHandle,
    shared: Arc<Shared>,
    conns: Vec<Option<Conn>>,
    /// Per-peer queues of `(frame-from, payload)` accepted but not yet
    /// encoded. Parked entries survive reconnects (the peer just gets them
    /// late), which is what lets backoff state outlive a torn link.
    queues: Vec<VecDeque<(NodeId, Payload)>>,
    /// Peers whose queue grew during this wakeup's command drain. Flushed
    /// once per wakeup so a burst of sends to one peer coalesces into a
    /// single `write` instead of one syscall per command.
    dirty: Vec<bool>,
    pending: Vec<Option<PendingConn>>,
    listener: Option<TcpListener>,
    addrs: Vec<Option<SocketAddr>>,
    has_link: Vec<bool>,
    backoff: Vec<Backoff>,
    dialing: Vec<bool>,
    timers: DeadlineQueue<Timer>,
    clock: MonoClock,
    cmd_rx: Receiver<Cmd>,
    dial_tx: Sender<DialReq>,
    tx: Sender<Result<Incoming, NetError>>,
    metrics: NetMetrics,
}

impl Reactor {
    fn run(mut self) {
        let ka = self.tuning.keepalive_interval;
        if !ka.is_zero() {
            self.timers.schedule(self.clock.micros() + ka.as_micros() as u64, Timer::Keepalive);
        }
        let mut events: Vec<Ready> = Vec::new();
        loop {
            let timeout = self.timers.timeout_until(self.clock.micros());
            events.clear();
            if self.poller.wait(&mut events, timeout).is_err() {
                // The poller itself failed: nothing can make progress.
                let _ = self.tx.send(Err(NetError::Disconnected));
                self.shutdown();
                return;
            }
            for ev in events.drain(..) {
                match ev.token {
                    TOKEN_WAKER => self.waker.drain(),
                    TOKEN_LISTENER => self.accept_ready(),
                    t if t >= TOKEN_PENDING_BASE => {
                        self.pending_ready((t - TOKEN_PENDING_BASE) as usize);
                    }
                    t => {
                        let peer = t as usize;
                        if peer >= self.n {
                            continue;
                        }
                        if ev.readable {
                            self.conn_readable(peer);
                        }
                        if ev.error {
                            self.teardown(peer);
                        } else if ev.writable {
                            self.drain_writes(peer);
                        }
                    }
                }
            }
            self.shared.notified.store(false, Ordering::SeqCst);
            loop {
                match self.cmd_rx.try_recv() {
                    Ok(Cmd::Shutdown) => {
                        self.shutdown();
                        return;
                    }
                    Ok(cmd) => self.handle_cmd(cmd),
                    Err(_) => break,
                }
            }
            for peer in 0..self.n {
                if self.dirty[peer] {
                    self.dirty[peer] = false;
                    self.drain_writes(peer);
                }
            }
            let now = self.clock.micros();
            while let Some(timer) = self.timers.pop_due(now) {
                self.fire_timer(timer);
            }
        }
    }

    fn handle_cmd(&mut self, cmd: Cmd) {
        match cmd {
            Cmd::Send { to, payload } => {
                self.queues[usize::from(to)].push_back((self.me, payload));
                self.dirty[usize::from(to)] = true;
            }
            Cmd::Batch { to, payloads } => {
                let q = &mut self.queues[usize::from(to)];
                for payload in payloads {
                    q.push_back((self.me, payload));
                }
                self.dirty[usize::from(to)] = true;
            }
            Cmd::InjectDisconnect(peer) => self.teardown(usize::from(peer)),
            Cmd::Redial(peer) => {
                let p = usize::from(peer);
                if self.conns[p].is_none() && !self.dialing[p] && self.addrs[p].is_some() {
                    self.backoff[p].reset();
                    self.schedule_dial(p, 0);
                }
            }
            Cmd::Dialed { peer, stream } => self.dialed(usize::from(peer), stream),
            Cmd::Shutdown => self.shutdown(),
        }
    }

    fn fire_timer(&mut self, timer: Timer) {
        match timer {
            Timer::Keepalive => {
                for peer in 0..self.n {
                    if self.conns[peer].is_some() {
                        self.queues[peer]
                            .push_back((KEEPALIVE_FROM, Payload::control(Bytes::new())));
                        self.drain_writes(peer);
                    }
                }
                let ka = self.tuning.keepalive_interval.as_micros() as u64;
                self.timers.schedule(self.clock.micros() + ka, Timer::Keepalive);
            }
            Timer::Reconnect(peer) => {
                let p = usize::from(peer);
                self.dialing[p] = false;
                if !self.shared.active[p].load(Ordering::SeqCst)
                    || self.shared.dead[p].load(Ordering::SeqCst)
                    || self.conns[p].is_some()
                {
                    return;
                }
                let Some(addr) = self.addrs[p] else { return };
                self.metrics.record_retry();
                if self.dial_tx.send(DialReq { peer, addr }).is_ok() {
                    self.dialing[p] = true;
                }
            }
        }
    }

    fn schedule_dial(&mut self, peer: usize, delay_micros: u64) {
        self.dialing[peer] = true;
        self.timers.schedule(self.clock.micros() + delay_micros, Timer::Reconnect(peer as NodeId));
    }

    fn dialed(&mut self, peer: usize, stream: Result<TcpStream, std::io::Error>) {
        self.dialing[peer] = false;
        match stream {
            Ok(s) => {
                if s.set_nonblocking(true).is_err()
                    || self.poller.add(&s, peer as u64, Interest::READ).is_err()
                {
                    self.dial_failed(peer);
                    return;
                }
                self.conns[peer] = Some(Conn::new(s));
                self.backoff[peer].reset();
                self.metrics.record_reconnect();
                self.shared.link_up[peer].store(true, Ordering::SeqCst);
                self.shared.dead[peer].store(false, Ordering::SeqCst);
                self.shared.peer_events.lock().push(PeerEvent::Up(peer as NodeId));
                self.drain_writes(peer);
            }
            Err(_) => self.dial_failed(peer),
        }
    }

    fn dial_failed(&mut self, peer: usize) {
        if !self.shared.active[peer].load(Ordering::SeqCst) {
            return;
        }
        match self.backoff[peer].next_delay() {
            Some(delay) => self.schedule_dial(peer, delay.as_micros() as u64),
            None => {
                // Budget exhausted: the link is dead. Release queued bytes.
                self.shared.dead[peer].store(true, Ordering::SeqCst);
                self.drop_queue(peer);
            }
        }
    }

    fn drop_queue(&mut self, peer: usize) {
        let mut released = 0usize;
        for (from, payload) in self.queues[peer].drain(..) {
            if from != KEEPALIVE_FROM {
                released += payload.bytes.len();
            }
            crate::pool::global().reclaim(payload.bytes);
        }
        self.shared.queued[peer].fetch_sub(released, Ordering::SeqCst);
    }

    /// Tears the connection to `peer` down: deregister, close, surface a
    /// [`PeerEvent::Down`], and — on the dialling side of the pair — start
    /// the reconnect schedule. Queued payloads stay parked for the next
    /// incarnation of the link unless the peer is gone for good.
    fn teardown(&mut self, peer: usize) {
        let Some(conn) = self.conns[peer].take() else { return };
        self.poller.delete(&conn.stream);
        let _ = conn.stream.shutdown(Shutdown::Both);
        crate::pool::global().put(conn.wbuf);
        self.shared.link_up[peer].store(false, Ordering::SeqCst);
        self.shared.peer_events.lock().push(PeerEvent::Down(peer as NodeId));
        let active = self.shared.active[peer].load(Ordering::SeqCst);
        if !active {
            self.drop_queue(peer);
            return;
        }
        let dial_side = usize::from(self.me) > peer;
        if dial_side && self.addrs[peer].is_some() && !self.dialing[peer] {
            self.backoff[peer].reset();
            self.schedule_dial(peer, 0);
        }
    }

    /// Coalesces queued payloads into the connection's pooled write buffer
    /// and writes until the socket blocks, adjusting epoll write interest to
    /// match whether anything is left. sdso-check: hot-path
    fn drain_writes(&mut self, peer: usize) {
        let Some(mut conn) = self.conns[peer].take() else { return };
        let result = fill_and_write(&mut conn, &mut self.queues[peer], &self.shared, peer);
        match result {
            Ok(()) => {
                let want = conn.woff < conn.wbuf.len() || !self.queues[peer].is_empty();
                if want != conn.want_write {
                    let interest = if want { Interest::READ_WRITE } else { Interest::READ };
                    if self.poller.modify(&conn.stream, peer as u64, interest).is_ok() {
                        conn.want_write = want;
                    }
                }
                self.conns[peer] = Some(conn);
            }
            Err(_) => {
                self.conns[peer] = Some(conn);
                self.teardown(peer);
            }
        }
    }

    /// Reads until the socket blocks, decoding complete frames out of the
    /// flat inbound buffer and forwarding them to the application (keepalive
    /// frames excepted). EOF and connection resets tear the link down; a
    /// partial frame left in the buffer at that point is discarded — its
    /// sender never completed it. sdso-check: hot-path
    fn conn_readable(&mut self, peer: usize) {
        let Some(mut conn) = self.conns[peer].take() else { return };
        let mut torn = false;
        let mut fatal: Option<NetError> = None;
        let mut chunk = [0u8; READ_CHUNK];
        'reads: loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    torn = true;
                    break;
                }
                Ok(got) => {
                    conn.rbuf.extend_from_slice(&chunk[..got]);
                    let mut pos = 0usize;
                    loop {
                        match decode_frame_at(&conn.rbuf, &mut pos) {
                            Ok(Some(inc)) => {
                                if inc.from != KEEPALIVE_FROM && self.tx.send(Ok(inc)).is_err() {
                                    torn = true;
                                    break 'reads;
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                fatal = Some(e);
                                torn = true;
                                break 'reads;
                            }
                        }
                    }
                    if pos > 0 {
                        conn.rbuf.drain(..pos);
                    }
                    // A short read means the socket buffer is empty right
                    // now; skip the would-be EAGAIN syscall. The poller is
                    // level-triggered, so anything that lands later is
                    // re-reported.
                    if got < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::BrokenPipe
                    ) =>
                {
                    torn = true;
                    break;
                }
                Err(e) => {
                    fatal = Some(NetError::Io(e));
                    torn = true;
                    break;
                }
            }
        }
        self.conns[peer] = Some(conn);
        if let Some(e) = fatal {
            let _ = self.tx.send(Err(e));
        }
        if torn {
            self.teardown(peer);
        }
    }

    /// Accepts inbound re-dials; each parks as a pending connection until
    /// its 2-byte id handshake arrives.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nodelay(true).is_err() || stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let idx = match self.pending.iter().position(Option::is_none) {
                        Some(i) => i,
                        None => {
                            self.pending.push(None);
                            self.pending.len() - 1
                        }
                    };
                    let token = TOKEN_PENDING_BASE + idx as u64;
                    if self.poller.add(&stream, token, Interest::READ).is_ok() {
                        self.pending[idx] = Some(PendingConn { stream, got: [0; 2], len: 0 });
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Drives a pending inbound connection's handshake forward; promotes it
    /// to a live peer connection once the 2-byte id is in.
    fn pending_ready(&mut self, idx: usize) {
        let Some(mut p) = self.pending.get_mut(idx).and_then(Option::take) else { return };
        loop {
            match p.stream.read(&mut p.got[p.len..]) {
                Ok(0) => {
                    self.poller.delete(&p.stream);
                    return; // handshake never arrived
                }
                Ok(got) => {
                    p.len += got;
                    if p.len == 2 {
                        self.promote(p);
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.pending[idx] = Some(p);
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.poller.delete(&p.stream);
                    return;
                }
            }
        }
    }

    fn promote(&mut self, p: PendingConn) {
        let peer = NodeId::from_le_bytes(p.got);
        let pu = usize::from(peer);
        // Re-dials always come from the higher-id (dialling) side.
        if pu >= self.n || peer <= self.me || !self.has_link[pu] {
            self.poller.delete(&p.stream);
            return;
        }
        // Quietly retire any stale incarnation of the link: the Down/Up pair
        // is only meaningful when connectivity was actually interrupted.
        if let Some(old) = self.conns[pu].take() {
            self.poller.delete(&old.stream);
            let _ = old.stream.shutdown(Shutdown::Both);
            crate::pool::global().put(old.wbuf);
        }
        if self.poller.modify(&p.stream, pu as u64, Interest::READ).is_err() {
            self.poller.delete(&p.stream);
            return;
        }
        self.conns[pu] = Some(Conn::new(p.stream));
        self.metrics.record_reconnect();
        self.shared.link_up[pu].store(true, Ordering::SeqCst);
        self.shared.dead[pu].store(false, Ordering::SeqCst);
        self.shared.peer_events.lock().push(PeerEvent::Up(peer));
        self.drain_writes(pu);
    }

    fn shutdown(&mut self) {
        for peer in 0..self.n {
            self.dirty[peer] = false;
            let Some(mut conn) = self.conns[peer].take() else { continue };
            // Best-effort final flush: an endpoint that sends and is then
            // dropped enqueues `Send .. Send, Shutdown` back-to-back, and
            // closing before draining would strand those last frames. A
            // short send timeout bounds the wait on a stalled peer (the
            // timeout surfaces as `WouldBlock`, which `fill_and_write`
            // treats as "done for now").
            if (conn.woff < conn.wbuf.len() || !self.queues[peer].is_empty())
                // Deliberate: a bounded blocking flush once, at teardown,
                // after the poll loop has exited — not on the event path
                // (allowlisted in no-blocking-in-reactor.allow).
                && conn.stream.set_nonblocking(false).is_ok()
            {
                let _ = conn.stream.set_write_timeout(Some(Duration::from_millis(250)));
                let _ = fill_and_write(&mut conn, &mut self.queues[peer], &self.shared, peer);
            }
            self.poller.delete(&conn.stream);
            let _ = conn.stream.shutdown(Shutdown::Both);
            crate::pool::global().put(conn.wbuf);
        }
        for pending in self.pending.iter_mut() {
            if let Some(p) = pending.take() {
                self.poller.delete(&p.stream);
            }
        }
        self.listener = None;
    }
}

/// Encodes queued payloads into `conn.wbuf` (batch coalescing) and writes
/// until the socket blocks or everything is flushed. A free function so the
/// reactor can split-borrow its connection and queue tables.
/// sdso-check: hot-path
fn fill_and_write(
    conn: &mut Conn,
    queue: &mut VecDeque<(NodeId, Payload)>,
    shared: &Shared,
    peer: usize,
) -> Result<(), std::io::Error> {
    loop {
        if conn.woff == conn.wbuf.len() {
            conn.wbuf.clear();
            conn.woff = 0;
            while conn.wbuf.len() < WRITE_COALESCE_BUDGET {
                let Some((from, payload)) = queue.pop_front() else { break };
                if from != KEEPALIVE_FROM {
                    shared.queued[peer].fetch_sub(payload.bytes.len(), Ordering::SeqCst);
                }
                append_frame(&mut conn.wbuf, from, &payload);
                crate::pool::global().reclaim(payload.bytes);
            }
            if conn.wbuf.is_empty() {
                return Ok(());
            }
        }
        match conn.stream.write(&conn.wbuf[conn.woff..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "socket accepted zero bytes",
                ))
            }
            Ok(n) => conn.woff += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_tuning() -> ReactorTuning {
        ReactorTuning {
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(40),
            keepalive_interval: Duration::from_millis(200),
            ..ReactorTuning::default()
        }
    }

    #[test]
    fn local_mesh_ping_pong() {
        let mut eps = ReactorMesh::local(2).unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, Payload::data(b"ping".as_ref())).unwrap();
        let got = b.recv().unwrap();
        assert_eq!(got.from, 0);
        assert_eq!(&got.payload.bytes[..], b"ping");
        b.send(0, Payload::control(b"pong".as_ref())).unwrap();
        assert_eq!(&a.recv().unwrap().payload.bytes[..], b"pong");
    }

    /// Regression: `drop` enqueues `Send .. Send, Shutdown` back-to-back on
    /// the command channel, and the reactor must flush those sends before it
    /// closes the sockets — otherwise a node that finishes and drops its
    /// endpoint strands its final frames. Looped because the original bug
    /// was a per-wakeup batching race.
    #[test]
    fn frames_sent_just_before_drop_still_arrive() {
        for _ in 0..20 {
            let mut eps = ReactorMesh::local(2).unwrap();
            let mut b = eps.pop().unwrap();
            let mut a = eps.pop().unwrap();
            for i in 0..8u32 {
                a.send(1, Payload::control(i.to_le_bytes().as_ref())).unwrap();
            }
            drop(a);
            for i in 0..8u32 {
                let got = b
                    .recv_deadline(SimSpan::from_millis(2_000))
                    .unwrap()
                    .expect("frame stranded by shutdown");
                assert_eq!(&got.payload.bytes[..], &i.to_le_bytes()[..]);
            }
        }
    }

    #[test]
    fn four_node_broadcast_across_threads() {
        let eps = ReactorMesh::local(4).unwrap();
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                std::thread::spawn(move || {
                    ep.broadcast(&Payload::control(vec![ep.node_id() as u8])).unwrap();
                    let mut seen = Vec::new();
                    for _ in 0..3 {
                        seen.push(ep.recv().unwrap().from);
                    }
                    seen.sort_unstable();
                    let expected: Vec<NodeId> = (0..4).filter(|&i| i != ep.node_id()).collect();
                    assert_eq!(seen, expected);
                    ep.metrics()
                })
            })
            .collect();
        for h in handles {
            let m = h.join().unwrap();
            assert_eq!(m.total_sent(), 3);
            assert_eq!(m.total_recv(), 3);
        }
    }

    #[test]
    fn send_batch_flushes_in_order_over_one_connection() {
        let mut eps = ReactorMesh::local(2).unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send_batch(
            1,
            vec![
                Payload::data(b"one".as_ref()),
                Payload::control(b"two".as_ref()),
                Payload::data(b"three".as_ref()),
            ],
        )
        .unwrap();
        for expect in [b"one".as_ref(), b"two".as_ref(), b"three".as_ref()] {
            let got = b.recv().unwrap();
            assert_eq!(got.from, 0);
            assert_eq!(&got.payload.bytes[..], expect);
        }
        assert_eq!(a.metrics().total_sent(), 3, "batch keeps per-message accounting");
    }

    #[test]
    fn wire_len_travels_in_frame_header() {
        let mut eps = ReactorMesh::local(2).unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, Payload::data(vec![0u8; 10]).with_wire_len(2048)).unwrap();
        let got = b.recv().unwrap();
        assert_eq!(got.payload.wire_len(), 2048);
        assert_eq!(b.metrics().data_recv.bytes, 2048);
    }

    #[test]
    fn star_routes_hub_to_spokes_and_rejects_spoke_to_spoke() {
        let mut eps = ReactorMesh::star(4).unwrap();
        let mut s3 = eps.pop().unwrap();
        let mut s2 = eps.pop().unwrap();
        let mut s1 = eps.pop().unwrap();
        let mut hub = eps.pop().unwrap();
        for spoke in [&mut s1, &mut s2, &mut s3] {
            spoke.send(0, Payload::data(vec![spoke.node_id() as u8])).unwrap();
        }
        let mut from = Vec::new();
        for _ in 0..3 {
            from.push(hub.recv().unwrap().from);
        }
        from.sort_unstable();
        assert_eq!(from, vec![1, 2, 3]);
        hub.send(2, Payload::control(b"hi".as_ref())).unwrap();
        assert_eq!(&s2.recv().unwrap().payload.bytes[..], b"hi");
        // No spoke-to-spoke link exists.
        assert!(matches!(s1.send(2, Payload::data(vec![0])), Err(NetError::Disconnected)));
    }

    #[test]
    fn reconnect_with_backoff_after_forced_drop() {
        let mut eps = ReactorMesh::local_with(2, fast_tuning()).unwrap();
        let mut b = eps.pop().unwrap(); // id 1: the dialling side
        let mut a = eps.pop().unwrap(); // id 0: the accepting side
        b.send(0, Payload::data(b"one".as_ref())).unwrap();
        assert_eq!(&a.recv().unwrap().payload.bytes[..], b"one");

        b.inject_disconnect(0).unwrap();
        // The send is asynchronous: it parks in the queue and flushes once
        // the reactor has re-dialled.
        b.send(0, Payload::data(b"two".as_ref())).unwrap();
        let got = a.recv().unwrap();
        assert_eq!(got.from, 1);
        assert_eq!(&got.payload.bytes[..], b"two");

        let m = b.metrics();
        assert!(m.retries >= 1, "reconnect attempts are counted, got {m:?}");
        assert!(m.reconnects >= 1, "re-established connection is counted, got {m:?}");
        a.send(1, Payload::control(b"ack".as_ref())).unwrap();
        assert_eq!(&b.recv().unwrap().payload.bytes[..], b"ack");

        let events = b.take_peer_events();
        assert!(events.contains(&PeerEvent::Down(0)), "torn link must surface: {events:?}");
        assert!(events.contains(&PeerEvent::Up(0)), "redial must surface: {events:?}");
    }

    #[test]
    fn peer_socket_eof_mid_frame_surfaces_down_without_phantom_message() {
        let mut eps = ReactorMesh::local_with(2, fast_tuning()).unwrap();
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let addr = a.listen_addr().expect("node 0 listens");
        drop(b); // node 1 exits; its Down will surface asynchronously

        // A raw socket impersonates node 1 re-dialling: handshake, then a
        // *partial* frame (length prefix says 20 bytes, only 5 arrive), then
        // a hard close.
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&1u16.to_le_bytes()).unwrap();
        let mut partial = Vec::new();
        partial.extend_from_slice(&20u32.to_le_bytes());
        partial.extend_from_slice(&[1, 0, 0, 9, 9]);
        raw.write_all(&partial).unwrap();
        raw.flush().unwrap();
        std::thread::sleep(Duration::from_millis(100));
        drop(raw);

        // The EOF mid-frame must surface as a link event, not as a message
        // and not as a reactor crash.
        let mut seen = Vec::new();
        for _ in 0..200 {
            seen.extend(a.take_peer_events());
            if seen.iter().filter(|e| matches!(e, PeerEvent::Down(1))).count() >= 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            seen.iter().filter(|e| matches!(e, PeerEvent::Down(1))).count() >= 2,
            "both the real node's exit and the torn impostor must surface: {seen:?}"
        );
        assert!(seen.contains(&PeerEvent::Up(1)), "the re-dial surfaced: {seen:?}");
        assert!(a.try_recv().unwrap().is_none(), "no phantom message from the partial frame");
    }

    #[test]
    fn write_queue_backpressure_overflow_errors_instead_of_growing() {
        let tuning = ReactorTuning {
            max_queued_bytes: 4 * 1024,
            backoff_base: Duration::from_secs(2), // keep the link down
            backoff_max: Duration::from_secs(2),
            ..ReactorTuning::default()
        };
        let mut eps = ReactorMesh::local_with(2, tuning).unwrap();
        let _a = eps.remove(0);
        let mut b = eps.remove(0); // id 1: the dialling side, so sends park
        b.inject_disconnect(0).unwrap();
        std::thread::sleep(Duration::from_millis(50)); // let the teardown land

        let mut hit = None;
        for _ in 0..64 {
            match b.send(0, Payload::data(vec![0u8; 256])) {
                Ok(()) => {}
                Err(e) => {
                    hit = Some(e);
                    break;
                }
            }
        }
        match hit {
            Some(NetError::Backpressure { peer, queued, limit }) => {
                assert_eq!(peer, 0);
                assert_eq!(limit, 4 * 1024);
                assert!(queued + 256 > limit, "queue was genuinely full: {queued}");
            }
            other => panic!("expected Backpressure, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_reconnect_budget_kills_the_link() {
        let tuning = ReactorTuning {
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(4),
            max_reconnect_attempts: 2,
            connect_timeout: Duration::from_millis(200),
            ..ReactorTuning::default()
        };
        let mut eps = ReactorMesh::local_with(2, tuning).unwrap();
        let mut b = eps.pop().unwrap(); // id 1: dialling side
        let a = eps.remove(0);
        drop(a); // listener gone: re-dials fail outright
        b.inject_disconnect(0).unwrap();
        b.send(0, Payload::data(vec![1u8; 8])).ok();

        let mut dead = false;
        for _ in 0..400 {
            if matches!(b.send(0, Payload::data(vec![2u8; 8])), Err(NetError::Disconnected)) {
                dead = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(dead, "sends must fail for good once the reconnect budget is spent");
        assert!(b.metrics().retries >= 1);
    }

    #[test]
    fn sends_to_removed_peer_are_dropped_silently() {
        let mut eps = ReactorMesh::local_with(2, fast_tuning()).unwrap();
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.remove_peer(1);
        drop(b);
        for _ in 0..50 {
            a.send(1, Payload::control(vec![0u8; 512])).unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(a.metrics().total_sent(), 0, "dropped sends are not counted as traffic");
    }

    #[test]
    fn keepalives_are_invisible_to_the_application() {
        let tuning = ReactorTuning {
            keepalive_interval: Duration::from_millis(20),
            ..ReactorTuning::default()
        };
        let mut eps = ReactorMesh::local_with(2, tuning).unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        std::thread::sleep(Duration::from_millis(250));
        assert!(a.try_recv().unwrap().is_none(), "keepalives never reach the app");
        assert!(b.try_recv().unwrap().is_none());
        assert_eq!(a.metrics().total_recv(), 0, "keepalives never count as traffic");
        // The link is still healthy after an idle stretch full of keepalives.
        a.send(1, Payload::data(b"still here".as_ref())).unwrap();
        assert_eq!(&b.recv().unwrap().payload.bytes[..], b"still here");
    }

    #[test]
    fn recv_deadline_times_out_then_delivers() {
        let mut eps = ReactorMesh::local(2).unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        assert!(b.recv_deadline(SimSpan::from_millis(30)).unwrap().is_none());
        a.send(1, Payload::data(b"late".as_ref())).unwrap();
        let got = b
            .recv_deadline(SimSpan::from_millis(2_000))
            .unwrap()
            .expect("message arrives within the deadline");
        assert_eq!(&got.payload.bytes[..], b"late");
    }

    #[test]
    fn accept_side_sends_fail_while_peer_is_down() {
        let mut eps = ReactorMesh::local_with(2, fast_tuning()).unwrap();
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap(); // id 0: accept side, never re-dials
        drop(b);
        let mut disconnected = false;
        for _ in 0..200 {
            if a.send(1, Payload::control(vec![0u8; 64])).is_err() {
                disconnected = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(disconnected, "send to dropped peer should eventually fail");
    }

    #[test]
    fn large_payload_crosses_intact() {
        let mut eps = ReactorMesh::local(2).unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let body: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        a.send(1, Payload::data(body.clone())).unwrap();
        let got = b.recv().unwrap();
        assert_eq!(got.payload.bytes.len(), body.len());
        assert_eq!(&got.payload.bytes[..], &body[..], "megabyte payload survives chunked reads");
    }

    #[test]
    fn messages_queued_during_outage_arrive_in_order_after_reconnect() {
        let mut eps = ReactorMesh::local_with(2, fast_tuning()).unwrap();
        let mut b = eps.pop().unwrap(); // dialling side
        let mut a = eps.pop().unwrap();
        b.inject_disconnect(0).unwrap();
        for i in 0..10u8 {
            b.send(0, Payload::data(vec![i])).unwrap();
        }
        for i in 0..10u8 {
            let got = a.recv().unwrap();
            assert_eq!(got.payload.bytes[0], i, "order preserved across the outage");
        }
    }
}
