use crate::error::NetError;
use crate::message::{Incoming, Payload};
use crate::metrics::NetMetricsSnapshot;
use crate::time::{SimInstant, SimSpan};

/// Identifies a node (process) within a cluster. Node ids are dense:
/// `0..num_nodes`.
pub type NodeId = u16;

/// A first-class link/membership event surfaced by a transport, consumed
/// via [`Endpoint::take_peer_events`]. Transports queue these instead of
/// burying link failures inside reconnect loops, so the layers above can
/// react (and the flight recorder can trace) when a peer goes away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerEvent {
    /// The link to this peer went down: its connection was lost, or it was
    /// administratively removed from the mesh.
    Down(NodeId),
    /// The link to this peer came (back) up.
    Up(NodeId),
}

/// The transport abstraction every consistency protocol is written against.
///
/// An endpoint belongs to exactly one node of a fixed-size cluster and can
/// exchange [`Payload`]s with every other node. Three implementations exist:
///
/// * [`memory::MemoryEndpoint`](crate::memory::MemoryEndpoint) — crossbeam
///   channels, real threads, wall-clock time;
/// * [`tcp::TcpEndpoint`](crate::tcp::TcpEndpoint) — a real TCP mesh, the
///   moral equivalent of the original system's socket layer;
/// * `sdso_sim::SimEndpoint` — deterministic virtual time over a modelled
///   network, used for the paper's evaluation figures.
///
/// # Time
///
/// [`Endpoint::now`] reports microseconds since a transport-defined epoch —
/// wall time for real transports, virtual time in the simulator.
/// [`Endpoint::advance`] models local computation: the simulator advances the
/// node's virtual clock, real transports treat it as a no-op (the computation
/// itself already took wall time).
pub trait Endpoint: Send {
    /// This node's id.
    fn node_id(&self) -> NodeId;

    /// Number of nodes in the cluster.
    fn num_nodes(&self) -> usize;

    /// Sends `payload` to `to`. Non-blocking (transports buffer).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidPeer`] if `to` is out of range or equal to
    /// this node, and [`NetError::Disconnected`] if the peer is gone.
    fn send(&mut self, to: NodeId, payload: Payload) -> Result<(), NetError>;

    /// Sends several payloads to `to` back-to-back, preserving order.
    ///
    /// Semantically identical to calling [`Endpoint::send`] once per payload
    /// — same delivery order, same per-message metrics and trace events.
    /// Transports with real per-write costs (locks, syscalls) override this
    /// to flush the whole batch in one write; the default simply loops.
    ///
    /// # Errors
    ///
    /// Propagates the first send failure; earlier payloads in the batch may
    /// already have been sent.
    fn send_batch(&mut self, to: NodeId, payloads: Vec<Payload>) -> Result<(), NetError> {
        for payload in payloads {
            self.send(to, payload)?;
        }
        Ok(())
    }

    /// Receives the next message, blocking until one is available.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] if no message can ever arrive
    /// again, and [`NetError::Deadlock`] if the virtual-time scheduler proves
    /// the whole cluster is blocked.
    fn recv(&mut self) -> Result<Incoming, NetError>;

    /// Receives the next message if one is already available.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] if no message can ever arrive again.
    fn try_recv(&mut self) -> Result<Option<Incoming>, NetError>;

    /// Receives the next message, giving up after `timeout` (measured on
    /// this node's clock) and returning `Ok(None)`.
    ///
    /// The default implementation blocks without a timeout — transports
    /// that can bound their waits (all three in-tree transports do)
    /// override this; resilience layers rely on it to turn lost messages
    /// into retransmissions instead of hangs.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Endpoint::recv`].
    fn recv_deadline(&mut self, timeout: SimSpan) -> Result<Option<Incoming>, NetError> {
        let _ = timeout;
        self.recv().map(Some)
    }

    /// Models `dt` of local computation on this node.
    fn advance(&mut self, dt: SimSpan);

    /// Current time on this node's clock.
    fn now(&self) -> SimInstant;

    /// Snapshot of this endpoint's traffic counters, cumulative since the
    /// endpoint was created.
    fn metrics(&self) -> NetMetricsSnapshot;

    /// Traffic counters accumulated since the previous `metrics_delta`
    /// call on this endpoint (since creation for the first call).
    ///
    /// Use this for per-run accounting over a reused transport; the
    /// cumulative [`Endpoint::metrics`] double-counts back-to-back runs.
    /// The default forwards to `metrics()`, which is correct for
    /// transports that live exactly one run.
    fn metrics_delta(&mut self) -> NetMetricsSnapshot {
        self.metrics()
    }

    /// Attaches a flight recorder: subsequent sends/receives (and fault
    /// verdicts, for fault-injecting transports) are recorded as events
    /// stamped with this endpoint's clock. The default ignores the
    /// recorder — transports that can trace override this.
    fn attach_recorder(&mut self, recorder: sdso_obs::Recorder) {
        let _ = recorder;
    }

    /// Marks the link to `peer` as administratively removed (the peer left
    /// the group): send failures on it become expected and are dropped
    /// silently instead of surfacing as transport errors. The default is a
    /// no-op for transports that do not track per-peer liveness.
    fn remove_peer(&mut self, peer: NodeId) {
        let _ = peer;
    }

    /// (Re-)activates the link to `peer` (the peer joined the group).
    /// Inverse of [`Endpoint::remove_peer`]; a no-op by default.
    fn add_peer(&mut self, peer: NodeId) {
        let _ = peer;
    }

    /// Drains link events observed since the previous call: peer
    /// disconnects detected by the transport (and reconnects, where the
    /// transport can tell). The default returns none.
    fn take_peer_events(&mut self) -> Vec<PeerEvent> {
        Vec::new()
    }

    /// Sends a copy of `payload` to every other node in the cluster.
    ///
    /// # Errors
    ///
    /// Propagates the first send failure.
    fn broadcast(&mut self, payload: &Payload) -> Result<(), NetError> {
        let me = self.node_id();
        for peer in 0..self.num_nodes() as NodeId {
            if peer != me {
                self.send(peer, payload.clone())?;
            }
        }
        Ok(())
    }
}

/// A boxed endpoint is an endpoint: every method — including the ones with
/// default bodies — forwards to the inner transport, so boxing never
/// silently downgrades behaviour (batched writes stay batched, peer events
/// still surface). This is what lets harness code pick a transport by
/// [`crate::TransportKind`] at runtime and hand the runtime a uniform type.
impl Endpoint for Box<dyn Endpoint + Send> {
    fn node_id(&self) -> NodeId {
        (**self).node_id()
    }
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }
    fn send(&mut self, to: NodeId, payload: Payload) -> Result<(), NetError> {
        (**self).send(to, payload)
    }
    fn send_batch(&mut self, to: NodeId, payloads: Vec<Payload>) -> Result<(), NetError> {
        (**self).send_batch(to, payloads)
    }
    fn recv(&mut self) -> Result<Incoming, NetError> {
        (**self).recv()
    }
    fn try_recv(&mut self) -> Result<Option<Incoming>, NetError> {
        (**self).try_recv()
    }
    fn recv_deadline(&mut self, timeout: SimSpan) -> Result<Option<Incoming>, NetError> {
        (**self).recv_deadline(timeout)
    }
    fn advance(&mut self, dt: SimSpan) {
        (**self).advance(dt);
    }
    fn now(&self) -> SimInstant {
        (**self).now()
    }
    fn metrics(&self) -> NetMetricsSnapshot {
        (**self).metrics()
    }
    fn metrics_delta(&mut self) -> NetMetricsSnapshot {
        (**self).metrics_delta()
    }
    fn attach_recorder(&mut self, recorder: sdso_obs::Recorder) {
        (**self).attach_recorder(recorder);
    }
    fn remove_peer(&mut self, peer: NodeId) {
        (**self).remove_peer(peer);
    }
    fn add_peer(&mut self, peer: NodeId) {
        (**self).add_peer(peer);
    }
    fn take_peer_events(&mut self) -> Vec<PeerEvent> {
        (**self).take_peer_events()
    }
    fn broadcast(&mut self, payload: &Payload) -> Result<(), NetError> {
        (**self).broadcast(payload)
    }
}

/// Validates a destination node id against the cluster size and self-sends.
///
/// # Errors
///
/// Returns [`NetError::InvalidPeer`] when the peer is this node itself or out
/// of range.
pub(crate) fn check_peer(me: NodeId, to: NodeId, num_nodes: usize) -> Result<(), NetError> {
    if to == me || usize::from(to) >= num_nodes {
        return Err(NetError::InvalidPeer { peer: to, cluster: num_nodes });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_peer_rejects_self_and_out_of_range() {
        assert!(check_peer(0, 0, 4).is_err());
        assert!(check_peer(0, 4, 4).is_err());
        assert!(check_peer(0, 3, 4).is_ok());
    }

    #[test]
    fn boxed_endpoint_forwards_to_the_inner_transport() {
        let mut eps = crate::memory::MemoryHub::new(2).into_endpoints();
        let mut b: Box<dyn Endpoint + Send> = Box::new(eps.pop().unwrap());
        let mut a: Box<dyn Endpoint + Send> = Box::new(eps.pop().unwrap());
        assert_eq!(a.node_id(), 0);
        assert_eq!(a.num_nodes(), 2);
        a.send(1, Payload::control(vec![1u8])).unwrap();
        a.send_batch(1, vec![Payload::data(vec![2u8]), Payload::control(vec![3u8])]).unwrap();
        let classes: Vec<u8> = (0..3).map(|_| b.recv().unwrap().payload.bytes[0]).collect();
        assert_eq!(classes, vec![1, 2, 3]);
        assert_eq!(a.metrics().total_sent(), 3);
        assert!(b.take_peer_events().is_empty());
    }
}
