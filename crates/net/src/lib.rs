//! Message transport substrate for the S-DSO distributed shared object system.
//!
//! This crate provides everything the consistency layers need to talk to each
//! other, without committing to a particular medium:
//!
//! * [`Payload`] / [`Incoming`] — the unit of exchange, tagged with a
//!   [`MsgClass`] so that evaluation harnesses can count control and data
//!   messages separately (the paper's Figures 6 and 7 plot exactly that
//!   split).
//! * [`Endpoint`] — the transport abstraction all protocols are written
//!   against. Implementations exist for in-process channels
//!   ([`memory::MemoryHub`]), real TCP meshes ([`tcp::TcpMesh`]), and the
//!   virtual-time cluster simulator in the `sdso-sim` crate.
//! * [`wire`] — a small, dependency-free binary codec used by every message
//!   type in the workspace.
//! * [`frame`] — length-prefixed framing shared by the TCP transport and any
//!   future stream transport.
//!
//! The original S-DSO system (West, Schwan, Tacic, Ahamad; ICDCS 1997) was
//! "directly layered onto sockets"; [`tcp`] plays that role here, while
//! [`memory`] and the simulator make the same protocol code testable and
//! measurable deterministically.
//!
//! # Example
//!
//! ```
//! use sdso_net::{memory::MemoryHub, Endpoint, MsgClass, Payload};
//!
//! # fn main() -> Result<(), sdso_net::NetError> {
//! let mut eps = MemoryHub::new(2).into_endpoints();
//! let mut b = eps.pop().unwrap();
//! let mut a = eps.pop().unwrap();
//!
//! a.send(1, Payload::control(b"hello".as_ref()))?;
//! let msg = b.recv()?;
//! assert_eq!(msg.from, 0);
//! assert_eq!(&msg.payload.bytes[..], b"hello");
//! assert_eq!(msg.payload.class, MsgClass::Control);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod endpoint;
mod error;
mod message;
mod metrics;
mod time;
mod transport;

pub mod deadline;
pub mod fault;
pub mod faulty;
pub mod frame;
pub mod memory;
pub mod pool;
#[cfg(target_os = "linux")]
pub mod reactor;
#[cfg(target_os = "linux")]
mod sys;
pub mod tcp;
pub mod wire;

pub use deadline::{Backoff, DeadlineQueue};
pub use endpoint::{Endpoint, NodeId, PeerEvent};
pub use error::NetError;
pub use fault::{CrashEvent, DetRng, FaultInjector, FaultPlan, Partition};
pub use faulty::FaultyEndpoint;
pub use message::{Incoming, MsgClass, Payload};
pub use metrics::{ClassCounters, NetMetrics, NetMetricsSnapshot};
pub use time::{SimInstant, SimSpan};
pub use transport::TransportKind;

// Observability vocabulary, re-exported so transports implementing
// [`Endpoint::attach_recorder`] need not depend on `sdso-obs` directly.
pub use sdso_obs::{EventKind, EventRecord, Recorder, TraceConfig, TraceMode};
