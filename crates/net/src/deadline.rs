//! A shared virtual-deadline queue for transport timers.
//!
//! Every timer a transport needs — reconnect backoff, keepalives, retry
//! pacing — is a `(deadline, key)` pair in one [`DeadlineQueue`]. The reactor
//! event loop asks the queue how long it may sleep ([`DeadlineQueue::
//! timeout_until`]), parks in `epoll_wait` for exactly that long, and then
//! drains every due entry with [`DeadlineQueue::pop_due`]. The blocking
//! `TcpMesh` transport uses the same queue for its reconnect backoff, so the
//! backoff *state machine* is identical whether timers fire from a poll loop
//! or from a blocking send path.
//!
//! Ordering is a total order: entries pop by ascending deadline, and entries
//! with *equal* deadlines pop in insertion order (a strictly increasing
//! sequence number breaks ties). Timer dispatch is therefore deterministic
//! for a fixed insertion history, which the proptests in this module pin.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

/// Microseconds on the owning transport's clock (wall-derived monotonic time
/// for real transports, virtual time if a simulated transport ever grows
/// timers).
pub type DeadlineMicros = u64;

/// A min-heap of `(deadline, key)` timers with deterministic FIFO
/// tie-breaking on equal deadlines.
#[derive(Debug)]
pub struct DeadlineQueue<K> {
    heap: BinaryHeap<Reverse<(DeadlineMicros, u64, K)>>,
    seq: u64,
}

impl<K: Ord> Default for DeadlineQueue<K> {
    fn default() -> Self {
        DeadlineQueue::new()
    }
}

impl<K: Ord> DeadlineQueue<K> {
    /// An empty queue.
    pub fn new() -> Self {
        DeadlineQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `key` to fire at `at`. Multiple entries may share a key;
    /// each fires independently.
    pub fn schedule(&mut self, at: DeadlineMicros, key: K) {
        self.heap.push(Reverse((at, self.seq, key)));
        self.seq += 1;
    }

    /// The earliest pending deadline, if any.
    pub fn next_deadline(&self) -> Option<DeadlineMicros> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Pops the earliest entry whose deadline is at or before `now`.
    /// Equal-deadline entries pop in the order they were scheduled.
    pub fn pop_due(&mut self, now: DeadlineMicros) -> Option<K> {
        match self.heap.peek() {
            Some(Reverse((at, _, _))) if *at <= now => {
                self.heap.pop().map(|Reverse((_, _, key))| key)
            }
            _ => None,
        }
    }

    /// How long a poll loop may sleep before the next timer is due:
    /// `None` when the queue is empty (sleep indefinitely), `Some(ZERO)`
    /// when a timer is already due.
    pub fn timeout_until(&self, now: DeadlineMicros) -> Option<Duration> {
        self.next_deadline().map(|at| Duration::from_micros(at.saturating_sub(now)))
    }

    /// Drops every pending entry for which `predicate` returns true.
    /// Rebuilds the heap; intended for rare paths (peer removal), not the
    /// per-wakeup hot path.
    pub fn cancel_if(&mut self, mut predicate: impl FnMut(&K) -> bool) {
        let entries: Vec<_> = std::mem::take(&mut self.heap).into_vec();
        for Reverse((at, seq, key)) in entries {
            if !predicate(&key) {
                self.heap.push(Reverse((at, seq, key)));
            }
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Bounded exponential backoff state for one link.
///
/// The *state* lives with the peer and survives individual attempts — and,
/// because both `TcpMesh` and the reactor drive it through a
/// [`DeadlineQueue`], it survives the migration between them: an endpoint
/// mid-backoff keeps its attempt counter and current delay whichever loop
/// fires the timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    base: Duration,
    max: Duration,
    max_attempts: u32,
    attempts: u32,
}

impl Backoff {
    /// A fresh backoff: first delay `base`, doubling per attempt, capped at
    /// `max`, giving up after `max_attempts`.
    pub fn new(base: Duration, max: Duration, max_attempts: u32) -> Self {
        Backoff { base, max, max_attempts, attempts: 0 }
    }

    /// Attempts consumed since the last [`Backoff::reset`].
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Whether the attempt budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.attempts >= self.max_attempts
    }

    /// Consumes one attempt and returns the delay to wait before it, or
    /// `None` when the budget is exhausted.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.exhausted() {
            return None;
        }
        let exp = self.attempts.min(16);
        self.attempts += 1;
        let delay = self.base.checked_mul(1u32 << exp).map(|d| d.min(self.max)).unwrap_or(self.max);
        Some(delay)
    }

    /// Resets the attempt counter after a successful (re)connection.
    pub fn reset(&mut self) {
        self.attempts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_deadline_order() {
        let mut q = DeadlineQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.next_deadline(), Some(10));
        assert_eq!(q.pop_due(100), Some("a"));
        assert_eq!(q.pop_due(100), Some("b"));
        assert_eq!(q.pop_due(100), Some("c"));
        assert_eq!(q.pop_due(100), None);
    }

    #[test]
    fn nothing_due_before_its_deadline() {
        let mut q = DeadlineQueue::new();
        q.schedule(50, 1u32);
        assert_eq!(q.pop_due(49), None);
        assert_eq!(q.pop_due(50), Some(1));
    }

    #[test]
    fn equal_deadlines_pop_in_insertion_order() {
        let mut q = DeadlineQueue::new();
        for key in 0..100u32 {
            q.schedule(7, key);
        }
        for key in 0..100u32 {
            assert_eq!(q.pop_due(7), Some(key));
        }
    }

    #[test]
    fn timeout_until_reflects_head() {
        let mut q: DeadlineQueue<u8> = DeadlineQueue::new();
        assert_eq!(q.timeout_until(0), None);
        q.schedule(1_000, 1);
        assert_eq!(q.timeout_until(400), Some(Duration::from_micros(600)));
        assert_eq!(q.timeout_until(2_000), Some(Duration::ZERO));
    }

    #[test]
    fn cancel_if_removes_matching_keys_only() {
        let mut q = DeadlineQueue::new();
        q.schedule(1, (0u16, 'a'));
        q.schedule(2, (1u16, 'b'));
        q.schedule(3, (0u16, 'c'));
        q.cancel_if(|&(peer, _)| peer == 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(10), Some((1, 'b')));
    }

    #[test]
    fn backoff_doubles_caps_and_exhausts() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(35), 4);
        assert_eq!(b.next_delay(), Some(Duration::from_millis(10)));
        assert_eq!(b.next_delay(), Some(Duration::from_millis(20)));
        assert_eq!(b.next_delay(), Some(Duration::from_millis(35)), "capped");
        assert_eq!(b.next_delay(), Some(Duration::from_millis(35)));
        assert!(b.exhausted());
        assert_eq!(b.next_delay(), None);
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert_eq!(b.next_delay(), Some(Duration::from_millis(10)));
    }

    #[test]
    fn backoff_survives_large_exponents_without_overflow() {
        let mut b = Backoff::new(Duration::from_secs(1), Duration::from_secs(5), 40);
        for _ in 0..40 {
            let d = b.next_delay().unwrap();
            assert!(d <= Duration::from_secs(5));
        }
        assert!(b.exhausted());
    }

    proptest! {
        /// The heap's pop sequence is exactly the input sorted by
        /// (deadline, insertion index): deterministic dispatch, FIFO ties.
        #[test]
        fn pop_order_is_deadline_then_insertion(
            deadlines in proptest::collection::vec(0u64..50, 0..64)
        ) {
            let mut q = DeadlineQueue::new();
            for (idx, &at) in deadlines.iter().enumerate() {
                q.schedule(at, idx);
            }
            let mut expect: Vec<(u64, usize)> =
                deadlines.iter().copied().zip(0..deadlines.len()).collect();
            expect.sort();
            let mut got = Vec::new();
            while let Some(key) = q.pop_due(u64::MAX) {
                got.push(key);
            }
            let expect_keys: Vec<usize> = expect.into_iter().map(|(_, i)| i).collect();
            prop_assert_eq!(got, expect_keys);
        }

        /// Interleaving schedules with partial drains never breaks the
        /// order invariant: every popped deadline is <= the next pending one.
        #[test]
        fn partial_drains_preserve_order(
            ops in proptest::collection::vec((0u64..100, any::<bool>()), 1..64)
        ) {
            let mut q = DeadlineQueue::new();
            let mut last_popped: Option<u64> = None;
            let mut now = 0u64;
            for (at, drain) in ops {
                if drain {
                    now = now.max(at);
                    while let Some(key) = q.pop_due(now) {
                        // Keys carry their deadline for the assertion.
                        if let Some(prev) = last_popped {
                            prop_assert!(key >= prev || key <= now);
                        }
                        last_popped = Some(key);
                    }
                } else {
                    // Never schedule into the drained past: matches how the
                    // transports use the queue (deadlines are now + delay).
                    q.schedule(now + at, now + at);
                }
            }
        }
    }
}
