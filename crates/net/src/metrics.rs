use std::sync::{Arc, Mutex};

use sdso_obs::{Counter, Histogram, MetricsRegistry};

use crate::message::MsgClass;
use crate::time::SimSpan;

/// The `class` operand flight-recorder Send/Recv events carry.
pub(crate) fn obs_class(class: MsgClass) -> u32 {
    match class {
        MsgClass::Control => 0,
        MsgClass::Data => 1,
    }
}

/// Message/byte counters for one [`MsgClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassCounters {
    /// Messages counted.
    pub msgs: u64,
    /// Modelled wire bytes counted.
    pub bytes: u64,
}

/// A point-in-time snapshot of one endpoint's traffic counters.
///
/// The evaluation harness aggregates these across nodes to regenerate the
/// paper's Figure 6 (total messages) and Figure 7 (data messages only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetMetricsSnapshot {
    /// Control messages sent.
    pub control_sent: ClassCounters,
    /// Data messages sent.
    pub data_sent: ClassCounters,
    /// Control messages received.
    pub control_recv: ClassCounters,
    /// Data messages received.
    pub data_recv: ClassCounters,
    /// Time this endpoint spent blocked inside `recv`, in microseconds.
    pub blocked_micros: u64,
    /// Messages the fault layer silently dropped (chaos testing).
    pub drops_injected: u64,
    /// Extra copies the fault layer delivered.
    pub dups_injected: u64,
    /// Messages the fault layer delayed (reorder hold-back or jitter).
    pub delays_injected: u64,
    /// Send attempts that were retried after a transport error.
    pub retries: u64,
    /// Connections re-established after a peer drop.
    pub reconnects: u64,
}

impl NetMetricsSnapshot {
    /// All messages sent, regardless of class.
    pub fn total_sent(&self) -> u64 {
        self.control_sent.msgs + self.data_sent.msgs
    }

    /// All messages received, regardless of class.
    pub fn total_recv(&self) -> u64 {
        self.control_recv.msgs + self.data_recv.msgs
    }

    /// Total modelled bytes sent.
    pub fn bytes_sent(&self) -> u64 {
        self.control_sent.bytes + self.data_sent.bytes
    }

    /// Time blocked in `recv` as a [`SimSpan`].
    pub fn blocked(&self) -> SimSpan {
        SimSpan::from_micros(self.blocked_micros)
    }

    /// Element-wise sum of two snapshots (for cluster-wide aggregation).
    pub fn merged(&self, other: &NetMetricsSnapshot) -> NetMetricsSnapshot {
        fn add(a: ClassCounters, b: ClassCounters) -> ClassCounters {
            ClassCounters { msgs: a.msgs + b.msgs, bytes: a.bytes + b.bytes }
        }
        NetMetricsSnapshot {
            control_sent: add(self.control_sent, other.control_sent),
            data_sent: add(self.data_sent, other.data_sent),
            control_recv: add(self.control_recv, other.control_recv),
            data_recv: add(self.data_recv, other.data_recv),
            blocked_micros: self.blocked_micros + other.blocked_micros,
            drops_injected: self.drops_injected + other.drops_injected,
            dups_injected: self.dups_injected + other.dups_injected,
            delays_injected: self.delays_injected + other.delays_injected,
            retries: self.retries + other.retries,
            reconnects: self.reconnects + other.reconnects,
        }
    }

    /// Element-wise `self - earlier`, saturating at zero so a snapshot
    /// delta can never underflow even if the inputs are swapped.
    pub fn saturating_delta(&self, earlier: &NetMetricsSnapshot) -> NetMetricsSnapshot {
        fn sub(a: ClassCounters, b: ClassCounters) -> ClassCounters {
            ClassCounters {
                msgs: a.msgs.saturating_sub(b.msgs),
                bytes: a.bytes.saturating_sub(b.bytes),
            }
        }
        NetMetricsSnapshot {
            control_sent: sub(self.control_sent, earlier.control_sent),
            data_sent: sub(self.data_sent, earlier.data_sent),
            control_recv: sub(self.control_recv, earlier.control_recv),
            data_recv: sub(self.data_recv, earlier.data_recv),
            blocked_micros: self.blocked_micros.saturating_sub(earlier.blocked_micros),
            drops_injected: self.drops_injected.saturating_sub(earlier.drops_injected),
            dups_injected: self.dups_injected.saturating_sub(earlier.dups_injected),
            delays_injected: self.delays_injected.saturating_sub(earlier.delays_injected),
            retries: self.retries.saturating_sub(earlier.retries),
            reconnects: self.reconnects.saturating_sub(earlier.reconnects),
        }
    }
}

/// Thread-safe live traffic counters attached to an endpoint, backed by
/// the unified `sdso-obs` [`MetricsRegistry`].
///
/// Cloning shares the underlying counters; use [`NetMetrics::snapshot`]
/// (cumulative) or [`NetMetrics::snapshot_delta`] (since the previous
/// delta call) to read them. The snapshot types are thin views kept for
/// the Figure 5–8 harness; new consumers can read the registry directly.
#[derive(Debug, Clone)]
pub struct NetMetrics {
    registry: MetricsRegistry,
    control_sent_msgs: Counter,
    control_sent_bytes: Counter,
    data_sent_msgs: Counter,
    data_sent_bytes: Counter,
    control_recv_msgs: Counter,
    control_recv_bytes: Counter,
    data_recv_msgs: Counter,
    data_recv_bytes: Counter,
    blocked_micros: Counter,
    drops_injected: Counter,
    dups_injected: Counter,
    delays_injected: Counter,
    retries: Counter,
    reconnects: Counter,
    batch_count: Counter,
    batch_msgs: Counter,
    batch_bytes: Counter,
    wire_bytes: Histogram,
    blocked_waits: Histogram,
    batch_occupancy: Histogram,
    last: Arc<Mutex<NetMetricsSnapshot>>,
}

impl Default for NetMetrics {
    fn default() -> Self {
        NetMetrics::new()
    }
}

impl NetMetrics {
    /// Creates zeroed counters backed by a fresh private registry.
    pub fn new() -> Self {
        NetMetrics::in_registry(&MetricsRegistry::new())
    }

    /// Creates counters registered under `net.*` in a shared registry, so
    /// an endpoint's traffic shows up in its node's unified snapshot.
    pub fn in_registry(registry: &MetricsRegistry) -> Self {
        NetMetrics {
            registry: registry.clone(),
            control_sent_msgs: registry.counter("net.control.sent.msgs"),
            control_sent_bytes: registry.counter("net.control.sent.bytes"),
            data_sent_msgs: registry.counter("net.data.sent.msgs"),
            data_sent_bytes: registry.counter("net.data.sent.bytes"),
            control_recv_msgs: registry.counter("net.control.recv.msgs"),
            control_recv_bytes: registry.counter("net.control.recv.bytes"),
            data_recv_msgs: registry.counter("net.data.recv.msgs"),
            data_recv_bytes: registry.counter("net.data.recv.bytes"),
            blocked_micros: registry.counter("net.blocked_micros"),
            drops_injected: registry.counter("net.faults.drops"),
            dups_injected: registry.counter("net.faults.dups"),
            delays_injected: registry.counter("net.faults.delays"),
            retries: registry.counter("net.retries"),
            reconnects: registry.counter("net.reconnects"),
            batch_count: registry.counter("net.batch.count"),
            batch_msgs: registry.counter("net.batch.msgs"),
            batch_bytes: registry.counter("net.batch.bytes"),
            wire_bytes: registry.histogram("net.wire_bytes"),
            blocked_waits: registry.histogram("net.blocked_wait_micros"),
            batch_occupancy: registry.histogram("net.batch.occupancy"),
            last: Arc::new(Mutex::new(NetMetricsSnapshot::default())),
        }
    }

    /// The registry these counters live in.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Records one sent message of `class` occupying `wire_len` bytes.
    pub fn record_send(&self, class: MsgClass, wire_len: u32) {
        let (msgs, bytes) = match class {
            MsgClass::Control => (&self.control_sent_msgs, &self.control_sent_bytes),
            MsgClass::Data => (&self.data_sent_msgs, &self.data_sent_bytes),
        };
        msgs.inc();
        bytes.add(u64::from(wire_len));
        self.wire_bytes.observe(u64::from(wire_len));
    }

    /// Records one received message of `class` occupying `wire_len` bytes.
    pub fn record_recv(&self, class: MsgClass, wire_len: u32) {
        let (msgs, bytes) = match class {
            MsgClass::Control => (&self.control_recv_msgs, &self.control_recv_bytes),
            MsgClass::Data => (&self.data_recv_msgs, &self.data_recv_bytes),
        };
        msgs.inc();
        bytes.add(u64::from(wire_len));
    }

    /// Adds `span` to the time-blocked-in-`recv` counter.
    pub fn record_blocked(&self, span: SimSpan) {
        self.blocked_micros.add(span.as_micros());
        self.blocked_waits.observe(span.as_micros());
    }

    /// Records the effects of one fault-injection verdict.
    pub fn record_fault(&self, verdict: &crate::fault::Verdict) {
        if verdict.dropped {
            self.drops_injected.inc();
        }
        if verdict.duplicated {
            self.dups_injected.inc();
        }
        if verdict.extra_delay > SimSpan::ZERO {
            self.delays_injected.inc();
        }
    }

    /// Records one batched transport flush carrying `msgs` messages and
    /// `wire_bytes` modelled bytes.
    ///
    /// Per-message send accounting still happens via
    /// [`NetMetrics::record_send`] — batch counters only live in the
    /// registry (`net.batch.*`), never in [`NetMetricsSnapshot`], so they
    /// measure write collapsing without disturbing the Figure 6/7 totals.
    pub fn record_batch(&self, msgs: usize, wire_bytes: u64) {
        self.batch_count.inc();
        self.batch_msgs.add(msgs as u64);
        self.batch_bytes.add(wire_bytes);
        self.batch_occupancy.observe(msgs as u64);
    }

    /// Records one retried send attempt.
    pub fn record_retry(&self) {
        self.retries.inc();
    }

    /// Records one re-established connection.
    pub fn record_reconnect(&self) {
        self.reconnects.inc();
    }

    /// Reads the current cumulative counter values.
    pub fn snapshot(&self) -> NetMetricsSnapshot {
        NetMetricsSnapshot {
            control_sent: ClassCounters {
                msgs: self.control_sent_msgs.get(),
                bytes: self.control_sent_bytes.get(),
            },
            data_sent: ClassCounters {
                msgs: self.data_sent_msgs.get(),
                bytes: self.data_sent_bytes.get(),
            },
            control_recv: ClassCounters {
                msgs: self.control_recv_msgs.get(),
                bytes: self.control_recv_bytes.get(),
            },
            data_recv: ClassCounters {
                msgs: self.data_recv_msgs.get(),
                bytes: self.data_recv_bytes.get(),
            },
            blocked_micros: self.blocked_micros.get(),
            drops_injected: self.drops_injected.get(),
            dups_injected: self.dups_injected.get(),
            delays_injected: self.delays_injected.get(),
            retries: self.retries.get(),
            reconnects: self.reconnects.get(),
        }
    }

    /// Reads the counters accumulated *since the previous `snapshot_delta`
    /// call* (or since creation, for the first call).
    ///
    /// Live counters are cumulative for the endpoint's lifetime, so
    /// back-to-back experiment runs over a reused mesh double-count when
    /// they read [`NetMetrics::snapshot`]; per-run accounting must use
    /// this instead. The delta baseline is shared by clones.
    pub fn snapshot_delta(&self) -> NetMetricsSnapshot {
        let now = self.snapshot();
        let mut last = self.last.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let delta = now.saturating_delta(&last);
        *last = now;
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn send_recv_counters_split_by_class() {
        let m = NetMetrics::new();
        m.record_send(MsgClass::Control, 100);
        m.record_send(MsgClass::Data, 2048);
        m.record_send(MsgClass::Data, 2048);
        m.record_recv(MsgClass::Control, 64);
        let s = m.snapshot();
        assert_eq!(s.control_sent, ClassCounters { msgs: 1, bytes: 100 });
        assert_eq!(s.data_sent, ClassCounters { msgs: 2, bytes: 4096 });
        assert_eq!(s.control_recv.msgs, 1);
        assert_eq!(s.total_sent(), 3);
        assert_eq!(s.bytes_sent(), 4196);
    }

    #[test]
    fn clone_shares_counters() {
        let m = NetMetrics::new();
        let m2 = m.clone();
        m2.record_send(MsgClass::Data, 10);
        assert_eq!(m.snapshot().data_sent.msgs, 1);
    }

    #[test]
    fn merged_adds_elementwise() {
        let a = NetMetrics::new();
        a.record_send(MsgClass::Data, 5);
        let b = NetMetrics::new();
        b.record_send(MsgClass::Data, 7);
        b.record_blocked(SimSpan::from_micros(11));
        let merged = a.snapshot().merged(&b.snapshot());
        assert_eq!(merged.data_sent, ClassCounters { msgs: 2, bytes: 12 });
        assert_eq!(merged.blocked_micros, 11);
    }

    #[test]
    fn counters_surface_in_the_registry() {
        let registry = MetricsRegistry::new();
        let m = NetMetrics::in_registry(&registry);
        m.record_send(MsgClass::Data, 256);
        m.record_recv(MsgClass::Control, 32);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("net.data.sent.msgs"), 1);
        assert_eq!(snap.counter("net.data.sent.bytes"), 256);
        assert_eq!(snap.counter("net.control.recv.msgs"), 1);
        assert_eq!(snap.histograms["net.wire_bytes"].count, 1);
    }

    #[test]
    fn batch_counters_surface_in_registry_but_not_snapshot() {
        let registry = MetricsRegistry::new();
        let m = NetMetrics::in_registry(&registry);
        let before = m.snapshot();
        m.record_batch(3, 6144);
        m.record_batch(1, 2048);
        assert_eq!(m.snapshot(), before, "batching must not disturb class counters");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("net.batch.count"), 2);
        assert_eq!(snap.counter("net.batch.msgs"), 4);
        assert_eq!(snap.counter("net.batch.bytes"), 8192);
        assert_eq!(snap.histograms["net.batch.occupancy"].count, 2);
    }

    #[test]
    fn snapshot_delta_resets_between_reads() {
        let m = NetMetrics::new();
        m.record_send(MsgClass::Data, 10);
        m.record_send(MsgClass::Data, 10);
        let first = m.snapshot_delta();
        assert_eq!(first.data_sent.msgs, 2);
        m.record_send(MsgClass::Data, 10);
        let second = m.snapshot_delta();
        assert_eq!(second.data_sent.msgs, 1, "delta covers only the new run");
        assert_eq!(m.snapshot().data_sent.msgs, 3, "cumulative view unchanged");
        assert_eq!(m.snapshot_delta().data_sent.msgs, 0);
    }

    proptest! {
        #[test]
        fn deltas_never_underflow(
            sends in proptest::collection::vec(1u32..4096, 0..32),
            cut in 0usize..32,
        ) {
            let m = NetMetrics::new();
            for &len in sends.iter().take(cut.min(sends.len())) {
                m.record_send(MsgClass::Data, len);
            }
            let early = m.snapshot();
            for &len in sends.iter().skip(cut.min(sends.len())) {
                m.record_send(MsgClass::Data, len);
            }
            let late = m.snapshot();
            let delta = late.saturating_delta(&early);
            prop_assert_eq!(
                delta.data_sent.msgs,
                sends.len() as u64 - cut.min(sends.len()) as u64
            );
            // Swapped operands saturate to zero instead of wrapping.
            let swapped = early.saturating_delta(&late);
            prop_assert!(swapped.data_sent.msgs == 0);
            prop_assert!(swapped.data_sent.bytes == 0);
        }
    }
}
