use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::message::MsgClass;
use crate::time::SimSpan;

/// Message/byte counters for one [`MsgClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassCounters {
    /// Messages counted.
    pub msgs: u64,
    /// Modelled wire bytes counted.
    pub bytes: u64,
}

/// A point-in-time snapshot of one endpoint's traffic counters.
///
/// The evaluation harness aggregates these across nodes to regenerate the
/// paper's Figure 6 (total messages) and Figure 7 (data messages only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetMetricsSnapshot {
    /// Control messages sent.
    pub control_sent: ClassCounters,
    /// Data messages sent.
    pub data_sent: ClassCounters,
    /// Control messages received.
    pub control_recv: ClassCounters,
    /// Data messages received.
    pub data_recv: ClassCounters,
    /// Time this endpoint spent blocked inside `recv`, in microseconds.
    pub blocked_micros: u64,
    /// Messages the fault layer silently dropped (chaos testing).
    pub drops_injected: u64,
    /// Extra copies the fault layer delivered.
    pub dups_injected: u64,
    /// Messages the fault layer delayed (reorder hold-back or jitter).
    pub delays_injected: u64,
    /// Send attempts that were retried after a transport error.
    pub retries: u64,
    /// Connections re-established after a peer drop.
    pub reconnects: u64,
}

impl NetMetricsSnapshot {
    /// All messages sent, regardless of class.
    pub fn total_sent(&self) -> u64 {
        self.control_sent.msgs + self.data_sent.msgs
    }

    /// All messages received, regardless of class.
    pub fn total_recv(&self) -> u64 {
        self.control_recv.msgs + self.data_recv.msgs
    }

    /// Total modelled bytes sent.
    pub fn bytes_sent(&self) -> u64 {
        self.control_sent.bytes + self.data_sent.bytes
    }

    /// Time blocked in `recv` as a [`SimSpan`].
    pub fn blocked(&self) -> SimSpan {
        SimSpan::from_micros(self.blocked_micros)
    }

    /// Element-wise sum of two snapshots (for cluster-wide aggregation).
    pub fn merged(&self, other: &NetMetricsSnapshot) -> NetMetricsSnapshot {
        fn add(a: ClassCounters, b: ClassCounters) -> ClassCounters {
            ClassCounters { msgs: a.msgs + b.msgs, bytes: a.bytes + b.bytes }
        }
        NetMetricsSnapshot {
            control_sent: add(self.control_sent, other.control_sent),
            data_sent: add(self.data_sent, other.data_sent),
            control_recv: add(self.control_recv, other.control_recv),
            data_recv: add(self.data_recv, other.data_recv),
            blocked_micros: self.blocked_micros + other.blocked_micros,
            drops_injected: self.drops_injected + other.drops_injected,
            dups_injected: self.dups_injected + other.dups_injected,
            delays_injected: self.delays_injected + other.delays_injected,
            retries: self.retries + other.retries,
            reconnects: self.reconnects + other.reconnects,
        }
    }
}

/// Thread-safe live traffic counters attached to an endpoint.
///
/// Cloning shares the underlying counters; use [`NetMetrics::snapshot`] to
/// read them.
#[derive(Debug, Clone, Default)]
pub struct NetMetrics {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    control_sent_msgs: AtomicU64,
    control_sent_bytes: AtomicU64,
    data_sent_msgs: AtomicU64,
    data_sent_bytes: AtomicU64,
    control_recv_msgs: AtomicU64,
    control_recv_bytes: AtomicU64,
    data_recv_msgs: AtomicU64,
    data_recv_bytes: AtomicU64,
    blocked_micros: AtomicU64,
    drops_injected: AtomicU64,
    dups_injected: AtomicU64,
    delays_injected: AtomicU64,
    retries: AtomicU64,
    reconnects: AtomicU64,
}

impl NetMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        NetMetrics::default()
    }

    /// Records one sent message of `class` occupying `wire_len` bytes.
    pub fn record_send(&self, class: MsgClass, wire_len: u32) {
        let (msgs, bytes) = match class {
            MsgClass::Control => (&self.inner.control_sent_msgs, &self.inner.control_sent_bytes),
            MsgClass::Data => (&self.inner.data_sent_msgs, &self.inner.data_sent_bytes),
        };
        msgs.fetch_add(1, Ordering::Relaxed);
        bytes.fetch_add(u64::from(wire_len), Ordering::Relaxed);
    }

    /// Records one received message of `class` occupying `wire_len` bytes.
    pub fn record_recv(&self, class: MsgClass, wire_len: u32) {
        let (msgs, bytes) = match class {
            MsgClass::Control => (&self.inner.control_recv_msgs, &self.inner.control_recv_bytes),
            MsgClass::Data => (&self.inner.data_recv_msgs, &self.inner.data_recv_bytes),
        };
        msgs.fetch_add(1, Ordering::Relaxed);
        bytes.fetch_add(u64::from(wire_len), Ordering::Relaxed);
    }

    /// Adds `span` to the time-blocked-in-`recv` counter.
    pub fn record_blocked(&self, span: SimSpan) {
        self.inner.blocked_micros.fetch_add(span.as_micros(), Ordering::Relaxed);
    }

    /// Records the effects of one fault-injection verdict.
    pub fn record_fault(&self, verdict: &crate::fault::Verdict) {
        if verdict.dropped {
            self.inner.drops_injected.fetch_add(1, Ordering::Relaxed);
        }
        if verdict.duplicated {
            self.inner.dups_injected.fetch_add(1, Ordering::Relaxed);
        }
        if verdict.extra_delay > SimSpan::ZERO {
            self.inner.delays_injected.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one retried send attempt.
    pub fn record_retry(&self) {
        self.inner.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one re-established connection.
    pub fn record_reconnect(&self) {
        self.inner.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads the current counter values.
    pub fn snapshot(&self) -> NetMetricsSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        NetMetricsSnapshot {
            control_sent: ClassCounters {
                msgs: load(&self.inner.control_sent_msgs),
                bytes: load(&self.inner.control_sent_bytes),
            },
            data_sent: ClassCounters {
                msgs: load(&self.inner.data_sent_msgs),
                bytes: load(&self.inner.data_sent_bytes),
            },
            control_recv: ClassCounters {
                msgs: load(&self.inner.control_recv_msgs),
                bytes: load(&self.inner.control_recv_bytes),
            },
            data_recv: ClassCounters {
                msgs: load(&self.inner.data_recv_msgs),
                bytes: load(&self.inner.data_recv_bytes),
            },
            blocked_micros: load(&self.inner.blocked_micros),
            drops_injected: load(&self.inner.drops_injected),
            dups_injected: load(&self.inner.dups_injected),
            delays_injected: load(&self.inner.delays_injected),
            retries: load(&self.inner.retries),
            reconnects: load(&self.inner.reconnects),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_counters_split_by_class() {
        let m = NetMetrics::new();
        m.record_send(MsgClass::Control, 100);
        m.record_send(MsgClass::Data, 2048);
        m.record_send(MsgClass::Data, 2048);
        m.record_recv(MsgClass::Control, 64);
        let s = m.snapshot();
        assert_eq!(s.control_sent, ClassCounters { msgs: 1, bytes: 100 });
        assert_eq!(s.data_sent, ClassCounters { msgs: 2, bytes: 4096 });
        assert_eq!(s.control_recv.msgs, 1);
        assert_eq!(s.total_sent(), 3);
        assert_eq!(s.bytes_sent(), 4196);
    }

    #[test]
    fn clone_shares_counters() {
        let m = NetMetrics::new();
        let m2 = m.clone();
        m2.record_send(MsgClass::Data, 10);
        assert_eq!(m.snapshot().data_sent.msgs, 1);
    }

    #[test]
    fn merged_adds_elementwise() {
        let a = NetMetrics::new();
        a.record_send(MsgClass::Data, 5);
        let b = NetMetrics::new();
        b.record_send(MsgClass::Data, 7);
        b.record_blocked(SimSpan::from_micros(11));
        let merged = a.snapshot().merged(&b.snapshot());
        assert_eq!(merged.data_sent, ClassCounters { msgs: 2, bytes: 12 });
        assert_eq!(merged.blocked_micros, 11);
    }
}
