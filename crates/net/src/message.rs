use bytes::Bytes;

use crate::endpoint::NodeId;

/// Classification of a message for accounting purposes.
///
/// The paper's evaluation distinguishes *control* messages (lock requests,
/// grants, SYNC rendezvous markers, pull requests, …) from *data* messages
/// (object bodies and diffs): Figure 6 plots their sum, Figure 7 data
/// messages alone. Transports count each class separately in
/// [`NetMetrics`](crate::NetMetrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Protocol control traffic (locks, SYNCs, acks, pull requests).
    Control,
    /// Object state: full bodies or diffs.
    Data,
}

impl MsgClass {
    /// Stable wire discriminant.
    pub(crate) fn to_wire(self) -> u8 {
        match self {
            MsgClass::Control => 0,
            MsgClass::Data => 1,
        }
    }

    /// Inverse of [`MsgClass::to_wire`].
    pub(crate) fn from_wire(b: u8) -> Option<MsgClass> {
        match b {
            0 => Some(MsgClass::Control),
            1 => Some(MsgClass::Data),
            _ => None,
        }
    }
}

/// A message body handed to a transport.
///
/// `bytes` is the encoded protocol message. `wire_len` is the number of
/// bytes the message is *modelled* to occupy on the wire, which defaults to
/// the encoding length but may be larger: the original S-DSO system exchanged
/// fixed-size 2048-byte frames for both control and data messages, and the
/// evaluation harness reproduces that by padding `wire_len` (never the actual
/// allocation) to the configured frame size. Simulated transports charge
/// bandwidth for `wire_len`; real transports transmit `bytes` and carry
/// `wire_len` in the frame header so metrics agree across transports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Payload {
    /// Accounting class of this message.
    pub class: MsgClass,
    /// Encoded message body.
    pub bytes: Bytes,
    /// Modelled on-the-wire size in bytes (≥ `bytes.len()`).
    pub wire_len: u32,
}

impl Payload {
    /// Creates a payload of the given class whose modelled size equals its
    /// encoded size.
    pub fn new(class: MsgClass, bytes: impl Into<Bytes>) -> Self {
        let bytes = bytes.into();
        let wire_len = bytes.len() as u32;
        Payload { class, bytes, wire_len }
    }

    /// Convenience constructor for a control message.
    pub fn control(bytes: impl Into<Bytes>) -> Self {
        Payload::new(MsgClass::Control, bytes)
    }

    /// Convenience constructor for a data message.
    pub fn data(bytes: impl Into<Bytes>) -> Self {
        Payload::new(MsgClass::Data, bytes)
    }

    /// Sets the modelled wire size, clamped up to at least the encoded size.
    ///
    /// Use this to reproduce systems that exchange fixed-size frames: the
    /// paper reports an average size of 2048 bytes for *both* control and
    /// data messages.
    pub fn with_wire_len(mut self, wire_len: u32) -> Self {
        self.wire_len = wire_len.max(self.bytes.len() as u32);
        self
    }

    /// The modelled on-the-wire size.
    pub fn wire_len(&self) -> u32 {
        self.wire_len
    }
}

/// A received message: who sent it plus its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incoming {
    /// The sending node.
    pub from: NodeId,
    /// The message body.
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_defaults_to_encoding_len() {
        let p = Payload::data(vec![0u8; 37]);
        assert_eq!(p.wire_len(), 37);
    }

    #[test]
    fn with_wire_len_never_shrinks_below_encoding() {
        let p = Payload::data(vec![0u8; 100]).with_wire_len(10);
        assert_eq!(p.wire_len(), 100);
        let p = Payload::control(vec![0u8; 8]).with_wire_len(2048);
        assert_eq!(p.wire_len(), 2048);
    }

    #[test]
    fn class_wire_roundtrip() {
        for class in [MsgClass::Control, MsgClass::Data] {
            assert_eq!(MsgClass::from_wire(class.to_wire()), Some(class));
        }
        assert_eq!(MsgClass::from_wire(7), None);
    }
}
