//! A fault-injecting decorator for any [`Endpoint`].
//!
//! [`FaultyEndpoint`] wraps a real transport (in-process channels, TCP)
//! and executes a [`FaultPlan`] against its traffic: sends may be dropped
//! or duplicated, receives may be held back to let later messages
//! overtake, and timed partitions sever links until they heal. The same
//! plan type drives the virtual-time simulator, so a chaos scenario runs
//! unchanged over both worlds.
//!
//! Fault decisions are drawn per endpoint from `plan.seed ^ node_id`, so
//! a fixed plan gives each node an independent but reproducible stream.

use std::collections::VecDeque;

use sdso_obs::{EventKind, Recorder, FAULT_DELAY, FAULT_DROP, FAULT_DUP};

use crate::endpoint::{Endpoint, NodeId};
use crate::error::NetError;
use crate::fault::{FaultInjector, FaultPlan};
use crate::message::{Incoming, Payload};
use crate::metrics::{NetMetrics, NetMetricsSnapshot};
use crate::time::{SimInstant, SimSpan};

/// Cap on simultaneously held-back messages (reorder buffer).
const MAX_HELD: usize = 16;

/// One received message being held back so later traffic can overtake it.
#[derive(Debug)]
struct Held {
    msg: Incoming,
    /// Deliveries still allowed to pass before this one is released.
    passes_left: u32,
}

/// An [`Endpoint`] decorator that injects faults per a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultyEndpoint<E> {
    inner: E,
    injector: FaultInjector,
    held: VecDeque<Held>,
    fault_metrics: NetMetrics,
    recorder: Recorder,
}

impl<E: Endpoint> FaultyEndpoint<E> {
    /// Wraps `inner`, drawing fault decisions from `plan.seed ^ node_id`.
    pub fn new(inner: E, plan: FaultPlan) -> Self {
        let mut plan = plan;
        plan.seed ^= u64::from(inner.node_id());
        FaultyEndpoint {
            inner,
            injector: FaultInjector::new(plan),
            held: VecDeque::new(),
            fault_metrics: NetMetrics::new(),
            recorder: Recorder::disabled(),
        }
    }

    /// Emits a `FaultInjected` instant for a non-trivial verdict.
    fn note_fault(&self, verdict: &crate::fault::Verdict) {
        let mut bits = 0;
        if verdict.dropped {
            bits |= FAULT_DROP;
        }
        if verdict.duplicated {
            bits |= FAULT_DUP;
        }
        if verdict.extra_delay > SimSpan::ZERO {
            bits |= FAULT_DELAY;
        }
        if bits != 0 {
            self.recorder.record(
                self.inner.now().as_micros(),
                EventKind::FaultInjected,
                bits,
                0,
                0,
            );
        }
    }

    /// The wrapped endpoint.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Consumes the wrapper, returning the transport.
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// Pops a held-back message whose pass allowance is exhausted.
    fn release_expired(&mut self) -> Option<Incoming> {
        let pos = self.held.iter().position(|h| h.passes_left == 0)?;
        self.held.remove(pos).map(|h| h.msg)
    }

    /// Decides the fate of one freshly received message: `Some` to deliver
    /// now, `None` when it was put into the hold-back buffer.
    fn admit(&mut self, msg: Incoming) -> Option<Incoming> {
        for h in &mut self.held {
            h.passes_left = h.passes_left.saturating_sub(1);
        }
        let verdict = self.injector.judge(msg.from, self.inner.node_id(), self.inner.now());
        let hold = verdict.extra_delay > SimSpan::ZERO && self.held.len() < MAX_HELD;
        if hold {
            let delay_only = crate::fault::Verdict {
                dropped: false,
                duplicated: false,
                extra_delay: verdict.extra_delay,
            };
            self.fault_metrics.record_fault(&delay_only);
            self.note_fault(&delay_only);
            // Convert the delay into a pass count: one overtaking message
            // per modelled millisecond, at least one.
            let passes = (verdict.extra_delay.as_micros() / 1_000).clamp(1, 8) as u32;
            self.held.push_back(Held { msg, passes_left: passes });
            self.release_expired()
        } else {
            Some(msg)
        }
    }
}

impl<E: Endpoint> Endpoint for FaultyEndpoint<E> {
    fn node_id(&self) -> NodeId {
        self.inner.node_id()
    }

    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn send(&mut self, to: NodeId, payload: Payload) -> Result<(), NetError> {
        crate::endpoint::check_peer(self.node_id(), to, self.num_nodes())?;
        let verdict = self.injector.judge(self.node_id(), to, self.inner.now());
        let send_side = crate::fault::Verdict {
            extra_delay: SimSpan::ZERO, // delay is applied on the receive side
            ..verdict
        };
        self.fault_metrics.record_fault(&send_side);
        self.note_fault(&send_side);
        if verdict.dropped {
            return Ok(());
        }
        if verdict.duplicated {
            self.inner.send(to, payload.clone())?;
        }
        self.inner.send(to, payload)
    }

    fn send_batch(&mut self, to: NodeId, payloads: Vec<Payload>) -> Result<(), NetError> {
        crate::endpoint::check_peer(self.node_id(), to, self.num_nodes())?;
        // Judge every sub-payload in order, exactly as a loop of `send`
        // calls would, so a fixed seed yields the same verdict stream
        // whether or not batching is enabled. Survivors (with duplicates
        // doubled in place) still go down as one batch.
        let mut surviving = Vec::with_capacity(payloads.len());
        for payload in payloads {
            let verdict = self.injector.judge(self.node_id(), to, self.inner.now());
            let send_side = crate::fault::Verdict {
                extra_delay: SimSpan::ZERO, // delay is applied on the receive side
                ..verdict
            };
            self.fault_metrics.record_fault(&send_side);
            self.note_fault(&send_side);
            if verdict.dropped {
                continue;
            }
            if verdict.duplicated {
                surviving.push(payload.clone());
            }
            surviving.push(payload);
        }
        if surviving.is_empty() {
            return Ok(());
        }
        self.inner.send_batch(to, surviving)
    }

    fn recv(&mut self) -> Result<Incoming, NetError> {
        loop {
            if let Some(msg) = self.release_expired() {
                return Ok(msg);
            }
            match self.inner.recv() {
                Ok(msg) => {
                    if let Some(msg) = self.admit(msg) {
                        return Ok(msg);
                    }
                }
                // The stream may end while messages are still held back:
                // flush them before reporting the disconnect.
                Err(e) => match self.held.pop_front() {
                    Some(h) => return Ok(h.msg),
                    None => return Err(e),
                },
            }
        }
    }

    fn try_recv(&mut self) -> Result<Option<Incoming>, NetError> {
        loop {
            if let Some(msg) = self.release_expired() {
                return Ok(Some(msg));
            }
            match self.inner.try_recv()? {
                Some(msg) => {
                    if let Some(msg) = self.admit(msg) {
                        return Ok(Some(msg));
                    }
                }
                // Nothing in flight right now: release the oldest held
                // message (nothing is left to overtake it) rather than
                // reporting emptiness while messages sit in the buffer.
                None => return Ok(self.held.pop_front().map(|h| h.msg)),
            }
        }
    }

    fn recv_deadline(&mut self, timeout: SimSpan) -> Result<Option<Incoming>, NetError> {
        loop {
            if let Some(msg) = self.release_expired() {
                return Ok(Some(msg));
            }
            match self.inner.recv_deadline(timeout)? {
                Some(msg) => {
                    if let Some(msg) = self.admit(msg) {
                        return Ok(Some(msg));
                    }
                }
                // Timed out: surface any held message rather than stalling
                // the caller behind the hold-back buffer.
                None => return Ok(self.held.pop_front().map(|h| h.msg)),
            }
        }
    }

    fn advance(&mut self, dt: SimSpan) {
        self.inner.advance(dt);
    }

    fn now(&self) -> SimInstant {
        self.inner.now()
    }

    fn metrics(&self) -> NetMetricsSnapshot {
        self.inner.metrics().merged(&self.fault_metrics.snapshot())
    }

    fn metrics_delta(&mut self) -> NetMetricsSnapshot {
        self.inner.metrics_delta().merged(&self.fault_metrics.snapshot_delta())
    }

    fn attach_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder.clone();
        self.inner.attach_recorder(recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryHub;

    fn pair(
        plan: FaultPlan,
    ) -> (FaultyEndpoint<crate::memory::MemoryEndpoint>, crate::memory::MemoryEndpoint) {
        let mut eps = MemoryHub::new(2).into_endpoints();
        let receiver = eps.pop().unwrap();
        let sender = FaultyEndpoint::new(eps.pop().unwrap(), plan);
        (sender, receiver)
    }

    #[test]
    fn zero_plan_is_transparent() {
        let (mut a, mut b) = pair(FaultPlan::new(5));
        for i in 0..20u8 {
            a.send(1, Payload::data(vec![i])).unwrap();
        }
        for i in 0..20u8 {
            assert_eq!(b.recv().unwrap().payload.bytes[0], i);
        }
        let m = a.metrics();
        assert_eq!(m.drops_injected, 0);
        assert_eq!(m.dups_injected, 0);
        assert_eq!(m.data_sent.msgs, 20);
    }

    #[test]
    fn drops_are_counted_and_not_delivered() {
        let (mut a, mut b) = pair(FaultPlan::new(5).with_drop(1.0));
        for i in 0..10u8 {
            a.send(1, Payload::data(vec![i])).unwrap();
        }
        assert!(b.try_recv().unwrap().is_none());
        let m = a.metrics();
        assert_eq!(m.drops_injected, 10);
        assert_eq!(m.data_sent.msgs, 0);
    }

    #[test]
    fn dups_deliver_two_copies() {
        let (mut a, mut b) = pair(FaultPlan::new(5).with_dup(1.0));
        a.send(1, Payload::data(vec![9])).unwrap();
        assert_eq!(b.recv().unwrap().payload.bytes[0], 9);
        assert_eq!(b.recv().unwrap().payload.bytes[0], 9);
        assert_eq!(a.metrics().dups_injected, 1);
        assert_eq!(a.metrics().data_sent.msgs, 2);
    }

    #[test]
    fn send_batch_draws_the_same_verdict_stream_as_looped_sends() {
        // Same seed, same traffic: a batch must consume verdicts exactly
        // like the equivalent loop of single sends.
        let plan = FaultPlan::new(77).with_drop(0.5);
        let (mut a, mut b) = pair(plan);
        a.send_batch(1, (0..20u8).map(|i| Payload::data(vec![i])).collect()).unwrap();
        let mut batched = Vec::new();
        while let Some(msg) = b.try_recv().unwrap() {
            batched.push(msg.payload.bytes[0]);
        }

        let (mut a2, mut b2) = pair(FaultPlan::new(77).with_drop(0.5));
        for i in 0..20u8 {
            a2.send(1, Payload::data(vec![i])).unwrap();
        }
        let mut looped = Vec::new();
        while let Some(msg) = b2.try_recv().unwrap() {
            looped.push(msg.payload.bytes[0]);
        }
        assert_eq!(batched, looped);
        assert_eq!(a.metrics().drops_injected, a2.metrics().drops_injected);
    }

    #[test]
    fn send_batch_doubles_duplicated_payloads_in_place() {
        let (mut a, mut b) = pair(FaultPlan::new(5).with_dup(1.0));
        a.send_batch(1, vec![Payload::data(vec![1]), Payload::data(vec![2])]).unwrap();
        let mut seen = Vec::new();
        while let Some(msg) = b.try_recv().unwrap() {
            seen.push(msg.payload.bytes[0]);
        }
        assert_eq!(seen, vec![1, 1, 2, 2]);
        assert_eq!(a.metrics().dups_injected, 2);
    }

    #[test]
    fn partition_severs_then_heals_on_wall_clock() {
        // The partition window is in wall time here (MemoryEndpoint's
        // epoch), so use a generous healed-from-zero window: [0, 0) never
        // active ⇒ everything flows.
        let plan = FaultPlan::new(5).with_partition(vec![0], SimInstant::ZERO, SimInstant::ZERO);
        let (mut a, mut b) = pair(plan);
        a.send(1, Payload::data(vec![1])).unwrap();
        assert_eq!(b.recv().unwrap().payload.bytes[0], 1);
    }

    #[test]
    fn reordering_holds_messages_back_but_loses_none() {
        let plan = FaultPlan::new(42).with_reorder(0.5, SimSpan::from_millis(3));
        let mut eps = MemoryHub::new(2).into_endpoints();
        let mut receiver = FaultyEndpoint::new(eps.pop().unwrap(), plan);
        let mut sender = eps.pop().unwrap();
        let n = 50u8;
        for i in 0..n {
            sender.send(1, Payload::data(vec![i])).unwrap();
        }
        let mut seen = Vec::new();
        while seen.len() < usize::from(n) {
            match receiver.try_recv().unwrap() {
                Some(msg) => seen.push(msg.payload.bytes[0]),
                None => break,
            }
        }
        // Flush anything still held at stream end.
        while let Some(msg) = receiver.try_recv().unwrap() {
            seen.push(msg.payload.bytes[0]);
        }
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "no loss, no duplication");
        assert_ne!(seen, sorted, "with 50% reorder over 50 messages, order must shuffle");
        assert!(receiver.metrics().delays_injected > 0);
    }
}
