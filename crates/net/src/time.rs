use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (virtual or wall) time, in microseconds since an arbitrary
/// transport-defined epoch.
///
/// Real transports report elapsed wall time since their creation; the
/// `sdso-sim` simulator reports deterministic virtual time. Protocol code is
/// written against this single type so the same code measures identically in
/// both worlds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant(u64);

/// A span of (virtual or wall) time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimSpan(u64);

impl SimInstant {
    /// The transport epoch (time zero).
    pub const ZERO: SimInstant = SimInstant(0);

    /// Creates an instant `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimInstant(micros)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier` is
    /// actually later.
    pub fn saturating_since(self, earlier: SimInstant) -> SimSpan {
        SimSpan(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimInstant) -> SimInstant {
        SimInstant(self.0.max(other.0))
    }
}

impl SimSpan {
    /// The empty span.
    pub const ZERO: SimSpan = SimSpan(0);

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimSpan(micros)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimSpan(millis * 1_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimSpan(secs * 1_000_000)
    }

    /// The span in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
}

impl Add<SimSpan> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimSpan) -> SimInstant {
        SimInstant(self.0 + rhs.0)
    }
}

impl AddAssign<SimSpan> for SimInstant {
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 += rhs.0;
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimSpan;
    /// # Panics
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimInstant) -> SimSpan {
        debug_assert!(self.0 >= rhs.0, "instant subtraction underflow");
        SimSpan(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0 + rhs.0)
    }
}

impl AddAssign for SimSpan {
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 += rhs.0;
    }
}

impl Sub for SimSpan {
    type Output = SimSpan;
    fn sub(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimSpan {
    fn sub_assign(&mut self, rhs: SimSpan) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Sum for SimSpan {
    fn sum<I: Iterator<Item = SimSpan>>(iter: I) -> SimSpan {
        iter.fold(SimSpan::ZERO, Add::add)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e3)
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimInstant::from_micros(1_000);
        let d = SimSpan::from_millis(2);
        assert_eq!((t + d).as_micros(), 3_000);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimInstant::from_micros(10);
        let late = SimInstant::from_micros(50);
        assert_eq!(early.saturating_since(late), SimSpan::ZERO);
        assert_eq!(late.saturating_since(early).as_micros(), 40);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimSpan::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimSpan::from_millis(1).as_micros(), 1_000);
        assert!((SimSpan::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn sum_of_spans() {
        let total: SimSpan = (1..=4).map(SimSpan::from_micros).sum();
        assert_eq!(total.as_micros(), 10);
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(SimSpan::from_micros(1_500).to_string(), "1.500ms");
    }
}
