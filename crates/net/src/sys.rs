//! Minimal Linux `epoll`/`eventfd` bindings for the reactor transport.
//!
//! The workspace builds with no external crates (every dependency is a
//! vendored shim), so instead of `mio` or `libc` this module declares the
//! four syscall entry points the reactor needs directly: `std` already links
//! the platform C library, and the ABI of `epoll_create1`/`epoll_ctl`/
//! `epoll_wait`/`eventfd` has been stable for as long as the kernel has had
//! them. Everything is wrapped in safe types ([`Poller`], [`WakeHandle`])
//! immediately; no raw fd escapes this module un-owned.
//!
//! Non-Linux builds compile this module away (`#[cfg(target_os = "linux")]`
//! at the `mod` site); the reactor constructors then return
//! [`NetError::Io`](crate::NetError::Io) with `Unsupported`.
//!
//! ## Safety audit
//!
//! This is the workspace's only FFI module; `sdso-check`'s `unsafe-audit`
//! rule requires this table to enumerate every foreign entry point and its
//! soundness argument, and a `// SAFETY:` comment at each `unsafe` use.
//!
//! | entry point     | contract                                            |
//! |-----------------|-----------------------------------------------------|
//! | `epoll_create1` | no pointers; returns an fd or -1 (checked by `cvt`) |
//! | `epoll_ctl`     | `event` points at a live `EpollEvent` for the call  |
//! | `epoll_wait`    | `events` points at `maxevents` writable records     |
//! | `eventfd`       | no pointers; returns an fd or -1 (checked by `cvt`) |
//! | `getrlimit`     | `rlim` points at a live, writable `Rlimit`          |
//! | `setrlimit`     | `rlim` points at a live, readable `Rlimit`          |
//!
//! Every fd obtained here is wrapped in an owning type (`OwnedFd`, `File`)
//! in the same expression, so close-on-drop is never forgotten and no raw
//! fd escapes this module (`fd-ownership` enforces the same property for
//! the rest of `sdso-net`).

use std::fs::File;
use std::io::{Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

use crate::error::NetError;

// --- raw ABI ---------------------------------------------------------------

/// `struct epoll_event`. Packed on x86-64 (a 20-year-old ABI quirk: the
/// 64-bit port kept the 32-bit layout), naturally aligned everywhere else.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    events: u32,
    data: u64,
}

/// `struct epoll_event` (naturally aligned layout).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    events: u32,
    data: u64,
}

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

const RLIMIT_NOFILE: i32 = 7;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
}

fn cvt(ret: i32) -> Result<i32, NetError> {
    if ret < 0 {
        Err(NetError::Io(std::io::Error::last_os_error()))
    } else {
        Ok(ret)
    }
}

// --- safe wrappers ---------------------------------------------------------

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable.
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest { readable: true, writable: true };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness notification, decoded from the kernel's event mask.
#[derive(Debug, Clone, Copy)]
pub struct Ready {
    /// The `token` the fd was registered with.
    pub token: u64,
    /// Readable (or a half-close/EOF is pending — reads will not block).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hang-up: the connection is gone or going.
    pub error: bool,
}

/// A level-triggered `epoll` instance.
///
/// Level-triggered is deliberate: the reactor may stop reading mid-burst
/// (e.g. to bound per-peer work per wakeup) and the kernel will simply
/// re-report readiness on the next wait, with no risk of a lost edge.
#[derive(Debug)]
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    /// Creates the epoll instance.
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_create1` errno.
    pub fn new() -> Result<Poller, NetError> {
        // SAFETY: `epoll_create1` takes no pointers; `cvt` rejects -1, so
        // `from_raw_fd` wraps a live fd this process exclusively owns.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        // SAFETY: see above — `fd` is a freshly created, owned descriptor.
        Ok(Poller { epfd: unsafe { OwnedFd::from_raw_fd(fd) } })
    }

    /// Registers `source` under `token` with the given interest.
    ///
    /// Taking `&impl AsRawFd` (not a `RawFd`) keeps the borrow of the
    /// owning socket alive across the call, so the fd cannot be closed
    /// while the kernel is being told about it.
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_ctl` errno.
    pub fn add(
        &self,
        source: &impl AsRawFd,
        token: u64,
        interest: Interest,
    ) -> Result<(), NetError> {
        let mut ev = EpollEvent { events: interest.mask(), data: token };
        // SAFETY: `ev` is a live local for the duration of the call; both
        // fds are borrowed from owning types and thus open.
        cvt(unsafe {
            epoll_ctl(self.epfd.as_raw_fd(), EPOLL_CTL_ADD, source.as_raw_fd(), &mut ev)
        })?;
        Ok(())
    }

    /// Changes the interest set of an already-registered `source`.
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_ctl` errno.
    pub fn modify(
        &self,
        source: &impl AsRawFd,
        token: u64,
        interest: Interest,
    ) -> Result<(), NetError> {
        let mut ev = EpollEvent { events: interest.mask(), data: token };
        // SAFETY: `ev` is a live local for the duration of the call; both
        // fds are borrowed from owning types and thus open.
        cvt(unsafe {
            epoll_ctl(self.epfd.as_raw_fd(), EPOLL_CTL_MOD, source.as_raw_fd(), &mut ev)
        })?;
        Ok(())
    }

    /// Deregisters `source`. Errors are swallowed: the fd may already be
    /// gone, and deregistration is always followed by closing it anyway.
    pub fn delete(&self, source: &impl AsRawFd) {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: `ev` is a live local for the duration of the call; both
        // fds are borrowed from owning types and thus open.
        let _ =
            unsafe { epoll_ctl(self.epfd.as_raw_fd(), EPOLL_CTL_DEL, source.as_raw_fd(), &mut ev) };
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` = wait indefinitely), appending decoded events to
    /// `out`. Returns the number of events delivered; 0 means timeout.
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_wait` errno (`EINTR` is retried internally).
    pub fn wait(&self, out: &mut Vec<Ready>, timeout: Option<Duration>) -> Result<usize, NetError> {
        const MAX_EVENTS: usize = 256;
        let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        // Round up so a 100µs timer does not spin at timeout=0.
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) if d.is_zero() => 0,
            Some(d) => i32::try_from(d.as_millis().max(1)).unwrap_or(i32::MAX),
        };
        let n = loop {
            // SAFETY: `events` is a live stack array of MAX_EVENTS
            // records and the kernel writes at most `maxevents` of them.
            let ret = unsafe {
                epoll_wait(
                    self.epfd.as_raw_fd(),
                    events.as_mut_ptr(),
                    MAX_EVENTS as i32,
                    timeout_ms,
                )
            };
            if ret >= 0 {
                break ret as usize;
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(NetError::Io(err));
            }
        };
        for ev in events.iter().take(n) {
            // Copy out of the (potentially packed) struct before use.
            let mask = ev.events;
            let token = ev.data;
            out.push(Ready {
                token,
                readable: mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                writable: mask & EPOLLOUT != 0,
                error: mask & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

/// An `eventfd`-backed waker: any thread can nudge the poll loop out of
/// `epoll_wait` by writing to it. Cloning shares the same underlying fd.
#[derive(Debug, Clone)]
pub struct WakeHandle {
    file: std::sync::Arc<File>,
}

impl WakeHandle {
    /// Creates the eventfd (nonblocking, close-on-exec).
    ///
    /// # Errors
    ///
    /// Propagates the `eventfd` errno.
    pub fn new() -> Result<WakeHandle, NetError> {
        // SAFETY: `eventfd` takes no pointers; `cvt` rejects -1, so
        // `from_raw_fd` wraps a live fd this process exclusively owns.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        // SAFETY: see above — `fd` is a freshly created, owned descriptor.
        let file = unsafe { File::from_raw_fd(fd) };
        Ok(WakeHandle { file: std::sync::Arc::new(file) })
    }

    /// Wakes the poll loop. Saturation (`EAGAIN` on a full counter) is
    /// fine — the loop is already guaranteed to wake.
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        let _ = (&*self.file).write(&one);
    }

    /// Drains the counter so the next `wake` is visible again.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&*self.file).read(&mut buf);
    }
}

impl AsRawFd for WakeHandle {
    /// Lets a `WakeHandle` be registered with a [`Poller`] directly,
    /// without ever exposing its raw fd to callers.
    fn as_raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }
}

/// Best-effort bump of `RLIMIT_NOFILE` to at least `want` descriptors (the
/// 256-peer soak and net bench need ~4 fds per spoke). Never fails the
/// caller: if the hard limit forbids it, the subsequent `socket()` calls
/// will report the real error with full context.
pub fn raise_nofile_limit(want: u64) {
    let mut lim = Rlimit { rlim_cur: 0, rlim_max: 0 };
    // SAFETY: `lim` is a live, writable local `Rlimit` for the call.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return;
    }
    if lim.rlim_cur >= want {
        return;
    }
    let new = Rlimit { rlim_cur: want.min(lim.rlim_max), rlim_max: lim.rlim_max };
    // SAFETY: `new` is a live, readable local `Rlimit` for the call.
    let _ = unsafe { setrlimit(RLIMIT_NOFILE, &new) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_wakes_and_drains() {
        let poller = Poller::new().unwrap();
        let waker = WakeHandle::new().unwrap();
        poller.add(&waker, 42, Interest::READ).unwrap();

        let mut out = Vec::new();
        // Nothing pending: times out.
        assert_eq!(poller.wait(&mut out, Some(Duration::from_millis(1))).unwrap(), 0);

        waker.wake();
        let n = poller.wait(&mut out, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(out[0].token, 42);
        assert!(out[0].readable);

        // Drained: quiet again (level-triggered would re-report otherwise).
        waker.drain();
        out.clear();
        assert_eq!(poller.wait(&mut out, Some(Duration::from_millis(1))).unwrap(), 0);
    }

    #[test]
    fn socket_readability_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server, 7, Interest::READ).unwrap();

        use std::io::Write as _;
        client.write_all(b"x").unwrap();
        let mut out = Vec::new();
        poller.wait(&mut out, Some(Duration::from_secs(2))).unwrap();
        assert!(out.iter().any(|r| r.token == 7 && r.readable));

        // Adding write interest reports writable immediately (empty buffer).
        poller.modify(&server, 7, Interest::READ_WRITE).unwrap();
        out.clear();
        poller.wait(&mut out, Some(Duration::from_secs(2))).unwrap();
        assert!(out.iter().any(|r| r.token == 7 && r.writable));

        poller.delete(&server);
    }

    #[test]
    fn peer_close_reports_readable_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&server, 1, Interest::READ).unwrap();
        drop(client);
        let mut out = Vec::new();
        poller.wait(&mut out, Some(Duration::from_secs(2))).unwrap();
        assert!(out.iter().any(|r| r.token == 1 && r.readable), "{out:?}");
    }

    #[test]
    fn raise_nofile_limit_is_harmless() {
        raise_nofile_limit(64); // already above: no-op
        raise_nofile_limit(u64::MAX); // clamped to the hard limit
    }
}
