//! Real TCP mesh transport.
//!
//! The original S-DSO implementation was "directly layered onto sockets,
//! eliminating the overhead of the PVM library used in Indigo"; this module
//! is that layer. Every pair of nodes shares one TCP connection carrying
//! [`frame`](crate::frame)-encoded messages; per-peer reader threads funnel
//! decoded messages into a single channel per endpoint.
//!
//! For tests and single-machine experiments, [`TcpMesh::local`] builds a full
//! mesh over loopback in one call. For genuinely distributed deployments,
//! [`TcpMesh::join`] performs the listen/connect/handshake dance against a
//! list of peer addresses.

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};

use crate::endpoint::{check_peer, Endpoint, NodeId};
use crate::error::NetError;
use crate::frame::{read_frame, write_frame};
use crate::message::{Incoming, Payload};
use crate::metrics::{NetMetrics, NetMetricsSnapshot};
use crate::time::{SimInstant, SimSpan};

/// Constructors for TCP-connected clusters.
#[derive(Debug)]
pub struct TcpMesh;

impl TcpMesh {
    /// Builds an `n`-node full mesh over loopback, returning one endpoint per
    /// node (indexed by node id). Endpoints may be moved to other threads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind/connect/accept).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds `NodeId::MAX`.
    pub fn local(n: usize) -> Result<Vec<TcpEndpoint>, NetError> {
        assert!(n > 0, "cluster must have at least one node");
        assert!(n <= usize::from(NodeId::MAX), "cluster too large");
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind(("127.0.0.1", 0)))
            .collect::<Result<_, _>>()?;
        let addrs: Vec<SocketAddr> =
            listeners.iter().map(TcpListener::local_addr).collect::<Result<_, _>>()?;

        // streams[i][j] = node i's stream to node j (i != j).
        let mut streams: Vec<Vec<Option<TcpStream>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                // j dials i; i accepts. Backlog makes the sequential
                // connect-then-accept ordering safe.
                let out = TcpStream::connect(addrs[i])?;
                let (inc, _) = listeners[i].accept()?;
                out.set_nodelay(true)?;
                inc.set_nodelay(true)?;
                streams[j][i] = Some(out);
                streams[i][j] = Some(inc);
            }
        }

        streams
            .into_iter()
            .enumerate()
            .map(|(id, peers)| TcpEndpoint::from_streams(id as NodeId, n, peers))
            .collect()
    }

    /// Joins a distributed mesh as node `id`, given every node's listen
    /// address (`addrs[id]` must be this node's own bind address).
    ///
    /// The protocol: this node listens on `addrs[id]`; it dials every peer
    /// with a lower id (sending its own id as a 2-byte handshake) and accepts
    /// one connection from every peer with a higher id (reading the peer's id
    /// from the handshake).
    ///
    /// # Errors
    ///
    /// Propagates socket errors and rejects malformed handshakes.
    pub fn join(id: NodeId, addrs: &[SocketAddr]) -> Result<TcpEndpoint, NetError> {
        let n = addrs.len();
        if usize::from(id) >= n {
            return Err(NetError::InvalidPeer { peer: id, cluster: n });
        }
        let listener = TcpListener::bind(addrs[usize::from(id)])?;
        let mut peers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();

        // Dial lower-id peers (retrying briefly while they come up).
        for peer in 0..id {
            let stream = connect_with_retry(addrs[usize::from(peer)])?;
            stream.set_nodelay(true)?;
            let mut s = stream.try_clone()?;
            s.write_all(&id.to_le_bytes())?;
            peers[usize::from(peer)] = Some(stream);
        }
        // Accept higher-id peers.
        for _ in (u16::from(id) + 1)..n as u16 {
            let (mut stream, _) = listener.accept()?;
            stream.set_nodelay(true)?;
            let mut idbuf = [0u8; 2];
            stream.read_exact(&mut idbuf)?;
            let peer = NodeId::from_le_bytes(idbuf);
            if usize::from(peer) >= n || peer <= id || peers[usize::from(peer)].is_some() {
                return Err(NetError::Codec(format!("bad handshake id {peer}")));
            }
            peers[usize::from(peer)] = Some(stream);
        }

        TcpEndpoint::from_streams(id, n, peers)
    }
}

fn connect_with_retry(addr: SocketAddr) -> Result<TcpStream, NetError> {
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
}

/// One node's endpoint in a TCP mesh.
///
/// Dropping the endpoint closes all connections and joins the reader
/// threads.
#[derive(Debug)]
pub struct TcpEndpoint {
    id: NodeId,
    num_nodes: usize,
    writers: Vec<Option<BufWriter<TcpStream>>>,
    rx: Receiver<Result<Incoming, NetError>>,
    readers: Vec<JoinHandle<()>>,
    start: Instant,
    metrics: NetMetrics,
}

impl TcpEndpoint {
    fn from_streams(
        id: NodeId,
        num_nodes: usize,
        peers: Vec<Option<TcpStream>>,
    ) -> Result<TcpEndpoint, NetError> {
        let (tx, rx): (Sender<Result<Incoming, NetError>>, Receiver<Result<Incoming, NetError>>) =
            unbounded();
        let mut writers = Vec::with_capacity(num_nodes);
        let mut readers = Vec::new();
        for stream in peers {
            match stream {
                None => writers.push(None),
                Some(stream) => {
                    let read_half = stream.try_clone()?;
                    writers.push(Some(BufWriter::new(stream)));
                    let tx = tx.clone();
                    readers.push(std::thread::spawn(move || {
                        let mut r = BufReader::new(read_half);
                        loop {
                            match read_frame(&mut r) {
                                Ok(incoming) => {
                                    if tx.send(Ok(incoming)).is_err() {
                                        return; // endpoint dropped
                                    }
                                }
                                // Clean EOF at a frame boundary: the peer
                                // closed; ending this reader is enough.
                                Err(NetError::Disconnected) => return,
                                // A corrupt frame or I/O failure must reach
                                // the application — swallowing it would turn
                                // a wire error into a silent hang whenever
                                // other peers keep the channel alive.
                                Err(e) => {
                                    let _ = tx.send(Err(e));
                                    return;
                                }
                            }
                        }
                    }));
                }
            }
        }
        Ok(TcpEndpoint { id, num_nodes, writers, rx, readers, start: Instant::now(), metrics: NetMetrics::new() })
    }
}

impl Endpoint for TcpEndpoint {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn send(&mut self, to: NodeId, payload: Payload) -> Result<(), NetError> {
        check_peer(self.id, to, self.num_nodes)?;
        let writer =
            self.writers[usize::from(to)].as_mut().ok_or(NetError::Disconnected)?;
        write_frame(writer, self.id, &payload)?;
        self.metrics.record_send(payload.class, payload.wire_len());
        Ok(())
    }

    fn recv(&mut self) -> Result<Incoming, NetError> {
        let before = self.now();
        let msg = self.rx.recv().map_err(|_| NetError::Disconnected)??;
        self.metrics.record_blocked(self.now().saturating_since(before));
        self.metrics.record_recv(msg.payload.class, msg.payload.wire_len());
        Ok(msg)
    }

    fn try_recv(&mut self) -> Result<Option<Incoming>, NetError> {
        match self.rx.try_recv() {
            Ok(Ok(msg)) => {
                self.metrics.record_recv(msg.payload.class, msg.payload.wire_len());
                Ok(Some(msg))
            }
            Ok(Err(e)) => Err(e),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    fn advance(&mut self, _dt: SimSpan) {
        // Real computation already consumed wall time.
    }

    fn now(&self) -> SimInstant {
        SimInstant::from_micros(self.start.elapsed().as_micros() as u64)
    }

    fn metrics(&self) -> NetMetricsSnapshot {
        self.metrics.snapshot()
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        // Closing the write halves causes peer readers to see EOF; dropping
        // our writers' underlying streams also unblocks our own readers.
        for w in &mut self.writers {
            if let Some(w) = w {
                let _ = w.flush();
                let _ = w.get_ref().shutdown(std::net::Shutdown::Both);
            }
        }
        self.writers.clear();
        for t in self.readers.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_mesh_ping_pong() {
        let mut eps = TcpMesh::local(2).unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, Payload::data(b"ping".as_ref())).unwrap();
        let got = b.recv().unwrap();
        assert_eq!(got.from, 0);
        assert_eq!(&got.payload.bytes[..], b"ping");
        b.send(0, Payload::control(b"pong".as_ref())).unwrap();
        assert_eq!(&a.recv().unwrap().payload.bytes[..], b"pong");
    }

    #[test]
    fn four_node_broadcast_across_threads() {
        let eps = TcpMesh::local(4).unwrap();
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                std::thread::spawn(move || {
                    ep.broadcast(&Payload::control(vec![ep.node_id() as u8])).unwrap();
                    let mut seen = Vec::new();
                    for _ in 0..3 {
                        seen.push(ep.recv().unwrap().from);
                    }
                    seen.sort_unstable();
                    let expected: Vec<NodeId> =
                        (0..4).filter(|&i| i != ep.node_id()).collect();
                    assert_eq!(seen, expected);
                    ep.metrics()
                })
            })
            .collect();
        for h in handles {
            let m = h.join().unwrap();
            assert_eq!(m.total_sent(), 3);
            assert_eq!(m.total_recv(), 3);
        }
    }

    #[test]
    fn wire_len_travels_in_frame_header() {
        let mut eps = TcpMesh::local(2).unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, Payload::data(vec![0u8; 10]).with_wire_len(2048)).unwrap();
        let got = b.recv().unwrap();
        assert_eq!(got.payload.wire_len(), 2048);
        assert_eq!(b.metrics().data_recv.bytes, 2048);
    }

    #[test]
    fn drop_disconnects_peers() {
        let mut eps = TcpMesh::local(2).unwrap();
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        drop(b);
        // Eventually sends fail or recv reports disconnection.
        let mut disconnected = false;
        for _ in 0..100 {
            if a.send(1, Payload::control(vec![0u8; 1024])).is_err() {
                disconnected = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(disconnected, "send to dropped peer should eventually fail");
    }
}
