//! Real TCP mesh transport.
//!
//! The original S-DSO implementation was "directly layered onto sockets,
//! eliminating the overhead of the PVM library used in Indigo"; this module
//! is that layer. Every pair of nodes shares one TCP connection carrying
//! [`frame`](crate::frame)-encoded messages; per-peer reader threads funnel
//! decoded messages into a single channel per endpoint.
//!
//! The mesh is resilient: every endpoint keeps its listener alive after
//! setup, so a torn connection can be re-established at any time. The
//! higher-numbered node of a pair re-dials (with bounded exponential
//! backoff, tuned via [`TcpTuning`]); the lower-numbered node's acceptor
//! thread swaps the fresh connection in. Retries and reconnections are
//! counted in [`NetMetricsSnapshot`](crate::NetMetricsSnapshot).
//!
//! For tests and single-machine experiments, [`TcpMesh::local`] builds a full
//! mesh over loopback in one call. For genuinely distributed deployments,
//! [`TcpMesh::join`] performs the listen/connect/handshake dance against a
//! list of peer addresses.

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use sdso_obs::{EventKind, MonoClock, Recorder};

use crate::deadline::{Backoff, DeadlineQueue};
use crate::endpoint::{check_peer, Endpoint, NodeId, PeerEvent};
use crate::error::NetError;
use crate::frame::{read_frame, write_batch, write_frame};
use crate::message::{Incoming, Payload};
use crate::metrics::{obs_class, NetMetrics, NetMetricsSnapshot};
use crate::time::{SimInstant, SimSpan};

/// Handshake id a closing endpoint sends to its own acceptor to unblock it.
const SHUTDOWN_HANDSHAKE: NodeId = NodeId::MAX;

/// Timeouts and backoff tuning for a [`TcpEndpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpTuning {
    /// Per-peer socket write timeout (a send can never hang longer).
    pub write_timeout: Duration,
    /// Timeout for each (re)connection attempt.
    pub connect_timeout: Duration,
    /// First reconnect backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff growth cap.
    pub backoff_max: Duration,
    /// Reconnection attempts before a send fails for good.
    pub max_reconnect_attempts: u32,
}

impl Default for TcpTuning {
    fn default() -> Self {
        TcpTuning {
            write_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(5),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
            max_reconnect_attempts: 8,
        }
    }
}

/// Constructors for TCP-connected clusters.
#[derive(Debug)]
pub struct TcpMesh;

impl TcpMesh {
    /// Builds an `n`-node full mesh over loopback, returning one endpoint per
    /// node (indexed by node id). Endpoints may be moved to other threads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind/connect/accept).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds `NodeId::MAX - 1`.
    pub fn local(n: usize) -> Result<Vec<TcpEndpoint>, NetError> {
        TcpMesh::local_with(n, TcpTuning::default())
    }

    /// [`TcpMesh::local`] with explicit timeout/backoff tuning.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind/connect/accept).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds `NodeId::MAX - 1`.
    pub fn local_with(n: usize, tuning: TcpTuning) -> Result<Vec<TcpEndpoint>, NetError> {
        assert!(n > 0, "cluster must have at least one node");
        assert!(n < usize::from(NodeId::MAX), "cluster too large");
        let listeners: Vec<TcpListener> =
            (0..n).map(|_| TcpListener::bind(("127.0.0.1", 0))).collect::<Result<_, _>>()?;
        let addrs: Vec<SocketAddr> =
            listeners.iter().map(TcpListener::local_addr).collect::<Result<_, _>>()?;

        // streams[i][j] = node i's stream to node j (i != j).
        let mut streams: Vec<Vec<Option<TcpStream>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in (i + 1)..n {
                // j dials i; i accepts. Backlog makes the sequential
                // connect-then-accept ordering safe.
                let out = TcpStream::connect(addrs[i])?;
                let (inc, _) = listeners[i].accept()?;
                out.set_nodelay(true)?;
                inc.set_nodelay(true)?;
                streams[j][i] = Some(out);
                streams[i][j] = Some(inc);
            }
        }

        streams
            .into_iter()
            .zip(listeners)
            .enumerate()
            .map(|(id, (peers, listener))| {
                TcpEndpoint::from_streams(id as NodeId, n, peers, listener, addrs.clone(), tuning)
            })
            .collect()
    }

    /// Builds an `n`-node hub-and-spokes cluster over loopback: node 0 (the
    /// hub) holds one connection — and one reader thread — per spoke;
    /// spokes start connected only to the hub. The thread-per-peer
    /// counterpart of [`ReactorMesh::star`](crate::reactor::ReactorMesh),
    /// used as the baseline the reactor is benchmarked against at 256+
    /// peers.
    ///
    /// Unlike the reactor's star, a spoke-to-spoke send does not fail: the
    /// redial path lazily dials the other spoke's listener, upgrading the
    /// star toward a mesh one link at a time.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind/connect/accept).
    ///
    /// # Panics
    ///
    /// Panics if `n` is less than two or exceeds `NodeId::MAX - 1`.
    pub fn star(n: usize) -> Result<Vec<TcpEndpoint>, NetError> {
        TcpMesh::star_with(n, TcpTuning::default())
    }

    /// [`TcpMesh::star`] with explicit timeout/backoff tuning.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind/connect/accept).
    ///
    /// # Panics
    ///
    /// Panics if `n` is less than two or exceeds `NodeId::MAX - 1`.
    pub fn star_with(n: usize, tuning: TcpTuning) -> Result<Vec<TcpEndpoint>, NetError> {
        assert!(n >= 2, "a star needs a hub and at least one spoke");
        assert!(n < usize::from(NodeId::MAX), "cluster too large");
        #[cfg(target_os = "linux")]
        crate::sys::raise_nofile_limit((n as u64) * 4 + 64);
        let listeners: Vec<TcpListener> =
            (0..n).map(|_| TcpListener::bind(("127.0.0.1", 0))).collect::<Result<_, _>>()?;
        let addrs: Vec<SocketAddr> =
            listeners.iter().map(TcpListener::local_addr).collect::<Result<_, _>>()?;
        let mut streams: Vec<Vec<Option<TcpStream>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        // Symmetric assignment into streams[spoke][0] and streams[0][spoke]:
        // no iterator form can hold both mutable slots at once.
        #[allow(clippy::needless_range_loop)]
        for spoke in 1..n {
            let out = TcpStream::connect(addrs[0])?;
            let (inc, _) = listeners[0].accept()?;
            out.set_nodelay(true)?;
            inc.set_nodelay(true)?;
            streams[spoke][0] = Some(out);
            streams[0][spoke] = Some(inc);
        }
        streams
            .into_iter()
            .zip(listeners)
            .enumerate()
            .map(|(id, (peers, listener))| {
                TcpEndpoint::from_streams(id as NodeId, n, peers, listener, addrs.clone(), tuning)
            })
            .collect()
    }

    /// Joins a distributed mesh as node `id`, given every node's listen
    /// address (`addrs[id]` must be this node's own bind address).
    ///
    /// The protocol: this node listens on `addrs[id]`; it dials every peer
    /// with a lower id (sending its own id as a 2-byte handshake) and accepts
    /// one connection from every peer with a higher id (reading the peer's id
    /// from the handshake).
    ///
    /// # Errors
    ///
    /// Propagates socket errors and rejects malformed handshakes.
    pub fn join(id: NodeId, addrs: &[SocketAddr]) -> Result<TcpEndpoint, NetError> {
        TcpMesh::join_with(id, addrs, TcpTuning::default())
    }

    /// [`TcpMesh::join`] with explicit timeout/backoff tuning.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and rejects malformed handshakes.
    pub fn join_with(
        id: NodeId,
        addrs: &[SocketAddr],
        tuning: TcpTuning,
    ) -> Result<TcpEndpoint, NetError> {
        let n = addrs.len();
        if usize::from(id) >= n {
            return Err(NetError::InvalidPeer { peer: id, cluster: n });
        }
        let listener = TcpListener::bind(addrs[usize::from(id)])?;
        let mut peers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();

        // Dial lower-id peers (retrying briefly while they come up).
        for peer in 0..id {
            let stream = connect_with_retry(addrs[usize::from(peer)])?;
            stream.set_nodelay(true)?;
            let mut s = stream.try_clone()?;
            s.write_all(&id.to_le_bytes())?;
            peers[usize::from(peer)] = Some(stream);
        }
        // Accept higher-id peers.
        for _ in (id + 1)..n as u16 {
            let (mut stream, _) = listener.accept()?;
            stream.set_nodelay(true)?;
            let mut idbuf = [0u8; 2];
            stream.read_exact(&mut idbuf)?;
            let peer = NodeId::from_le_bytes(idbuf);
            if usize::from(peer) >= n || peer <= id || peers[usize::from(peer)].is_some() {
                return Err(NetError::Codec(format!("bad handshake id {peer}")));
            }
            peers[usize::from(peer)] = Some(stream);
        }

        TcpEndpoint::from_streams(id, n, peers, listener, addrs.to_vec(), tuning)
    }
}

fn connect_with_retry(addr: SocketAddr) -> Result<TcpStream, NetError> {
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
}

/// Spawns the per-connection reader thread: frames go into `tx` until the
/// connection ends. Tear-down conditions (EOF, reset, abort) end the thread
/// and queue a [`PeerEvent::Down`] — the connection may come back, but the
/// disconnect itself is a first-class event instead of being swallowed;
/// genuine wire corruption is forwarded to the application.
fn spawn_reader(
    peer: NodeId,
    stream: TcpStream,
    tx: Sender<Result<Incoming, NetError>>,
    events: Arc<Mutex<Vec<PeerEvent>>>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut r = BufReader::new(stream);
        loop {
            match read_frame(&mut r) {
                Ok(incoming) => {
                    if tx.send(Ok(incoming)).is_err() {
                        return; // endpoint dropped
                    }
                }
                Err(NetError::Disconnected) => {
                    events.lock().push(PeerEvent::Down(peer));
                    return;
                }
                Err(NetError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::BrokenPipe
                    ) =>
                {
                    events.lock().push(PeerEvent::Down(peer));
                    return;
                }
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        }
    })
}

/// One node's endpoint in a TCP mesh.
///
/// Dropping the endpoint closes all connections and joins the reader and
/// acceptor threads.
#[derive(Debug)]
pub struct TcpEndpoint {
    id: NodeId,
    num_nodes: usize,
    /// Peers' listener addresses, for re-dialling.
    addrs: Vec<Option<SocketAddr>>,
    /// Per-peer write halves. Shared with the acceptor thread, which swaps
    /// re-established connections in.
    writers: Arc<Vec<Mutex<Option<BufWriter<TcpStream>>>>>,
    tx: Sender<Result<Incoming, NetError>>,
    rx: Receiver<Result<Incoming, NetError>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    acceptor: Option<JoinHandle<()>>,
    listen_addr: SocketAddr,
    shutting_down: Arc<AtomicBool>,
    tuning: TcpTuning,
    /// Event timestamps on the TCP path come from the host's monotonic
    /// clock — this transport is inherently non-deterministic.
    clock: MonoClock,
    metrics: NetMetrics,
    recorder: Recorder,
    /// Membership flags: write failures to a removed peer are dropped
    /// silently (no redial storm toward a process that exited on purpose).
    active: Vec<bool>,
    /// Persistent per-peer reconnect backoff state — the same state machine
    /// the reactor transport drives from its poll loop, so backoff behaviour
    /// is identical across the migration.
    backoff: Vec<Backoff>,
    /// Pending retry deadlines, drained in virtual-deadline order. On this
    /// blocking transport the queue is serviced inline by the sending
    /// thread; the reactor services the identical queue from `epoll_wait`
    /// timeouts.
    retry_deadlines: DeadlineQueue<NodeId>,
    /// Link events queued by reader threads / the acceptor, drained via
    /// [`Endpoint::take_peer_events`].
    peer_events: Arc<Mutex<Vec<PeerEvent>>>,
}

impl TcpEndpoint {
    fn from_streams(
        id: NodeId,
        num_nodes: usize,
        peers: Vec<Option<TcpStream>>,
        listener: TcpListener,
        addrs: Vec<SocketAddr>,
        tuning: TcpTuning,
    ) -> Result<TcpEndpoint, NetError> {
        let (tx, rx) = unbounded::<Result<Incoming, NetError>>();
        let mut writer_slots = Vec::with_capacity(num_nodes);
        let readers = Arc::new(Mutex::new(Vec::new()));
        let peer_events = Arc::new(Mutex::new(Vec::new()));
        for (peer, stream) in peers.into_iter().enumerate() {
            match stream {
                None => writer_slots.push(Mutex::new(None)),
                Some(stream) => {
                    stream.set_write_timeout(Some(tuning.write_timeout))?;
                    let read_half = stream.try_clone()?;
                    writer_slots.push(Mutex::new(Some(BufWriter::new(stream))));
                    readers.lock().push(spawn_reader(
                        peer as NodeId,
                        read_half,
                        tx.clone(),
                        Arc::clone(&peer_events),
                    ));
                }
            }
        }
        let writers = Arc::new(writer_slots);
        let listen_addr = listener.local_addr()?;
        let shutting_down = Arc::new(AtomicBool::new(false));
        let metrics = NetMetrics::new();
        let acceptor = Some(spawn_acceptor(
            listener,
            id,
            num_nodes,
            Arc::clone(&writers),
            tx.clone(),
            Arc::clone(&readers),
            Arc::clone(&shutting_down),
            tuning,
            metrics.clone(),
            Arc::clone(&peer_events),
        ));
        Ok(TcpEndpoint {
            id,
            num_nodes,
            addrs: addrs.into_iter().map(Some).collect(),
            writers,
            tx,
            rx,
            readers,
            acceptor,
            listen_addr,
            shutting_down,
            tuning,
            clock: MonoClock::new(),
            metrics,
            recorder: Recorder::disabled(),
            active: vec![true; num_nodes],
            backoff: (0..num_nodes)
                .map(|_| {
                    Backoff::new(
                        tuning.backoff_base,
                        tuning.backoff_max,
                        tuning.max_reconnect_attempts,
                    )
                })
                .collect(),
            retry_deadlines: DeadlineQueue::new(),
            peer_events,
        })
    }

    fn note_send(&self, to: NodeId, payload: &Payload) {
        self.metrics.record_send(payload.class, payload.wire_len());
        self.recorder.record(
            self.clock.micros(),
            EventKind::Send,
            u32::from(to),
            obs_class(payload.class),
            payload.wire_len(),
        );
    }

    fn note_recv(&self, msg: &Incoming) {
        self.metrics.record_recv(msg.payload.class, msg.payload.wire_len());
        self.recorder.record(
            self.clock.micros(),
            EventKind::Recv,
            u32::from(msg.from),
            obs_class(msg.payload.class),
            msg.payload.wire_len(),
        );
    }

    /// Test hook: forcibly tears down the connection to `peer`, as if the
    /// network dropped it. The next send to that peer goes through the
    /// reconnect path (on the dialling side) or waits for the peer to
    /// re-dial (on the accepting side).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidPeer`] for out-of-range peers.
    pub fn inject_disconnect(&mut self, peer: NodeId) -> Result<(), NetError> {
        check_peer(self.id, peer, self.num_nodes)?;
        let mut slot = self.writers[usize::from(peer)].lock();
        if let Some(w) = slot.take() {
            let _ = w.get_ref().shutdown(Shutdown::Both);
        }
        Ok(())
    }

    /// Writes one frame to `peer`'s current connection; poisons the slot on
    /// failure so the reconnect path takes over.
    fn write_to(&self, to: NodeId, payload: &Payload) -> Result<(), NetError> {
        let mut slot = self.writers[usize::from(to)].lock();
        let w = slot.as_mut().ok_or(NetError::Disconnected)?;
        match write_frame(w, self.id, payload) {
            Ok(()) => Ok(()),
            Err(e) => {
                if let Some(w) = slot.take() {
                    let _ = w.get_ref().shutdown(Shutdown::Both);
                }
                Err(e)
            }
        }
    }

    /// Writes a whole batch of frames to `peer`'s current connection as a
    /// single buffered write (one lock acquisition, one `write_all`, one
    /// flush); poisons the slot on failure so the reconnect path takes
    /// over. The encode scratch buffer is borrowed from the global
    /// [`BufPool`](crate::pool::BufPool) and returned afterwards.
    ///
    /// sdso-check: hot-path
    fn write_batch_to(&self, to: NodeId, payloads: &[Payload]) -> Result<(), NetError> {
        let pool = crate::pool::global();
        let mut scratch = pool.get();
        let result = {
            let mut slot = self.writers[usize::from(to)].lock();
            match slot.as_mut() {
                None => Err(NetError::Disconnected),
                Some(w) => match write_batch(w, self.id, payloads, &mut scratch) {
                    Ok(()) => Ok(()),
                    Err(e) => {
                        if let Some(w) = slot.take() {
                            let _ = w.get_ref().shutdown(Shutdown::Both);
                        }
                        Err(e)
                    }
                },
            }
        };
        pool.put(scratch);
        result
    }

    /// Re-dials `peer` and retries the write, pacing attempts through the
    /// shared [`DeadlineQueue`]/[`Backoff`] machinery the reactor transport
    /// drives from its poll loop. Here the sending thread services the
    /// queue inline (it blocks until the next deadline), but the backoff
    /// *state* — attempt counter, current delay — lives in the same per-peer
    /// [`Backoff`] either transport would consult, so behaviour is identical
    /// across the migration. Only valid on the dialling side of the pair
    /// (`self.id > peer`).
    fn redial_and_send(&mut self, to: NodeId, payload: &Payload) -> Result<(), NetError> {
        let addr = self.addrs[usize::from(to)].ok_or(NetError::Disconnected)?;
        self.backoff[usize::from(to)].reset();
        let mut last_err;
        loop {
            self.metrics.record_retry();
            match TcpStream::connect_timeout(&addr, self.tuning.connect_timeout) {
                Ok(mut stream) => {
                    let fresh = (|| -> Result<TcpStream, NetError> {
                        stream.set_nodelay(true)?;
                        stream.set_write_timeout(Some(self.tuning.write_timeout))?;
                        stream.write_all(&self.id.to_le_bytes())?;
                        Ok(stream.try_clone()?)
                    })();
                    match fresh {
                        Ok(read_half) => {
                            *self.writers[usize::from(to)].lock() = Some(BufWriter::new(stream));
                            self.readers.lock().push(spawn_reader(
                                to,
                                read_half,
                                self.tx.clone(),
                                Arc::clone(&self.peer_events),
                            ));
                            self.metrics.record_reconnect();
                            self.backoff[usize::from(to)].reset();
                            self.peer_events.lock().push(PeerEvent::Up(to));
                            match self.write_to(to, payload) {
                                Ok(()) => return Ok(()),
                                Err(e) => last_err = e,
                            }
                        }
                        Err(e) => last_err = e,
                    }
                }
                Err(e) => last_err = NetError::Io(e),
            }
            // Consume one backoff attempt and park until its deadline.
            let Some(delay) = self.backoff[usize::from(to)].next_delay() else {
                return Err(last_err);
            };
            let due = self.clock.micros() + delay.as_micros() as u64;
            self.retry_deadlines.schedule(due, to);
            while let Some(wait) = self.retry_deadlines.timeout_until(self.clock.micros()) {
                if wait.is_zero() {
                    break;
                }
                std::thread::sleep(wait);
            }
            let _ = self.retry_deadlines.pop_due(self.clock.micros());
        }
    }
}

/// The listener thread: accepts replacement connections for torn links and
/// swaps them into the shared writer table. Exits on the shutdown
/// handshake sent by [`TcpEndpoint`]'s `Drop`.
#[allow(clippy::too_many_arguments)]
fn spawn_acceptor(
    listener: TcpListener,
    my_id: NodeId,
    num_nodes: usize,
    writers: Arc<Vec<Mutex<Option<BufWriter<TcpStream>>>>>,
    tx: Sender<Result<Incoming, NetError>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shutting_down: Arc<AtomicBool>,
    tuning: TcpTuning,
    metrics: NetMetrics,
    events: Arc<Mutex<Vec<PeerEvent>>>,
) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        let Ok((mut stream, _)) = listener.accept() else {
            return;
        };
        if shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let mut idbuf = [0u8; 2];
        if stream.read_exact(&mut idbuf).is_err() {
            continue;
        }
        let peer = NodeId::from_le_bytes(idbuf);
        if peer == SHUTDOWN_HANDSHAKE {
            return;
        }
        // Reconnections always come from the dialling (higher-id) side.
        if usize::from(peer) >= num_nodes || peer <= my_id {
            continue;
        }
        if stream.set_nodelay(true).is_err()
            || stream.set_write_timeout(Some(tuning.write_timeout)).is_err()
        {
            continue;
        }
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        {
            let mut slot = writers[usize::from(peer)].lock();
            if let Some(old) = slot.take() {
                let _ = old.get_ref().shutdown(Shutdown::Both);
            }
            *slot = Some(BufWriter::new(stream));
        }
        metrics.record_reconnect();
        readers.lock().push(spawn_reader(peer, read_half, tx.clone(), Arc::clone(&events)));
        events.lock().push(PeerEvent::Up(peer));
    })
}

impl Endpoint for TcpEndpoint {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn send(&mut self, to: NodeId, payload: Payload) -> Result<(), NetError> {
        check_peer(self.id, to, self.num_nodes)?;
        match self.write_to(to, &payload) {
            Ok(()) => {
                self.note_send(to, &payload);
                crate::pool::global().reclaim(payload.bytes);
                Ok(())
            }
            // The peer left the group: its torn link is expected. Drop the
            // message instead of redialling a process that exited.
            Err(_) if !self.active[usize::from(to)] => Ok(()),
            // The higher-numbered side of a pair owns re-dialling; the
            // lower-numbered side reports the failure and waits to be
            // re-dialled.
            Err(_) if self.id > to => {
                self.redial_and_send(to, &payload)?;
                self.note_send(to, &payload);
                crate::pool::global().reclaim(payload.bytes);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn send_batch(&mut self, to: NodeId, payloads: Vec<Payload>) -> Result<(), NetError> {
        check_peer(self.id, to, self.num_nodes)?;
        if payloads.is_empty() {
            return Ok(());
        }
        match self.write_batch_to(to, &payloads) {
            Ok(()) => {
                let wire_bytes: u64 = payloads.iter().map(|p| u64::from(p.wire_len())).sum();
                for payload in &payloads {
                    self.note_send(to, payload);
                }
                self.metrics.record_batch(payloads.len(), wire_bytes);
                self.recorder.record(
                    self.clock.micros(),
                    EventKind::BatchSend,
                    u32::from(to),
                    payloads.len() as u32,
                    wire_bytes as u32,
                );
                let pool = crate::pool::global();
                for payload in payloads {
                    pool.reclaim(payload.bytes);
                }
                Ok(())
            }
            Err(_) if !self.active[usize::from(to)] => Ok(()),
            // Degrade to per-frame sends: `send` owns the redial policy and
            // its own per-message accounting.
            Err(_) => {
                for payload in payloads {
                    self.send(to, payload)?;
                }
                Ok(())
            }
        }
    }

    fn recv(&mut self) -> Result<Incoming, NetError> {
        let before = self.now();
        let msg = self.rx.recv().map_err(|_| NetError::Disconnected)??;
        self.metrics.record_blocked(self.now().saturating_since(before));
        self.note_recv(&msg);
        Ok(msg)
    }

    fn try_recv(&mut self) -> Result<Option<Incoming>, NetError> {
        match self.rx.try_recv() {
            Ok(Ok(msg)) => {
                self.note_recv(&msg);
                Ok(Some(msg))
            }
            Ok(Err(e)) => Err(e),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    fn recv_deadline(&mut self, timeout: SimSpan) -> Result<Option<Incoming>, NetError> {
        let before = self.now();
        match self.rx.recv_timeout(Duration::from_micros(timeout.as_micros())) {
            Ok(Ok(msg)) => {
                self.metrics.record_blocked(self.now().saturating_since(before));
                self.note_recv(&msg);
                Ok(Some(msg))
            }
            Ok(Err(e)) => Err(e),
            Err(RecvTimeoutError::Timeout) => {
                self.metrics.record_blocked(self.now().saturating_since(before));
                Ok(None)
            }
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    fn advance(&mut self, _dt: SimSpan) {
        // Real computation already consumed wall time.
    }

    fn now(&self) -> SimInstant {
        SimInstant::from_micros(self.clock.micros())
    }

    fn metrics(&self) -> NetMetricsSnapshot {
        self.metrics.snapshot()
    }

    fn metrics_delta(&mut self) -> NetMetricsSnapshot {
        self.metrics.snapshot_delta()
    }

    fn attach_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    fn remove_peer(&mut self, peer: NodeId) {
        self.active[usize::from(peer)] = false;
    }

    fn add_peer(&mut self, peer: NodeId) {
        self.active[usize::from(peer)] = true;
    }

    fn take_peer_events(&mut self) -> Vec<PeerEvent> {
        let events: Vec<PeerEvent> = std::mem::take(&mut *self.peer_events.lock());
        for ev in &events {
            if let PeerEvent::Down(peer) = ev {
                self.recorder.record(
                    self.clock.micros(),
                    EventKind::PeerDown,
                    u32::from(*peer),
                    0,
                    0,
                );
            }
        }
        events
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the acceptor with the shutdown handshake.
        if let Ok(mut s) = TcpStream::connect(self.listen_addr) {
            let _ = s.write_all(&SHUTDOWN_HANDSHAKE.to_le_bytes());
        }
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        // Closing the write halves causes peer readers to see EOF; dropping
        // our writers' underlying streams also unblocks our own readers.
        for slot in self.writers.iter() {
            if let Some(w) = slot.lock().take() {
                let _ = w.get_ref().flush();
                let _ = w.get_ref().shutdown(Shutdown::Both);
            }
        }
        let handles: Vec<JoinHandle<()>> = self.readers.lock().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_mesh_ping_pong() {
        let mut eps = TcpMesh::local(2).unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, Payload::data(b"ping".as_ref())).unwrap();
        let got = b.recv().unwrap();
        assert_eq!(got.from, 0);
        assert_eq!(&got.payload.bytes[..], b"ping");
        b.send(0, Payload::control(b"pong".as_ref())).unwrap();
        assert_eq!(&a.recv().unwrap().payload.bytes[..], b"pong");
    }

    #[test]
    fn star_routes_hub_to_spokes() {
        let mut eps = TcpMesh::star(4).unwrap();
        let mut spokes: Vec<TcpEndpoint> = eps.drain(1..).collect();
        let mut hub = eps.remove(0);
        for spoke in &mut spokes {
            spoke.send(0, Payload::control(vec![spoke.node_id() as u8])).unwrap();
        }
        let mut seen = Vec::new();
        for _ in 0..spokes.len() {
            let got = hub.recv().unwrap();
            assert_eq!(got.payload.bytes[0], got.from as u8);
            seen.push(got.from);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3]);
        for spoke in &mut spokes {
            hub.send(spoke.node_id(), Payload::data(b"ack".as_ref())).unwrap();
            assert_eq!(&spoke.recv().unwrap().payload.bytes[..], b"ack");
        }
    }

    #[test]
    fn four_node_broadcast_across_threads() {
        let eps = TcpMesh::local(4).unwrap();
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                std::thread::spawn(move || {
                    ep.broadcast(&Payload::control(vec![ep.node_id() as u8])).unwrap();
                    let mut seen = Vec::new();
                    for _ in 0..3 {
                        seen.push(ep.recv().unwrap().from);
                    }
                    seen.sort_unstable();
                    let expected: Vec<NodeId> = (0..4).filter(|&i| i != ep.node_id()).collect();
                    assert_eq!(seen, expected);
                    ep.metrics()
                })
            })
            .collect();
        for h in handles {
            let m = h.join().unwrap();
            assert_eq!(m.total_sent(), 3);
            assert_eq!(m.total_recv(), 3);
        }
    }

    #[test]
    fn send_batch_flushes_in_order_over_one_connection() {
        let mut eps = TcpMesh::local(2).unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send_batch(
            1,
            vec![
                Payload::data(b"one".as_ref()),
                Payload::control(b"two".as_ref()),
                Payload::data(b"three".as_ref()),
            ],
        )
        .unwrap();
        for expect in [b"one".as_ref(), b"two".as_ref(), b"three".as_ref()] {
            let got = b.recv().unwrap();
            assert_eq!(got.from, 0);
            assert_eq!(&got.payload.bytes[..], expect);
        }
        assert_eq!(a.metrics().total_sent(), 3, "batch keeps per-message accounting");
    }

    #[test]
    fn send_batch_after_forced_drop_degrades_to_redial() {
        let mut eps = TcpMesh::local(2).unwrap();
        let mut b = eps.pop().unwrap(); // id 1: the dialling side
        let mut a = eps.pop().unwrap(); // id 0: the accepting side
        b.inject_disconnect(0).unwrap();
        b.send_batch(0, vec![Payload::data(b"x".as_ref()), Payload::data(b"y".as_ref())]).unwrap();
        assert_eq!(&a.recv().unwrap().payload.bytes[..], b"x");
        assert_eq!(&a.recv().unwrap().payload.bytes[..], b"y");
        assert_eq!(b.metrics().reconnects, 1);
    }

    #[test]
    fn wire_len_travels_in_frame_header() {
        let mut eps = TcpMesh::local(2).unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, Payload::data(vec![0u8; 10]).with_wire_len(2048)).unwrap();
        let got = b.recv().unwrap();
        assert_eq!(got.payload.wire_len(), 2048);
        assert_eq!(b.metrics().data_recv.bytes, 2048);
    }

    #[test]
    fn drop_disconnects_peers() {
        let mut eps = TcpMesh::local(2).unwrap();
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        drop(b);
        // Node 0 is the accepting side of the pair (it never re-dials), so
        // its sends must eventually fail.
        let mut disconnected = false;
        for _ in 0..100 {
            if a.send(1, Payload::control(vec![0u8; 1024])).is_err() {
                disconnected = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(disconnected, "send to dropped peer should eventually fail");
    }

    #[test]
    fn recv_deadline_times_out_then_delivers() {
        let mut eps = TcpMesh::local(2).unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        assert!(b.recv_deadline(SimSpan::from_millis(30)).unwrap().is_none());
        a.send(1, Payload::data(b"late".as_ref())).unwrap();
        let got = b
            .recv_deadline(SimSpan::from_millis(2_000))
            .unwrap()
            .expect("message arrives within the deadline");
        assert_eq!(&got.payload.bytes[..], b"late");
    }

    #[test]
    fn reconnect_with_backoff_after_forced_drop() {
        let mut eps = TcpMesh::local(2).unwrap();
        let mut b = eps.pop().unwrap(); // id 1: the dialling side
        let mut a = eps.pop().unwrap(); // id 0: the accepting side
        b.send(0, Payload::data(b"one".as_ref())).unwrap();
        assert_eq!(&a.recv().unwrap().payload.bytes[..], b"one");

        // Tear the connection down; the next send transparently re-dials.
        b.inject_disconnect(0).unwrap();
        b.send(0, Payload::data(b"two".as_ref())).unwrap();
        let got = a.recv().unwrap();
        assert_eq!(got.from, 1);
        assert_eq!(&got.payload.bytes[..], b"two");

        let m = b.metrics();
        assert!(m.retries >= 1, "reconnect attempts are counted, got {m:?}");
        assert_eq!(m.reconnects, 1, "exactly one re-established connection");
        // Traffic keeps flowing both ways on the fresh connection.
        a.send(1, Payload::control(b"ack".as_ref())).unwrap();
        assert_eq!(&b.recv().unwrap().payload.bytes[..], b"ack");

        // The torn link surfaced as a first-class Down, the fresh one as Up.
        let events = b.take_peer_events();
        assert!(events.contains(&PeerEvent::Down(0)), "torn link must surface: {events:?}");
        assert!(events.contains(&PeerEvent::Up(0)), "redial must surface: {events:?}");
    }

    #[test]
    fn peer_exit_surfaces_as_down_event() {
        let mut eps = TcpMesh::local(2).unwrap();
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        drop(b);
        // The reader thread notices the EOF asynchronously.
        let mut seen = Vec::new();
        for _ in 0..200 {
            seen.extend(a.take_peer_events());
            if seen.contains(&PeerEvent::Down(1)) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(seen.contains(&PeerEvent::Down(1)), "EOF must surface as Down: {seen:?}");
    }

    #[test]
    fn sends_to_removed_peer_are_dropped_silently() {
        let mut eps = TcpMesh::local(2).unwrap();
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.remove_peer(1);
        drop(b);
        // Without removal this loop eventually errors (drop_disconnects_peers
        // above); with the peer removed every send must stay Ok.
        for _ in 0..100 {
            a.send(1, Payload::control(vec![0u8; 1024])).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
}
