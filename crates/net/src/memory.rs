//! In-process transport backed by crossbeam channels.
//!
//! Every node of a [`MemoryHub`] runs on its own OS thread; message delivery
//! is immediate (no modelled latency). This transport is the workhorse for
//! unit and property tests of protocol logic; timing-sensitive evaluation
//! uses the virtual-time simulator instead.

use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use sdso_obs::{EventKind, Recorder};

use crate::endpoint::{check_peer, Endpoint, NodeId, PeerEvent};
use crate::error::NetError;
use crate::message::{Incoming, Payload};
use crate::metrics::{obs_class, NetMetrics, NetMetricsSnapshot};
use crate::time::{SimInstant, SimSpan};

/// Builder for a fully-connected in-process cluster.
///
/// # Example
///
/// ```
/// use sdso_net::{memory::MemoryHub, Endpoint, Payload};
///
/// # fn main() -> Result<(), sdso_net::NetError> {
/// let endpoints = MemoryHub::new(3).into_endpoints();
/// assert_eq!(endpoints.len(), 3);
/// assert_eq!(endpoints[2].node_id(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MemoryHub {
    endpoints: Vec<MemoryEndpoint>,
}

impl MemoryHub {
    /// Creates a hub of `n` mutually connected nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds `NodeId::MAX`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "cluster must have at least one node");
        assert!(n <= usize::from(NodeId::MAX), "cluster too large");
        let start = Instant::now();
        let channels: Vec<(Sender<Incoming>, Receiver<Incoming>)> =
            (0..n).map(|_| unbounded()).collect();
        let senders: Vec<Sender<Incoming>> = channels.iter().map(|(s, _)| s.clone()).collect();
        let endpoints = channels
            .into_iter()
            .enumerate()
            .map(|(id, (_, rx))| MemoryEndpoint {
                id: id as NodeId,
                num_nodes: n,
                peers: senders.clone(),
                rx,
                start,
                metrics: NetMetrics::new(),
                recorder: Recorder::disabled(),
                active: vec![true; n],
                down_noted: vec![false; n],
                peer_events: Vec::new(),
            })
            .collect();
        MemoryHub { endpoints }
    }

    /// Consumes the hub, yielding one endpoint per node, indexed by node id.
    pub fn into_endpoints(self) -> Vec<MemoryEndpoint> {
        self.endpoints
    }
}

/// One node's endpoint in a [`MemoryHub`] cluster.
#[derive(Debug)]
pub struct MemoryEndpoint {
    id: NodeId,
    num_nodes: usize,
    peers: Vec<Sender<Incoming>>,
    rx: Receiver<Incoming>,
    start: Instant,
    metrics: NetMetrics,
    recorder: Recorder,
    /// Membership flags: a removed peer's link drops send failures silently
    /// instead of surfacing them (the peer is expected to be gone). While
    /// the removed peer's endpoint is still alive, delivery still works —
    /// a leaver keeps receiving acks while it settles.
    active: Vec<bool>,
    down_noted: Vec<bool>,
    peer_events: Vec<PeerEvent>,
}

impl MemoryEndpoint {
    /// Queues a [`PeerEvent::Down`] (once per downtime) when a peer's
    /// receive channel is found closed.
    fn note_peer_down(&mut self, peer: NodeId) {
        let idx = usize::from(peer);
        if self.down_noted[idx] {
            return;
        }
        self.down_noted[idx] = true;
        self.peer_events.push(PeerEvent::Down(peer));
        self.recorder.record(self.now().as_micros(), EventKind::PeerDown, u32::from(peer), 0, 0);
    }

    fn note_recv(&self, msg: &Incoming) {
        self.metrics.record_recv(msg.payload.class, msg.payload.wire_len());
        self.recorder.record(
            self.now().as_micros(),
            EventKind::Recv,
            u32::from(msg.from),
            obs_class(msg.payload.class),
            msg.payload.wire_len(),
        );
    }
}

impl Endpoint for MemoryEndpoint {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn send(&mut self, to: NodeId, payload: Payload) -> Result<(), NetError> {
        check_peer(self.id, to, self.num_nodes)?;
        self.metrics.record_send(payload.class, payload.wire_len());
        self.recorder.record(
            self.now().as_micros(),
            EventKind::Send,
            u32::from(to),
            obs_class(payload.class),
            payload.wire_len(),
        );
        if self.peers[usize::from(to)].send(Incoming { from: self.id, payload }).is_err() {
            self.note_peer_down(to);
            if self.active[usize::from(to)] {
                return Err(NetError::Disconnected);
            }
        }
        Ok(())
    }

    fn send_batch(&mut self, to: NodeId, payloads: Vec<Payload>) -> Result<(), NetError> {
        let msgs = payloads.len();
        let wire_bytes: u64 = payloads.iter().map(|p| u64::from(p.wire_len())).sum();
        for payload in payloads {
            self.send(to, payload)?;
        }
        if msgs > 0 {
            self.metrics.record_batch(msgs, wire_bytes);
            self.recorder.record(
                self.now().as_micros(),
                EventKind::BatchSend,
                u32::from(to),
                msgs as u32,
                wire_bytes as u32,
            );
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Incoming, NetError> {
        let before = self.now();
        let msg = self.rx.recv().map_err(|_| NetError::Disconnected)?;
        self.metrics.record_blocked(self.now().saturating_since(before));
        self.note_recv(&msg);
        Ok(msg)
    }

    fn try_recv(&mut self) -> Result<Option<Incoming>, NetError> {
        match self.rx.try_recv() {
            Ok(msg) => {
                self.note_recv(&msg);
                Ok(Some(msg))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    fn recv_deadline(&mut self, timeout: SimSpan) -> Result<Option<Incoming>, NetError> {
        use crossbeam::channel::RecvTimeoutError;
        let before = self.now();
        match self.rx.recv_timeout(std::time::Duration::from_micros(timeout.as_micros())) {
            Ok(msg) => {
                self.metrics.record_blocked(self.now().saturating_since(before));
                self.note_recv(&msg);
                Ok(Some(msg))
            }
            Err(RecvTimeoutError::Timeout) => {
                self.metrics.record_blocked(self.now().saturating_since(before));
                Ok(None)
            }
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    fn advance(&mut self, _dt: SimSpan) {
        // Local computation already consumed real wall time.
    }

    fn now(&self) -> SimInstant {
        SimInstant::from_micros(self.start.elapsed().as_micros() as u64)
    }

    fn metrics(&self) -> NetMetricsSnapshot {
        self.metrics.snapshot()
    }

    fn metrics_delta(&mut self) -> NetMetricsSnapshot {
        self.metrics.snapshot_delta()
    }

    fn attach_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    fn remove_peer(&mut self, peer: NodeId) {
        self.active[usize::from(peer)] = false;
    }

    fn add_peer(&mut self, peer: NodeId) {
        let idx = usize::from(peer);
        self.active[idx] = true;
        self.down_noted[idx] = false;
    }

    fn take_peer_events(&mut self) -> Vec<PeerEvent> {
        std::mem::take(&mut self.peer_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MsgClass;

    #[test]
    fn point_to_point_delivery() {
        let mut eps = MemoryHub::new(2).into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, Payload::data(vec![1, 2, 3])).unwrap();
        let got = b.recv().unwrap();
        assert_eq!(got.from, 0);
        assert_eq!(&got.payload.bytes[..], &[1, 2, 3]);
    }

    #[test]
    fn broadcast_reaches_everyone_but_self() {
        let mut eps = MemoryHub::new(4).into_endpoints();
        eps[0].broadcast(&Payload::control(vec![7])).unwrap();
        for ep in eps.iter_mut().skip(1) {
            let got = ep.recv().unwrap();
            assert_eq!(got.from, 0);
        }
        assert!(eps[0].try_recv().unwrap().is_none());
    }

    #[test]
    fn self_send_rejected() {
        let mut eps = MemoryHub::new(2).into_endpoints();
        assert!(matches!(
            eps[0].send(0, Payload::control(vec![])),
            Err(NetError::InvalidPeer { .. })
        ));
    }

    #[test]
    fn fifo_per_sender() {
        let mut eps = MemoryHub::new(2).into_endpoints();
        for i in 0..10u8 {
            eps[0].send(1, Payload::data(vec![i])).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(eps[1].recv().unwrap().payload.bytes[0], i);
        }
    }

    #[test]
    fn metrics_count_sends_and_recvs() {
        let mut eps = MemoryHub::new(2).into_endpoints();
        eps[0].send(1, Payload::data(vec![0; 16]).with_wire_len(2048)).unwrap();
        eps[0].send(1, Payload::control(vec![0; 4])).unwrap();
        let s = eps[0].metrics();
        assert_eq!(s.data_sent.msgs, 1);
        assert_eq!(s.data_sent.bytes, 2048);
        assert_eq!(s.control_sent.msgs, 1);
        let _ = eps[1].recv().unwrap();
        let _ = eps[1].recv().unwrap();
        let r = eps[1].metrics();
        assert_eq!(r.total_recv(), 2);
        assert_eq!(r.data_recv.bytes, 2048);
        let _ = MsgClass::Data; // silence unused import lint in some cfgs
    }

    #[test]
    fn send_batch_delivers_in_order_with_per_message_metrics() {
        let mut eps = MemoryHub::new(2).into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send_batch(
            1,
            vec![Payload::data(vec![1]), Payload::control(vec![2]), Payload::data(vec![3])],
        )
        .unwrap();
        for expect in [1u8, 2, 3] {
            assert_eq!(b.recv().unwrap().payload.bytes[0], expect);
        }
        // Per-message accounting is unchanged by batching.
        let s = a.metrics();
        assert_eq!(s.total_sent(), 3);
    }

    #[test]
    fn removed_peer_still_receives_while_alive() {
        let mut eps = MemoryHub::new(2).into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.remove_peer(1);
        a.send(1, Payload::control(vec![9])).unwrap();
        assert_eq!(b.recv().unwrap().payload.bytes[0], 9);
    }

    #[test]
    fn send_to_removed_exited_peer_is_silently_dropped() {
        let mut eps = MemoryHub::new(2).into_endpoints();
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.remove_peer(1);
        drop(b);
        a.send(1, Payload::control(vec![1])).unwrap();
        assert_eq!(a.take_peer_events(), vec![PeerEvent::Down(1)]);
    }

    #[test]
    fn unexpected_peer_exit_errors_and_queues_one_down_event() {
        let mut eps = MemoryHub::new(2).into_endpoints();
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        drop(b);
        assert!(matches!(a.send(1, Payload::data(vec![1])), Err(NetError::Disconnected)));
        assert!(matches!(a.send(1, Payload::data(vec![2])), Err(NetError::Disconnected)));
        // The repeated failure is reported but the event is queued once.
        assert_eq!(a.take_peer_events(), vec![PeerEvent::Down(1)]);
        assert!(a.take_peer_events().is_empty());
    }

    #[test]
    fn cross_thread_usage() {
        let mut eps = MemoryHub::new(2).into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let t = std::thread::spawn(move || {
            let got = b.recv().unwrap();
            assert_eq!(&got.payload.bytes[..], b"ping");
            b.send(0, Payload::control(b"pong".as_ref())).unwrap();
        });
        a.send(1, Payload::control(b"ping".as_ref())).unwrap();
        assert_eq!(&a.recv().unwrap().payload.bytes[..], b"pong");
        t.join().unwrap();
    }
}
