//! Fuzz-style property tests of the wire and framing layers: malformed
//! input must produce errors, never panics or bogus successes.

use bytes::BytesMut;
use proptest::prelude::*;
use sdso_net::frame::{read_frame, write_batch, write_frame};
use sdso_net::wire::{WireReader, WireWriter};
use sdso_net::{MsgClass, Payload};

proptest! {
    #[test]
    fn frame_roundtrip_arbitrary_payloads(
        body in proptest::collection::vec(any::<u8>(), 0..4096),
        from in 0u16..64,
        data in any::<bool>(),
        wire_len in 0u32..1_000_000,
    ) {
        let class = if data { MsgClass::Data } else { MsgClass::Control };
        let payload = Payload::new(class, body.clone()).with_wire_len(wire_len);
        let mut buf = Vec::new();
        write_frame(&mut buf, from, &payload).unwrap();
        let got = read_frame(&mut std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(got.from, from);
        prop_assert_eq!(got.payload.class, class);
        prop_assert_eq!(got.payload.bytes.to_vec(), body);
        prop_assert_eq!(got.payload.wire_len(), payload.wire_len());
    }

    #[test]
    fn frame_reader_never_panics_on_garbage(
        garbage in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        let _ = read_frame(&mut std::io::Cursor::new(garbage)); // Err is fine
    }

    #[test]
    fn truncated_valid_frames_error_cleanly(
        body in proptest::collection::vec(any::<u8>(), 1..512),
        cut in any::<proptest::sample::Index>(),
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, &Payload::data(body)).unwrap();
        let cut_at = cut.index(buf.len().saturating_sub(1)).max(1);
        buf.truncate(cut_at);
        prop_assert!(read_frame(&mut std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn batched_frames_roundtrip_as_a_read_frame_loop(
        bodies in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..512), any::<bool>()), 0..8),
        from in 0u16..64,
    ) {
        let payloads: Vec<Payload> = bodies
            .iter()
            .map(|(body, data)| {
                let class = if *data { MsgClass::Data } else { MsgClass::Control };
                Payload::new(class, body.clone())
            })
            .collect();
        let mut wire = Vec::new();
        let mut scratch = BytesMut::new();
        write_batch(&mut wire, from, &payloads, &mut scratch).unwrap();
        let mut cursor = std::io::Cursor::new(&wire[..]);
        for p in &payloads {
            let got = read_frame(&mut cursor).unwrap();
            prop_assert_eq!(got.from, from);
            prop_assert_eq!(got.payload.class, p.class);
            prop_assert_eq!(&got.payload.bytes[..], &p.bytes[..]);
        }
        prop_assert!(read_frame(&mut cursor).is_err(), "batch fully consumed");
    }

    #[test]
    fn truncated_batches_error_and_never_panic(
        bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 1..6),
        cut in any::<proptest::sample::Index>(),
    ) {
        let payloads: Vec<Payload> =
            bodies.into_iter().map(Payload::data).collect();
        let mut wire = Vec::new();
        let mut scratch = BytesMut::new();
        write_batch(&mut wire, 5, &payloads, &mut scratch).unwrap();
        wire.truncate(cut.index(wire.len()));
        // Reading the truncated batch yields some whole frames, then an
        // error — never a panic, never a phantom frame.
        let mut cursor = std::io::Cursor::new(&wire[..]);
        let mut whole = 0usize;
        while read_frame(&mut cursor).is_ok() {
            whole += 1;
        }
        prop_assert!(whole <= payloads.len());
    }

    #[test]
    fn corrupted_batch_bytes_never_panic_the_reader(
        bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..48), 1..5),
        corrupt_at in any::<proptest::sample::Index>(),
        corrupt_to in any::<u8>(),
    ) {
        let payloads: Vec<Payload> =
            bodies.into_iter().map(Payload::data).collect();
        let mut wire = Vec::new();
        let mut scratch = BytesMut::new();
        write_batch(&mut wire, 5, &payloads, &mut scratch).unwrap();
        let at = corrupt_at.index(wire.len());
        wire[at] = corrupt_to;
        let mut cursor = std::io::Cursor::new(&wire[..]);
        // Smashed length prefixes / class bytes may poison the rest of the
        // stream; each read must still end in Ok or Err, never a panic.
        for _ in 0..payloads.len() {
            if read_frame(&mut cursor).is_err() {
                break;
            }
        }
    }

    #[test]
    fn wire_reader_survives_any_operation_sequence(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
        ops in proptest::collection::vec(0u8..7, 0..16),
    ) {
        let mut r = WireReader::new(&bytes);
        for op in ops {
            // Any mix of reads on arbitrary bytes: Err allowed, panic not.
            let _ = match op {
                0 => r.get_u8().map(|_| ()),
                1 => r.get_u16().map(|_| ()),
                2 => r.get_u32().map(|_| ()),
                3 => r.get_u64().map(|_| ()),
                4 => r.get_bool().map(|_| ()),
                5 => r.get_bytes().map(|_| ()),
                _ => r.get_seq(|r| r.get_u8()).map(|_| ()),
            };
        }
    }

    #[test]
    fn writer_reader_roundtrip_mixed_sequences(
        values in proptest::collection::vec((any::<u32>(), proptest::collection::vec(any::<u8>(), 0..32)), 0..16)
    ) {
        let mut w = WireWriter::new();
        for (num, bytes) in &values {
            w.put_u32(*num);
            w.put_bytes(bytes);
        }
        let encoded = w.into_bytes();
        let mut r = WireReader::new(&encoded);
        for (num, bytes) in &values {
            prop_assert_eq!(r.get_u32().unwrap(), *num);
            prop_assert_eq!(r.get_bytes().unwrap(), &bytes[..]);
        }
        r.finish().unwrap();
    }
}
