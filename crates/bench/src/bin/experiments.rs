//! Regenerates the paper's evaluation figures on the virtual-time cluster.
//!
//! ```text
//! cargo run --release -p sdso-bench --bin experiments -- [COMMAND] [FLAGS]
//!
//! COMMANDS
//!   fig5        Figure 5: normalised execution time per process
//!   fig6        Figure 6: total message transfers
//!   fig7        Figure 7: data message transfers
//!   fig8        Figure 8: protocol overhead as % of execution time
//!   ext-size    Ext. A: effect of object payload size (paper future work 2)
//!   ext-block   Ext. B: blocking-time breakdown (paper future work 1)
//!   ext-diff    Ext. C: diff-merging ablation
//!   ext-proto   Ext. D: LRC and causal memory alongside the paper's four
//!   churn       Ext. E: dynamic membership (leave/join barriers), clean + faulty net
//!   crash       Ext. G: fail-stop crashes with WAL + snapshot recovery, 16 and 64 teams
//!   all         Everything above, in order
//!
//! FLAGS
//!   --quick     Small grid (2–4 processes, 40 ticks) for a fast look
//!   --csv       Emit CSV instead of aligned text
//!   --ticks N   Override iterations per process
//!   --seeds K   Average over K placement seeds (default 1, the paper's setup)
//!   --out DIR   Also write each command's tables to DIR/<command>.{txt,csv}
//! ```
//!
//! Every command prints where its output went; `all` keeps going past a
//! failing scenario and exits non-zero if any scenario failed to
//! converge, listing the failures at the end.

use sdso_game::{Protocol, Scenario};
use sdso_harness::{
    chaos_plan, chaos_retry_config, churn_table, crash_table, default_churn_plan,
    default_crash_plan, Sweep, Table,
};
use sdso_sim::NetworkModel;

/// Ext. E: the game under planned membership churn — two staggered
/// leave+join barriers — on a clean network and again under the chaos
/// fault plan, for every protocol with a view-change barrier.
fn churn_tables(sweep: &Sweep) -> Result<Vec<Table>, Box<dyn std::error::Error>> {
    let teams: u16 = 8;
    let ticks = sweep.ticks.max(12);
    let plan = default_churn_plan(usize::from(teams), ticks);
    let clean = Scenario::paper(teams, 1).with_ticks(ticks);
    let clean_table =
        churn_table(&clean, NetworkModel::paper_testbed(), &plan, None, &Protocol::PAPER)?;
    let faulty = clean.clone().with_reliability(chaos_retry_config());
    let faults = chaos_plan(0x5D50_1997);
    let faulty_table = churn_table(
        &faulty,
        NetworkModel::paper_testbed(),
        &plan,
        Some(&faults),
        &Protocol::PAPER,
    )?;
    Ok(vec![clean_table, faulty_table])
}

/// Ext. G: the game under seeded fail-stop crashes — one WAL recovery in
/// the first half, one unrecovered crash in the second — at 16 teams and
/// at 64, for every protocol with a view-change barrier. Run length is
/// held off the periodic checkpoint boundary so the recovery genuinely
/// replays log records.
fn crash_tables(sweep: &Sweep) -> Result<Vec<Table>, Box<dyn std::error::Error>> {
    let ticks = sweep.ticks.clamp(12, 36);
    let ticks = if ticks % 32 == 0 { ticks + 4 } else { ticks };
    let mut tables = Vec::new();
    for teams in [16u16, 64] {
        let scenario = Scenario::paper(teams, 1).with_ticks(ticks).with_seed(0x5D50_C4A5);
        let faults = default_crash_plan(0x5D50_C4A5, usize::from(teams), ticks);
        tables.push(crash_table(
            &scenario,
            NetworkModel::paper_testbed(),
            &faults,
            &Protocol::PAPER,
        )?);
    }
    Ok(tables)
}

fn print_tables(tables: &[Table], csv: bool) {
    for table in tables {
        if csv {
            println!("# {}", table.title);
            print!("{}", table.to_csv());
        } else {
            println!("{table}");
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = String::from("all");
    let mut quick = false;
    let mut csv = false;
    let mut ticks: Option<u64> = None;
    let mut seeds: Option<u64> = None;
    let mut out_dir: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--csv" => csv = true,
            "--ticks" => {
                ticks = Some(it.next().ok_or("--ticks needs a value")?.parse()?);
            }
            "--seeds" => {
                seeds = Some(it.next().ok_or("--seeds needs a value")?.parse()?);
            }
            "--out" => {
                out_dir = Some(it.next().ok_or("--out needs a directory")?.clone());
            }
            cmd if !cmd.starts_with('-') => command = cmd.to_owned(),
            other => return Err(format!("unknown flag {other:?}").into()),
        }
    }

    let mut sweep = if quick { Sweep::quick() } else { Sweep::paper() };
    if let Some(t) = ticks {
        sweep.ticks = t;
    }
    if let Some(k) = seeds {
        sweep.seeds = (0..k).map(|i| 0x5D50_1997 + i * 7919).collect();
    }

    eprintln!(
        "grid: processes {:?}, ranges {:?}, {} ticks, {} seed(s)",
        sweep.process_counts,
        sweep.ranges,
        sweep.ticks,
        sweep.seeds.len()
    );

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir)?;
    }

    let run = |name: &str, sweep: &Sweep| -> Result<(), Box<dyn std::error::Error>> {
        let t0 = std::time::Instant::now();
        let tables = match name {
            "fig5" => sweep.figure5()?,
            "fig6" => sweep.figure6()?,
            "fig7" => sweep.figure7()?,
            "fig8" => sweep.figure8()?,
            "ext-size" => sweep.ext_data_size(&[64, 256, 1024, 4096])?,
            "ext-block" => sweep.ext_blocking()?,
            "ext-diff" => sweep.ext_diff_merging()?,
            "ext-proto" => sweep.ext_protocols()?,
            "churn" => churn_tables(sweep)?,
            "crash" => crash_tables(sweep)?,
            other => return Err(format!("unknown command {other:?}").into()),
        };
        print_tables(&tables, csv);
        let location = match &out_dir {
            Some(dir) => {
                let path = format!("{dir}/{name}.{}", if csv { "csv" } else { "txt" });
                let mut body = String::new();
                for table in &tables {
                    if csv {
                        body.push_str(&format!("# {}\n{}", table.title, table.to_csv()));
                    } else {
                        body.push_str(&format!("{table}\n"));
                    }
                }
                std::fs::write(&path, body)?;
                path
            }
            None => "stdout".to_owned(),
        };
        eprintln!("[{name} done in {:.1?}; output: {location}]\n", t0.elapsed());
        Ok(())
    };

    if command == "all" {
        // Keep going past a failing scenario so one diverging protocol
        // doesn't hide the rest of the evaluation; report and fail at
        // the end.
        let mut failures: Vec<(String, String)> = Vec::new();
        for name in [
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "ext-size",
            "ext-block",
            "ext-diff",
            "ext-proto",
            "churn",
            "crash",
        ] {
            if let Err(e) = run(name, &sweep) {
                eprintln!("[{name} FAILED: {e}]\n");
                failures.push((name.to_owned(), e.to_string()));
            }
        }
        eprintln!(
            "output location: {}",
            out_dir.as_deref().map_or("stdout".to_owned(), |d| format!("{d}/<command>.*"))
        );
        if !failures.is_empty() {
            for (name, e) in &failures {
                eprintln!("FAILED {name}: {e}");
            }
            return Err(
                format!("{} of 10 experiment sets failed to converge", failures.len()).into()
            );
        }
    } else {
        run(&command, &sweep)?;
    }
    Ok(())
}
