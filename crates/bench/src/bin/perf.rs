//! The perf-regression runner.
//!
//! ```text
//! cargo run --release -p sdso-bench --bin perf -- record [FLAGS]
//! cargo run --release -p sdso-bench --bin perf -- check  [FLAGS]
//! cargo run --release -p sdso-bench --bin perf -- micro record [FLAGS]
//! cargo run --release -p sdso-bench --bin perf -- micro check  [FLAGS]
//! cargo run --release -p sdso-bench --bin perf -- net record [FLAGS]
//! cargo run --release -p sdso-bench --bin perf -- net check  [FLAGS]
//! cargo run --release -p sdso-bench --bin perf -- shard record [FLAGS]
//! cargo run --release -p sdso-bench --bin perf -- shard check  [FLAGS]
//! cargo run --release -p sdso-bench --bin perf -- crash record [FLAGS]
//! cargo run --release -p sdso-bench --bin perf -- crash check  [FLAGS]
//! cargo run --release -p sdso-bench --bin perf -- wire record [FLAGS]
//! cargo run --release -p sdso-bench --bin perf -- wire check  [FLAGS]
//!
//! COMMANDS
//!   record        Run the fixed scenario matrix and write a new baseline
//!   check         Run the matrix and compare against a committed baseline
//!   micro record  Run the hot-path micro suite, write BENCH_2.json
//!   micro check   Run the micro suite, compare work metrics against the
//!                 committed BENCH_2.json and enforce the >=2x tracked-diff
//!                 speedup floor
//!   net record    Run the 256-peer star echo over the reactor and the
//!                 thread-per-peer mesh, write BENCH_3.json
//!   net check     Run the same exchange, compare work metrics and p99
//!                 against the committed BENCH_3.json, and enforce the
//!                 reactor >= threaded-throughput parity floor fresh
//!   shard record  Run the sharded-vs-mesh scale pairings (64 and 256
//!                 nodes, steady-state windows), write BENCH_4.json
//!   shard check   Run the same pairings, compare work metrics against
//!                 the committed BENCH_4.json, and enforce the traffic
//!                 ratio ceilings + sub-linear growth cap fresh
//!   crash record  Run the paper protocols under the fixed crash-and-
//!                 recovery schedule, write BENCH_5.json
//!   crash check   Run the same schedule, compare recovery metrics
//!                 against the committed BENCH_5.json, and enforce the
//!                 recovery contract (convergence, WAL replay, the
//!                 unavailability ceiling) fresh
//!   wire record   Sweep {10M,100M,1G,10G} links × the paper protocols,
//!                 absolute vs compressed wire format, write BENCH_6.json
//!   wire check    Run the same sweep, compare bytes/tick and exchange
//!                 latency against the committed BENCH_6.json, and
//!                 enforce the MSYNC2 >=40% reduction floor fresh
//!
//! FLAGS
//!   --out FILE        record: where to write the baseline (default
//!                     BENCH_0.json; BENCH_2.json for micro, BENCH_3.json
//!                     for net, BENCH_4.json for shard, BENCH_5.json for
//!                     crash, BENCH_6.json for wire)
//!   --baseline FILE   check: baseline to compare against (same defaults)
//!   --tolerance F     check: relative tolerance, e.g. 0.25 = ±25% (default 0.25)
//!   --ticks N         iterations per process (default 120; check inherits
//!                     the baseline's value and flags a mismatch)
//!   --spokes N        net: spoke count (default 256; check inherits the
//!                     baseline's value)
//!   --pings N         net: pings per spoke (default 100; check inherits)
//!   --trace-out FILE  also export a Chrome trace (Perfetto-loadable) of a
//!                     fully-traced 16-process MSYNC2 run
//! ```
//!
//! The matrix is the paper's four protocols × {2, 16} processes ×
//! ranges {1, 3}, run under the deterministic virtual-time simulator:
//! simulated seconds and message counts are exact, so a drift beyond
//! tolerance means the protocols changed, not the host. The recorder
//! overhead (counters-only vs off, wall clock, min-of-N) is measured
//! and reported but never gated — it is the one host-dependent number.

use std::time::{Duration, Instant};

use sdso_bench::baseline::{BenchCell, BenchReport, MATRIX_NODES, MATRIX_RANGES, SCHEMA_VERSION};
use sdso_bench::crashbench::{run_crash_suite, CrashReport};
use sdso_bench::micro::{self, MicroReport, MICRO_SPEEDUP_FLOOR};
use sdso_bench::netbench::{
    run_net_suite, NetReport, NET_DEFAULT_PINGS, NET_DEFAULT_SPOKES, NET_PARITY_FLOOR,
};
use sdso_bench::shardbench::{run_shard_suite, ShardReport};
use sdso_bench::wirebench::{run_wire_suite, WireReport, WIRE_REDUCTION_FLOOR};
use sdso_game::{Protocol, Scenario};
use sdso_harness::run_experiment_obs;
use sdso_net::TraceConfig;
use sdso_sim::NetworkModel;

const DEFAULT_TICKS: u64 = 120;
const PLACEMENT_SEED: u64 = 0x5D50_1997;
const OVERHEAD_REPEATS: usize = 5;

fn scenario(nodes: u16, range: u16, ticks: u64) -> Scenario {
    Scenario::paper(nodes, range).with_ticks(ticks).with_seed(PLACEMENT_SEED)
}

/// Runs the whole matrix (counters always on, event tracing off) and
/// summarizes each cell.
fn run_matrix(ticks: u64) -> Result<Vec<BenchCell>, String> {
    let mut cells = Vec::new();
    for protocol in Protocol::PAPER {
        for nodes in MATRIX_NODES {
            for range in MATRIX_RANGES {
                let t0 = Instant::now();
                let (summary, obs) = run_experiment_obs(
                    &scenario(nodes, range, ticks),
                    protocol,
                    NetworkModel::paper_testbed(),
                    TraceConfig::off(),
                )
                .map_err(|e| format!("{protocol} n={nodes} range={range}: {e}"))?;
                let exchange = obs.merged_snapshot().histograms.get("dso.exchange_micros").cloned();
                let (p50, p99) =
                    exchange.map(|h| (h.percentile(50.0), h.percentile(99.0))).unwrap_or((0, 0));
                cells.push(BenchCell {
                    protocol: protocol.name().to_owned(),
                    nodes,
                    range,
                    secs_per_mod: summary.avg_time_per_modification_secs(),
                    total_messages: summary.total_messages(),
                    data_messages: summary.data_messages(),
                    exchange_p50_us: p50,
                    exchange_p99_us: p99,
                });
                eprintln!(
                    "  {protocol:<6} n={nodes:<2} range={range}: {} msgs, {:.4} s/mod \
                     [{:.1?} wall]",
                    summary.total_messages(),
                    summary.avg_time_per_modification_secs(),
                    t0.elapsed()
                );
            }
        }
    }
    Ok(cells)
}

/// Wall-clock cost of the counters-only flight recorder: min-of-N runs
/// of one fixed cell with tracing off vs counters-only, as a percent.
fn measure_recorder_overhead(ticks: u64) -> Result<f64, String> {
    // A long-enough run that per-event cost dominates thread start-up and
    // teardown noise (min-of-N absorbs scheduler jitter on top).
    let overhead_ticks = ticks * 8;
    let time_with = |config: TraceConfig| -> Result<Duration, String> {
        let mut best = Duration::MAX;
        for _ in 0..OVERHEAD_REPEATS {
            let t0 = Instant::now();
            run_experiment_obs(
                &scenario(4, 1, overhead_ticks),
                Protocol::Msync2,
                NetworkModel::paper_testbed(),
                config,
            )
            .map_err(|e| format!("overhead run: {e}"))?;
            best = best.min(t0.elapsed());
        }
        Ok(best)
    };
    let off = time_with(TraceConfig::off())?;
    let counters = time_with(TraceConfig::counters())?;
    let overhead = (counters.as_secs_f64() - off.as_secs_f64()) / off.as_secs_f64() * 100.0;
    eprintln!(
        "  recorder overhead (counters vs off, min of {OVERHEAD_REPEATS}): \
         {off:.1?} -> {counters:.1?} = {overhead:+.1}%"
    );
    Ok(overhead)
}

/// Traces a 16-process MSYNC2 run in full mode and writes the Chrome
/// trace (load it at <https://ui.perfetto.dev>).
fn export_trace(path: &str, ticks: u64) -> Result<(), String> {
    let (summary, obs) = run_experiment_obs(
        &scenario(16, 3, ticks),
        Protocol::Msync2,
        NetworkModel::paper_testbed(),
        TraceConfig::full(),
    )
    .map_err(|e| format!("trace run: {e}"))?;
    std::fs::write(path, obs.chrome_trace()).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!(
        "  trace: 16-process MSYNC2, {} events ({} dropped), {} msgs -> {path}",
        obs.total_events(),
        obs.total_dropped(),
        summary.total_messages()
    );
    Ok(())
}

fn usage() -> ! {
    eprintln!(
        "usage: perf record [--out FILE] [--ticks N] [--trace-out FILE]\n\
        \x20      perf check  [--baseline FILE] [--tolerance F] [--trace-out FILE]\n\
        \x20      perf micro record [--out FILE]\n\
        \x20      perf micro check  [--baseline FILE] [--tolerance F]\n\
        \x20      perf net record [--out FILE] [--spokes N] [--pings N]\n\
        \x20      perf net check  [--baseline FILE] [--tolerance F]\n\
        \x20      perf shard record [--out FILE]\n\
        \x20      perf shard check  [--baseline FILE] [--tolerance F]\n\
        \x20      perf crash record [--out FILE]\n\
        \x20      perf crash check  [--baseline FILE] [--tolerance F]\n\
        \x20      perf wire record [--out FILE]\n\
        \x20      perf wire check  [--baseline FILE] [--tolerance F]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(first) = args.first() else { usage() };
    // `micro record` / `micro check` fold into one command token; the
    // shared flag loop then applies with micro-suite defaults.
    let (command, flags_from) =
        if ["micro", "net", "shard", "crash", "wire"].contains(&first.as_str()) {
            match args.get(1).map(String::as_str) {
                Some("record") => (format!("{first}-record"), 2),
                Some("check") => (format!("{first}-check"), 2),
                _ => usage(),
            }
        } else {
            (first.clone(), 1)
        };
    let default_file = if first == "micro" {
        "BENCH_2.json"
    } else if first == "net" {
        "BENCH_3.json"
    } else if first == "shard" {
        "BENCH_4.json"
    } else if first == "crash" {
        "BENCH_5.json"
    } else if first == "wire" {
        "BENCH_6.json"
    } else {
        "BENCH_0.json"
    };
    let mut out = String::from(default_file);
    let mut baseline_path = String::from(default_file);
    let mut tolerance = 0.25f64;
    let mut ticks: Option<u64> = None;
    let mut spokes: Option<usize> = None;
    let mut pings: Option<u32> = None;
    let mut trace_out: Option<String> = None;

    let mut it = args[flags_from..].iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => {
                    eprintln!("{name} needs a value");
                    usage()
                }
            }
        };
        match arg.as_str() {
            "--out" => out = value("--out"),
            "--baseline" => baseline_path = value("--baseline"),
            "--tolerance" => {
                tolerance = value("--tolerance").parse().unwrap_or_else(|_| usage());
            }
            "--ticks" => ticks = Some(value("--ticks").parse().unwrap_or_else(|_| usage())),
            "--spokes" => spokes = Some(value("--spokes").parse().unwrap_or_else(|_| usage())),
            "--pings" => pings = Some(value("--pings").parse().unwrap_or_else(|_| usage())),
            "--trace-out" => trace_out = Some(value("--trace-out")),
            _ => usage(),
        }
    }

    let result = match command.as_str() {
        "record" => cmd_record(&out, ticks.unwrap_or(DEFAULT_TICKS), trace_out.as_deref()),
        "check" => cmd_check(&baseline_path, tolerance, ticks, trace_out.as_deref()),
        "micro-record" => cmd_micro_record(&out),
        "micro-check" => cmd_micro_check(&baseline_path, tolerance),
        "net-record" => cmd_net_record(
            &out,
            spokes.unwrap_or(NET_DEFAULT_SPOKES),
            pings.unwrap_or(NET_DEFAULT_PINGS),
        ),
        "net-check" => cmd_net_check(&baseline_path, tolerance, spokes, pings),
        "shard-record" => cmd_shard_record(&out),
        "shard-check" => cmd_shard_check(&baseline_path, tolerance),
        "crash-record" => cmd_crash_record(&out),
        "crash-check" => cmd_crash_check(&baseline_path, tolerance),
        "wire-record" => cmd_wire_record(&out),
        "wire-check" => cmd_wire_check(&baseline_path, tolerance),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn cmd_record(out: &str, ticks: u64, trace_out: Option<&str>) -> Result<(), String> {
    eprintln!("recording baseline ({ticks} ticks, seed {PLACEMENT_SEED:#x}):");
    let cells = run_matrix(ticks)?;
    let recorder_overhead_pct = measure_recorder_overhead(ticks)?;
    let report = BenchReport {
        schema: SCHEMA_VERSION,
        ticks,
        seed: PLACEMENT_SEED,
        cells,
        recorder_overhead_pct,
    };
    std::fs::write(out, report.to_json_string()).map_err(|e| format!("writing {out}: {e}"))?;
    println!("baseline written to {out}");
    if let Some(path) = trace_out {
        export_trace(path, ticks)?;
        println!("chrome trace written to {path}");
    }
    Ok(())
}

/// Reads a committed baseline, turning "file not found" into a loud,
/// actionable failure: a check with no baseline must never look like a
/// pass (or an incidental I/O hiccup) in CI.
fn read_baseline(baseline_path: &str, record_cmd: &str) -> Result<String, String> {
    match std::fs::read_to_string(baseline_path) {
        Ok(text) => Ok(text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(format!(
            "baseline {baseline_path} is missing — a perf gate without a committed baseline \
             would pass vacuously. Record one with `perf {record_cmd}` and commit the file."
        )),
        Err(e) => Err(format!("reading {baseline_path}: {e}")),
    }
}

fn cmd_check(
    baseline_path: &str,
    tolerance: f64,
    ticks: Option<u64>,
    trace_out: Option<&str>,
) -> Result<(), String> {
    let text = read_baseline(baseline_path, "record")?;
    let baseline = BenchReport::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    let ticks = ticks.unwrap_or(baseline.ticks);
    eprintln!(
        "checking against {baseline_path} ({} cells, {ticks} ticks, ±{:.0}%):",
        baseline.cells.len(),
        tolerance * 100.0
    );
    let cells = run_matrix(ticks)?;
    let recorder_overhead_pct = measure_recorder_overhead(ticks)?;
    let current = BenchReport {
        schema: SCHEMA_VERSION,
        ticks,
        seed: PLACEMENT_SEED,
        cells,
        recorder_overhead_pct,
    };
    if let Some(path) = trace_out {
        export_trace(path, ticks)?;
        println!("chrome trace written to {path}");
    }
    let violations = baseline.compare(&current, tolerance);
    if violations.is_empty() {
        println!(
            "perf check passed: {} cells within ±{:.0}% of {baseline_path} \
             (recorder overhead {recorder_overhead_pct:+.1}%)",
            baseline.cells.len(),
            tolerance * 100.0
        );
        Ok(())
    } else {
        for v in &violations {
            eprintln!("FAIL {v}");
        }
        Err(format!(
            "{} of {} checks failed against {baseline_path}",
            violations.len(),
            baseline.cells.len() * 5
        ))
    }
}

fn cmd_micro_record(out: &str) -> Result<(), String> {
    eprintln!("recording hot-path micro baseline:");
    let report = micro::run_suite();
    std::fs::write(out, report.to_json_string()).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "micro baseline written to {out} ({} cells, tracked diff {:.1}x)",
        report.cells.len(),
        report.diff_speedup
    );
    Ok(())
}

fn cmd_net_record(out: &str, spokes: usize, pings: u32) -> Result<(), String> {
    eprintln!("recording transport baseline ({spokes} spokes, {pings} pings each):");
    let report = run_net_suite(spokes, pings)?;
    if report.throughput_ratio < NET_PARITY_FLOOR {
        return Err(format!(
            "refusing to record a baseline below the parity floor: reactor sustained only \
             {:.2}x the thread-per-peer throughput (floor {NET_PARITY_FLOOR}x)",
            report.throughput_ratio
        ));
    }
    std::fs::write(out, report.to_json_string()).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "transport baseline written to {out} (reactor/threaded ratio {:.2}x)",
        report.throughput_ratio
    );
    Ok(())
}

fn cmd_net_check(
    baseline_path: &str,
    tolerance: f64,
    spokes: Option<usize>,
    pings: Option<u32>,
) -> Result<(), String> {
    let text = read_baseline(baseline_path, "net record")?;
    let baseline = NetReport::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    let spokes = spokes.unwrap_or(baseline.spokes as usize);
    let pings = pings.unwrap_or(baseline.pings as u32);
    eprintln!(
        "checking transport exchange against {baseline_path} \
         ({spokes} spokes, {pings} pings, ±{:.0}%):",
        tolerance * 100.0
    );
    let current = run_net_suite(spokes, pings)?;
    let mut violations = baseline.compare(&current, tolerance);
    // The one wall-clock gate, measured fresh on this host: one poll
    // thread must sustain at least the thread-per-peer mesh's rate.
    if current.throughput_ratio < NET_PARITY_FLOOR {
        violations.push(format!(
            "[throughput] reactor sustained only {:.2}x the thread-per-peer rate \
             (floor {NET_PARITY_FLOOR}x)",
            current.throughput_ratio
        ));
    }
    if violations.is_empty() {
        println!(
            "perf net passed: {} cells within ±{:.0}% of {baseline_path}, \
             reactor/threaded ratio {:.2}x (floor {NET_PARITY_FLOOR}x)",
            baseline.cells.len(),
            tolerance * 100.0,
            current.throughput_ratio
        );
        Ok(())
    } else {
        for v in &violations {
            eprintln!("FAIL {v}");
        }
        Err(format!("{} net checks failed against {baseline_path}", violations.len()))
    }
}

fn cmd_shard_record(out: &str) -> Result<(), String> {
    eprintln!("recording shard scale baseline (sharded vs full-mesh MSYNC2):");
    let report = run_shard_suite()?;
    let contract = report.contract_violations();
    if !contract.is_empty() {
        for v in &contract {
            eprintln!("FAIL {v}");
        }
        return Err(format!(
            "refusing to record a baseline that breaks the scale contract \
             ({} violations)",
            contract.len()
        ));
    }
    std::fs::write(out, report.to_json_string()).map_err(|e| format!("writing {out}: {e}"))?;
    println!("shard baseline written to {out} ({} cells)", report.cells.len());
    Ok(())
}

fn cmd_shard_check(baseline_path: &str, tolerance: f64) -> Result<(), String> {
    let text = read_baseline(baseline_path, "shard record")?;
    let baseline = ShardReport::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    eprintln!(
        "checking shard scaling against {baseline_path} ({} cells, ±{:.0}%):",
        baseline.cells.len(),
        tolerance * 100.0
    );
    let current = run_shard_suite()?;
    let mut violations = baseline.compare(&current, tolerance);
    // The scale contract, enforced fresh: ratio ceilings per cluster
    // size, sub-linear growth, and non-trivial suppression. The sim is
    // deterministic, so these are exact — any breach is a real change.
    violations.extend(current.contract_violations());
    if violations.is_empty() {
        println!(
            "perf shard passed: {} cells within ±{:.0}% of {baseline_path}",
            baseline.cells.len(),
            tolerance * 100.0
        );
        for c in &current.cells {
            println!(
                "  n={}: sharded {:.0} B/node-tick vs mesh {:.0} (ratio {:.3})",
                c.nodes, c.sharded_bytes_per_node_tick, c.mesh_bytes_per_node_tick, c.traffic_ratio
            );
        }
        Ok(())
    } else {
        for v in &violations {
            eprintln!("FAIL {v}");
        }
        Err(format!("{} shard checks failed against {baseline_path}", violations.len()))
    }
}

fn cmd_crash_record(out: &str) -> Result<(), String> {
    eprintln!("recording crash-recovery baseline (paper protocols, fixed fault plan):");
    let report = run_crash_suite()?;
    let contract = report.contract_violations();
    if !contract.is_empty() {
        for v in &contract {
            eprintln!("FAIL {v}");
        }
        return Err(format!(
            "refusing to record a baseline that breaks the recovery contract \
             ({} violations)",
            contract.len()
        ));
    }
    std::fs::write(out, report.to_json_string()).map_err(|e| format!("writing {out}: {e}"))?;
    println!("crash baseline written to {out} ({} cells)", report.cells.len());
    Ok(())
}

fn cmd_crash_check(baseline_path: &str, tolerance: f64) -> Result<(), String> {
    let text = read_baseline(baseline_path, "crash record")?;
    let baseline = CrashReport::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    eprintln!(
        "checking crash recovery against {baseline_path} ({} cells, ±{:.0}%):",
        baseline.cells.len(),
        tolerance * 100.0
    );
    let current = run_crash_suite()?;
    let mut violations = baseline.compare(&current, tolerance);
    // The recovery contract, enforced fresh: every protocol's run must
    // converge after the restart, the WAL must carry real state, and
    // the unavailability window must stay under the ceiling. The sim is
    // deterministic, so these are exact — any breach is a real change.
    violations.extend(current.contract_violations());
    if violations.is_empty() {
        println!(
            "perf crash passed: {} cells within ±{:.0}% of {baseline_path}",
            baseline.cells.len(),
            tolerance * 100.0
        );
        for c in &current.cells {
            println!(
                "  {}: {} WAL records replayed, down {:.2} ms, converged={}",
                c.protocol,
                c.wal_replayed,
                c.downtime_micros as f64 / 1000.0,
                c.converged
            );
        }
        Ok(())
    } else {
        for v in &violations {
            eprintln!("FAIL {v}");
        }
        Err(format!("{} crash checks failed against {baseline_path}", violations.len()))
    }
}

fn cmd_wire_record(out: &str) -> Result<(), String> {
    eprintln!("recording wire-compression baseline (link sweep, absolute vs compressed):");
    let report = run_wire_suite()?;
    let contract = report.contract_violations();
    if !contract.is_empty() {
        for v in &contract {
            eprintln!("FAIL {v}");
        }
        return Err(format!(
            "refusing to record a baseline that breaks the compression contract \
             ({} violations)",
            contract.len()
        ));
    }
    std::fs::write(out, report.to_json_string()).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wire baseline written to {out} ({} cells, MSYNC2 worst-link reduction {:.1}%)",
        report.cells.len(),
        report.msync2_reduction * 100.0
    );
    Ok(())
}

fn cmd_wire_check(baseline_path: &str, tolerance: f64) -> Result<(), String> {
    let text = read_baseline(baseline_path, "wire record")?;
    let baseline = WireReport::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    eprintln!(
        "checking wire compression against {baseline_path} ({} cells, ±{:.0}%):",
        baseline.cells.len(),
        tolerance * 100.0
    );
    let current = run_wire_suite()?;
    let mut violations = baseline.compare(&current, tolerance);
    // The compression contract, enforced fresh: MSYNC2 must clear the
    // reduction floor on its worst link and no cell may inflate. The sim
    // is deterministic, so these are exact — any breach is a real change.
    violations.extend(current.contract_violations());
    if violations.is_empty() {
        println!(
            "perf wire passed: {} cells within ±{:.0}% of {baseline_path}, \
             MSYNC2 worst-link reduction {:.1}% (floor {:.0}%)",
            baseline.cells.len(),
            tolerance * 100.0,
            current.derived_msync2_reduction() * 100.0,
            WIRE_REDUCTION_FLOOR * 100.0
        );
        Ok(())
    } else {
        for v in &violations {
            eprintln!("FAIL {v}");
        }
        Err(format!("{} wire checks failed against {baseline_path}", violations.len()))
    }
}

fn cmd_micro_check(baseline_path: &str, tolerance: f64) -> Result<(), String> {
    let text = read_baseline(baseline_path, "micro record")?;
    let baseline = MicroReport::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    eprintln!(
        "checking hot-path micro suite against {baseline_path} ({} cells, ±{:.0}%):",
        baseline.cells.len(),
        tolerance * 100.0
    );
    let current = micro::run_suite();
    let mut violations = baseline.compare(&current, tolerance);
    // The one timing gate: the change-proportional diff path must beat
    // the full scan by the contract floor, measured fresh on this host.
    if current.diff_speedup < MICRO_SPEEDUP_FLOOR {
        violations.push(format!(
            "[diff_tracked_64k] speedup {:.2}x below the {MICRO_SPEEDUP_FLOOR}x floor",
            current.diff_speedup
        ));
    }
    if violations.is_empty() {
        println!(
            "perf micro passed: {} cells within ±{:.0}% of {baseline_path}, \
             tracked diff {:.1}x (floor {MICRO_SPEEDUP_FLOOR}x)",
            baseline.cells.len(),
            tolerance * 100.0,
            current.diff_speedup
        );
        Ok(())
    } else {
        for v in &violations {
            eprintln!("FAIL {v}");
        }
        Err(format!("{} micro checks failed against {baseline_path}", violations.len()))
    }
}
