//! The perf-regression runner.
//!
//! ```text
//! cargo run --release -p sdso-bench --bin perf -- record [FLAGS]
//! cargo run --release -p sdso-bench --bin perf -- check  [FLAGS]
//! cargo run --release -p sdso-bench --bin perf -- micro record [FLAGS]
//! cargo run --release -p sdso-bench --bin perf -- micro check  [FLAGS]
//!
//! COMMANDS
//!   record        Run the fixed scenario matrix and write a new baseline
//!   check         Run the matrix and compare against a committed baseline
//!   micro record  Run the hot-path micro suite, write BENCH_2.json
//!   micro check   Run the micro suite, compare work metrics against the
//!                 committed BENCH_2.json and enforce the >=2x tracked-diff
//!                 speedup floor
//!
//! FLAGS
//!   --out FILE        record: where to write the baseline (default
//!                     BENCH_0.json; BENCH_2.json for micro)
//!   --baseline FILE   check: baseline to compare against (same defaults)
//!   --tolerance F     check: relative tolerance, e.g. 0.25 = ±25% (default 0.25)
//!   --ticks N         iterations per process (default 120; check inherits
//!                     the baseline's value and flags a mismatch)
//!   --trace-out FILE  also export a Chrome trace (Perfetto-loadable) of a
//!                     fully-traced 16-process MSYNC2 run
//! ```
//!
//! The matrix is the paper's four protocols × {2, 16} processes ×
//! ranges {1, 3}, run under the deterministic virtual-time simulator:
//! simulated seconds and message counts are exact, so a drift beyond
//! tolerance means the protocols changed, not the host. The recorder
//! overhead (counters-only vs off, wall clock, min-of-N) is measured
//! and reported but never gated — it is the one host-dependent number.

use std::time::{Duration, Instant};

use sdso_bench::baseline::{BenchCell, BenchReport, MATRIX_NODES, MATRIX_RANGES, SCHEMA_VERSION};
use sdso_bench::micro::{self, MicroReport, MICRO_SPEEDUP_FLOOR};
use sdso_game::{Protocol, Scenario};
use sdso_harness::run_experiment_obs;
use sdso_net::TraceConfig;
use sdso_sim::NetworkModel;

const DEFAULT_TICKS: u64 = 120;
const PLACEMENT_SEED: u64 = 0x5D50_1997;
const OVERHEAD_REPEATS: usize = 5;

fn scenario(nodes: u16, range: u16, ticks: u64) -> Scenario {
    Scenario::paper(nodes, range).with_ticks(ticks).with_seed(PLACEMENT_SEED)
}

/// Runs the whole matrix (counters always on, event tracing off) and
/// summarizes each cell.
fn run_matrix(ticks: u64) -> Result<Vec<BenchCell>, String> {
    let mut cells = Vec::new();
    for protocol in Protocol::PAPER {
        for nodes in MATRIX_NODES {
            for range in MATRIX_RANGES {
                let t0 = Instant::now();
                let (summary, obs) = run_experiment_obs(
                    &scenario(nodes, range, ticks),
                    protocol,
                    NetworkModel::paper_testbed(),
                    TraceConfig::off(),
                )
                .map_err(|e| format!("{protocol} n={nodes} range={range}: {e}"))?;
                let exchange = obs.merged_snapshot().histograms.get("dso.exchange_micros").cloned();
                let (p50, p99) =
                    exchange.map(|h| (h.percentile(50.0), h.percentile(99.0))).unwrap_or((0, 0));
                cells.push(BenchCell {
                    protocol: protocol.name().to_owned(),
                    nodes,
                    range,
                    secs_per_mod: summary.avg_time_per_modification_secs(),
                    total_messages: summary.total_messages(),
                    data_messages: summary.data_messages(),
                    exchange_p50_us: p50,
                    exchange_p99_us: p99,
                });
                eprintln!(
                    "  {protocol:<6} n={nodes:<2} range={range}: {} msgs, {:.4} s/mod \
                     [{:.1?} wall]",
                    summary.total_messages(),
                    summary.avg_time_per_modification_secs(),
                    t0.elapsed()
                );
            }
        }
    }
    Ok(cells)
}

/// Wall-clock cost of the counters-only flight recorder: min-of-N runs
/// of one fixed cell with tracing off vs counters-only, as a percent.
fn measure_recorder_overhead(ticks: u64) -> Result<f64, String> {
    // A long-enough run that per-event cost dominates thread start-up and
    // teardown noise (min-of-N absorbs scheduler jitter on top).
    let overhead_ticks = ticks * 8;
    let time_with = |config: TraceConfig| -> Result<Duration, String> {
        let mut best = Duration::MAX;
        for _ in 0..OVERHEAD_REPEATS {
            let t0 = Instant::now();
            run_experiment_obs(
                &scenario(4, 1, overhead_ticks),
                Protocol::Msync2,
                NetworkModel::paper_testbed(),
                config,
            )
            .map_err(|e| format!("overhead run: {e}"))?;
            best = best.min(t0.elapsed());
        }
        Ok(best)
    };
    let off = time_with(TraceConfig::off())?;
    let counters = time_with(TraceConfig::counters())?;
    let overhead = (counters.as_secs_f64() - off.as_secs_f64()) / off.as_secs_f64() * 100.0;
    eprintln!(
        "  recorder overhead (counters vs off, min of {OVERHEAD_REPEATS}): \
         {off:.1?} -> {counters:.1?} = {overhead:+.1}%"
    );
    Ok(overhead)
}

/// Traces a 16-process MSYNC2 run in full mode and writes the Chrome
/// trace (load it at <https://ui.perfetto.dev>).
fn export_trace(path: &str, ticks: u64) -> Result<(), String> {
    let (summary, obs) = run_experiment_obs(
        &scenario(16, 3, ticks),
        Protocol::Msync2,
        NetworkModel::paper_testbed(),
        TraceConfig::full(),
    )
    .map_err(|e| format!("trace run: {e}"))?;
    std::fs::write(path, obs.chrome_trace()).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!(
        "  trace: 16-process MSYNC2, {} events ({} dropped), {} msgs -> {path}",
        obs.total_events(),
        obs.total_dropped(),
        summary.total_messages()
    );
    Ok(())
}

fn usage() -> ! {
    eprintln!(
        "usage: perf record [--out FILE] [--ticks N] [--trace-out FILE]\n\
        \x20      perf check  [--baseline FILE] [--tolerance F] [--trace-out FILE]\n\
        \x20      perf micro record [--out FILE]\n\
        \x20      perf micro check  [--baseline FILE] [--tolerance F]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(first) = args.first() else { usage() };
    // `micro record` / `micro check` fold into one command token; the
    // shared flag loop then applies with micro-suite defaults.
    let (command, flags_from) = if first == "micro" {
        match args.get(1).map(String::as_str) {
            Some("record") => ("micro-record".to_owned(), 2),
            Some("check") => ("micro-check".to_owned(), 2),
            _ => usage(),
        }
    } else {
        (first.clone(), 1)
    };
    let default_file = if flags_from == 2 { "BENCH_2.json" } else { "BENCH_0.json" };
    let mut out = String::from(default_file);
    let mut baseline_path = String::from(default_file);
    let mut tolerance = 0.25f64;
    let mut ticks: Option<u64> = None;
    let mut trace_out: Option<String> = None;

    let mut it = args[flags_from..].iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => {
                    eprintln!("{name} needs a value");
                    usage()
                }
            }
        };
        match arg.as_str() {
            "--out" => out = value("--out"),
            "--baseline" => baseline_path = value("--baseline"),
            "--tolerance" => {
                tolerance = value("--tolerance").parse().unwrap_or_else(|_| usage());
            }
            "--ticks" => ticks = Some(value("--ticks").parse().unwrap_or_else(|_| usage())),
            "--trace-out" => trace_out = Some(value("--trace-out")),
            _ => usage(),
        }
    }

    let result = match command.as_str() {
        "record" => cmd_record(&out, ticks.unwrap_or(DEFAULT_TICKS), trace_out.as_deref()),
        "check" => cmd_check(&baseline_path, tolerance, ticks, trace_out.as_deref()),
        "micro-record" => cmd_micro_record(&out),
        "micro-check" => cmd_micro_check(&baseline_path, tolerance),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn cmd_record(out: &str, ticks: u64, trace_out: Option<&str>) -> Result<(), String> {
    eprintln!("recording baseline ({ticks} ticks, seed {PLACEMENT_SEED:#x}):");
    let cells = run_matrix(ticks)?;
    let recorder_overhead_pct = measure_recorder_overhead(ticks)?;
    let report = BenchReport {
        schema: SCHEMA_VERSION,
        ticks,
        seed: PLACEMENT_SEED,
        cells,
        recorder_overhead_pct,
    };
    std::fs::write(out, report.to_json_string()).map_err(|e| format!("writing {out}: {e}"))?;
    println!("baseline written to {out}");
    if let Some(path) = trace_out {
        export_trace(path, ticks)?;
        println!("chrome trace written to {path}");
    }
    Ok(())
}

fn cmd_check(
    baseline_path: &str,
    tolerance: f64,
    ticks: Option<u64>,
    trace_out: Option<&str>,
) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {baseline_path}: {e}"))?;
    let baseline = BenchReport::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    let ticks = ticks.unwrap_or(baseline.ticks);
    eprintln!(
        "checking against {baseline_path} ({} cells, {ticks} ticks, ±{:.0}%):",
        baseline.cells.len(),
        tolerance * 100.0
    );
    let cells = run_matrix(ticks)?;
    let recorder_overhead_pct = measure_recorder_overhead(ticks)?;
    let current = BenchReport {
        schema: SCHEMA_VERSION,
        ticks,
        seed: PLACEMENT_SEED,
        cells,
        recorder_overhead_pct,
    };
    if let Some(path) = trace_out {
        export_trace(path, ticks)?;
        println!("chrome trace written to {path}");
    }
    let violations = baseline.compare(&current, tolerance);
    if violations.is_empty() {
        println!(
            "perf check passed: {} cells within ±{:.0}% of {baseline_path} \
             (recorder overhead {recorder_overhead_pct:+.1}%)",
            baseline.cells.len(),
            tolerance * 100.0
        );
        Ok(())
    } else {
        for v in &violations {
            eprintln!("FAIL {v}");
        }
        Err(format!(
            "{} of {} checks failed against {baseline_path}",
            violations.len(),
            baseline.cells.len() * 5
        ))
    }
}

fn cmd_micro_record(out: &str) -> Result<(), String> {
    eprintln!("recording hot-path micro baseline:");
    let report = micro::run_suite();
    std::fs::write(out, report.to_json_string()).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "micro baseline written to {out} ({} cells, tracked diff {:.1}x)",
        report.cells.len(),
        report.diff_speedup
    );
    Ok(())
}

fn cmd_micro_check(baseline_path: &str, tolerance: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {baseline_path}: {e}"))?;
    let baseline = MicroReport::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    eprintln!(
        "checking hot-path micro suite against {baseline_path} ({} cells, ±{:.0}%):",
        baseline.cells.len(),
        tolerance * 100.0
    );
    let current = micro::run_suite();
    let mut violations = baseline.compare(&current, tolerance);
    // The one timing gate: the change-proportional diff path must beat
    // the full scan by the contract floor, measured fresh on this host.
    if current.diff_speedup < MICRO_SPEEDUP_FLOOR {
        violations.push(format!(
            "[diff_tracked_64k] speedup {:.2}x below the {MICRO_SPEEDUP_FLOOR}x floor",
            current.diff_speedup
        ));
    }
    if violations.is_empty() {
        println!(
            "perf micro passed: {} cells within ±{:.0}% of {baseline_path}, \
             tracked diff {:.1}x (floor {MICRO_SPEEDUP_FLOOR}x)",
            baseline.cells.len(),
            tolerance * 100.0,
            current.diff_speedup
        );
        Ok(())
    } else {
        for v in &violations {
            eprintln!("FAIL {v}");
        }
        Err(format!("{} micro checks failed against {baseline_path}", violations.len()))
    }
}
