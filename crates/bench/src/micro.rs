//! The hot-path micro-benchmark suite behind `perf micro`.
//!
//! Where the macro matrix ([`crate::baseline`]) gates whole-protocol
//! behaviour, this suite gates the data path itself: diff construction
//! (full scan vs dirty-range guided), slotted-buffer merging, frame
//! encode/decode through the buffer pool, and batched vs per-frame
//! sending over the in-memory transport.
//!
//! Every cell carries two deterministic work metrics — `items` and
//! `bytes`, exact counts derived from the data structures — plus an
//! informational `ns_per_op`. Only the work metrics are gated (same
//! ±tolerance idea as the macro baseline): they drift only when the
//! algorithms change, never with the host. The one host-dependent number
//! that IS gated is the tracked-vs-full diff speedup, which the check
//! re-measures fresh and requires to stay at or above
//! [`MICRO_SPEEDUP_FLOOR`] — the hot-path contract that a 64 KiB object
//! at ≤1% dirty diffs change-proportionally, not size-proportionally.

use std::hint::black_box;
use std::time::Instant;

use sdso_core::{Diff, DirtyRanges, LogicalTime, ObjectId, SlottedBuffer, Version};
use sdso_net::frame::{append_frame, read_frame};
use sdso_net::memory::MemoryHub;
use sdso_net::{Endpoint, Payload};

use crate::json::{obj, Json};

/// Bumped when the report layout changes incompatibly.
pub const MICRO_SCHEMA_VERSION: u64 = 1;

/// Minimum tracked-vs-full diff-build speedup the check enforces for a
/// 64 KiB object with ≤1% of its bytes dirty.
pub const MICRO_SPEEDUP_FLOOR: f64 = 2.0;

/// Object size for the diff cells: the paper's large-object regime.
const OBJ_SIZE: usize = 64 * 1024;
/// Dirty spans written into the object: 8 spans of 80 bytes = 640 bytes,
/// just under 1% of 64 KiB.
const DIRTY_SPANS: &[(u32, u32)] = &[
    (1_024, 80),
    (9_000, 80),
    (17_500, 80),
    (25_000, 80),
    (33_333, 80),
    (44_000, 80),
    (52_000, 80),
    (63_000, 80),
];

/// One micro-benchmark result.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroCell {
    /// Stable cell identifier (`diff_full_64k`, `send_batched`, ...).
    pub name: String,
    /// Deterministic item count the operation produced or processed
    /// (runs, merges, frames, messages). Gated.
    pub items: u64,
    /// Deterministic byte count the operation produced or processed.
    /// Gated.
    pub bytes: u64,
    /// Wall-clock nanoseconds per operation (best of several batches).
    /// Informational only — never gated.
    pub ns_per_op: f64,
}

/// A full micro-benchmark report (`BENCH_2.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct MicroReport {
    /// Schema version ([`MICRO_SCHEMA_VERSION`]).
    pub schema: u64,
    /// All cells, in suite order.
    pub cells: Vec<MicroCell>,
    /// Measured tracked-vs-full diff-build speedup on the recording
    /// host. Recorded for the log; the check re-measures it fresh.
    pub diff_speedup: f64,
}

impl MicroReport {
    /// Serializes the report as pretty-printed JSON.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                obj(vec![
                    ("name", Json::Str(c.name.clone())),
                    ("items", Json::Num(c.items as f64)),
                    ("bytes", Json::Num(c.bytes as f64)),
                    ("ns_per_op", Json::Num(c.ns_per_op)),
                ])
            })
            .collect();
        obj(vec![
            ("schema", Json::Num(self.schema as f64)),
            ("diff_speedup", Json::Num(self.diff_speedup)),
            ("cells", Json::Arr(cells)),
        ])
        .pretty()
    }

    /// Parses a report previously written by [`MicroReport::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn parse(text: &str) -> Result<MicroReport, String> {
        let root = Json::parse(text)?;
        let schema = root
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing numeric `schema`".to_owned())?;
        let diff_speedup = root
            .get("diff_speedup")
            .and_then(Json::as_f64)
            .ok_or_else(|| "missing numeric `diff_speedup`".to_owned())?;
        let raw_cells = root
            .get("cells")
            .and_then(Json::as_array)
            .ok_or_else(|| "missing `cells` array".to_owned())?;
        let mut cells = Vec::with_capacity(raw_cells.len());
        for (i, c) in raw_cells.iter().enumerate() {
            let field = |key: &str| -> Result<f64, String> {
                c.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("cell {i}: missing numeric `{key}`"))
            };
            cells.push(MicroCell {
                name: c
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("cell {i}: missing `name`"))?
                    .to_owned(),
                items: field("items")? as u64,
                bytes: field("bytes")? as u64,
                ns_per_op: field("ns_per_op")?,
            });
        }
        Ok(MicroReport { schema, cells, diff_speedup })
    }

    /// Compares `current` against this baseline: every baseline cell must
    /// exist in `current` with `items` and `bytes` within ±`tolerance`
    /// relative, and `current` must introduce no unknown cells. Timing
    /// fields are never compared. Returns human-readable violations.
    #[must_use]
    pub fn compare(&self, current: &MicroReport, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if self.schema != current.schema {
            violations.push(format!(
                "schema changed: baseline {} vs current {}",
                self.schema, current.schema
            ));
            return violations;
        }
        for base in &self.cells {
            let Some(cur) = current.cells.iter().find(|c| c.name == base.name) else {
                violations.push(format!("[{}] cell missing from current run", base.name));
                continue;
            };
            for (metric, b, c) in
                [("items", base.items, cur.items), ("bytes", base.bytes, cur.bytes)]
            {
                if !within_rel(b as f64, c as f64, tolerance) {
                    violations.push(format!(
                        "[{}] {metric}: baseline {b} vs current {c} (>±{:.0}%)",
                        base.name,
                        tolerance * 100.0
                    ));
                }
            }
        }
        for cur in &current.cells {
            if !self.cells.iter().any(|b| b.name == cur.name) {
                violations.push(format!(
                    "[{}] new cell not in baseline; re-record BENCH_2.json",
                    cur.name
                ));
            }
        }
        violations
    }
}

/// `b` within ±`tol` relative of `a` (both sides, exact zeros must match).
fn within_rel(a: f64, b: f64, tol: f64) -> bool {
    if a == 0.0 {
        return b == 0.0;
    }
    ((b - a) / a).abs() <= tol
}

// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

/// Best-of-3 batches of `reps` calls, as nanoseconds per call.
fn time_ns_per_op<F: FnMut()>(reps: u32, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / f64::from(reps));
    }
    best
}

/// The 64 KiB diff fixture: old image, new image with ~1% dirty, and the
/// dirty-range record of exactly the spans written.
fn diff_fixture() -> (Vec<u8>, Vec<u8>, DirtyRanges) {
    let old = vec![0u8; OBJ_SIZE];
    let mut new = old.clone();
    let mut dirty = DirtyRanges::new();
    for &(off, len) in DIRTY_SPANS {
        new[off as usize..(off + len) as usize].fill(0xC7);
        dirty.record(off, len);
    }
    (old, new, dirty)
}

/// Runs the full suite and assembles the report.
///
/// Work metrics are exact and reproducible; timings are host-dependent.
/// Progress lines go to stderr like the macro matrix's.
#[must_use]
pub fn run_suite() -> MicroReport {
    let mut cells = Vec::new();

    // --- diff build: full scan vs dirty-range guided -----------------
    let (old, new, dirty) = diff_fixture();
    let full = Diff::between(&old, &new);
    let tracked = Diff::between_ranges(&old, &new, &dirty);
    assert_eq!(full, tracked, "tracked diff must be bit-identical to the full scan");
    let full_ns = time_ns_per_op(400, || {
        black_box(Diff::between(black_box(&old), black_box(&new)));
    });
    let tracked_ns = time_ns_per_op(4000, || {
        black_box(Diff::between_ranges(black_box(&old), black_box(&new), black_box(&dirty)));
    });
    let diff_speedup = full_ns / tracked_ns;
    cells.push(MicroCell {
        name: "diff_full_64k".to_owned(),
        items: full.run_count() as u64,
        bytes: full.byte_count() as u64,
        ns_per_op: full_ns,
    });
    cells.push(MicroCell {
        name: "diff_tracked_64k".to_owned(),
        items: tracked.run_count() as u64,
        bytes: tracked.byte_count() as u64,
        ns_per_op: tracked_ns,
    });
    eprintln!(
        "  diff 64KiB ({} dirty bytes): full {full_ns:.0} ns, tracked {tracked_ns:.0} ns \
         = {diff_speedup:.1}x",
        full.byte_count()
    );

    // --- slotted-buffer merge ----------------------------------------
    let writes: Vec<(ObjectId, Diff, Version)> = (0..256u64)
        .map(|i| {
            let obj = ObjectId((i % 4) as u32);
            let offset = ((i * 37) % 1_000) as u32;
            let diff = Diff::single(offset, vec![i as u8; 16]);
            (obj, diff, Version::new(LogicalTime::from_ticks(i + 1), 0))
        })
        .collect();
    let merge_pass = || {
        let mut buf = SlottedBuffer::new(4, 0, true);
        for (obj, diff, stamp) in &writes {
            buf.buffer_for_all(*obj, diff, *stamp, &[]);
        }
        buf
    };
    let reference = merge_pass();
    let pending_bytes: usize = [1u16, 2, 3]
        .into_iter()
        .flat_map(|peer| {
            let mut b = merge_pass();
            b.drain_slot(peer).into_iter().map(|u| u.diff.encoded_len()).collect::<Vec<_>>()
        })
        .sum();
    let merge_ns = time_ns_per_op(200, || {
        black_box(merge_pass());
    });
    cells.push(MicroCell {
        name: "slotted_merge_256w".to_owned(),
        items: reference.merged_count(),
        bytes: pending_bytes as u64,
        ns_per_op: merge_ns / 256.0, // per buffered write
    });
    eprintln!(
        "  slotted merge: {} merges across 256 writes, {:.0} ns/write",
        reference.merged_count(),
        merge_ns / 256.0
    );

    // --- frame encode / decode through the pool -----------------------
    let bodies: Vec<Payload> =
        (0..16u8).map(|i| Payload::data(vec![i; 64 + usize::from(i) * 24])).collect();
    let wire_bytes: usize = bodies.iter().map(|p| 4 + 7 + p.bytes.len()).sum();
    let pool = sdso_net::pool::BufPool::new(8, 1 << 20);
    let encode_ns = time_ns_per_op(2000, || {
        let mut scratch = pool.get();
        for p in &bodies {
            append_frame(&mut scratch, 3, p);
        }
        black_box(scratch.len());
        pool.put(scratch);
    });
    let mut encoded = pool.get();
    for p in &bodies {
        append_frame(&mut encoded, 3, p);
    }
    let encoded = encoded.freeze();
    assert_eq!(encoded.len(), wire_bytes);
    let decode_ns = time_ns_per_op(2000, || {
        let mut cursor = std::io::Cursor::new(&encoded[..]);
        for _ in &bodies {
            black_box(read_frame(&mut cursor).expect("suite frames are well-formed"));
        }
    });
    cells.push(MicroCell {
        name: "frame_encode_16".to_owned(),
        items: bodies.len() as u64,
        bytes: wire_bytes as u64,
        ns_per_op: encode_ns / bodies.len() as f64,
    });
    cells.push(MicroCell {
        name: "frame_decode_16".to_owned(),
        items: bodies.len() as u64,
        bytes: wire_bytes as u64,
        ns_per_op: decode_ns / bodies.len() as f64,
    });
    eprintln!(
        "  frame: 16 frames / {wire_bytes} B, encode {:.0} ns/frame, decode {:.0} ns/frame",
        encode_ns / 16.0,
        decode_ns / 16.0
    );

    // --- batched vs per-frame send over the in-memory transport -------
    for (name, batched) in [("send_unbatched_16", false), ("send_batched_16", true)] {
        let mut eps = MemoryHub::new(2).into_endpoints();
        let mut rx = eps.pop().expect("two endpoints");
        let mut tx = eps.pop().expect("two endpoints");
        let payload_bytes: usize = bodies.iter().map(|p| p.bytes.len()).sum();
        let send_ns = time_ns_per_op(500, || {
            if batched {
                tx.send_batch(1, bodies.clone()).expect("memory send");
            } else {
                for p in &bodies {
                    tx.send(1, p.clone()).expect("memory send");
                }
            }
            for _ in &bodies {
                black_box(rx.recv().expect("memory recv"));
            }
        });
        cells.push(MicroCell {
            name: name.to_owned(),
            items: bodies.len() as u64,
            bytes: payload_bytes as u64,
            ns_per_op: send_ns / bodies.len() as f64,
        });
        eprintln!("  {name}: 16 msgs / {payload_bytes} B, {:.0} ns/msg", send_ns / 16.0);
    }

    MicroReport { schema: MICRO_SCHEMA_VERSION, cells, diff_speedup }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MicroReport {
        MicroReport {
            schema: MICRO_SCHEMA_VERSION,
            diff_speedup: 11.5,
            cells: vec![
                MicroCell {
                    name: "diff_full_64k".to_owned(),
                    items: 8,
                    bytes: 640,
                    ns_per_op: 5_000.0,
                },
                MicroCell {
                    name: "send_batched_16".to_owned(),
                    items: 16,
                    bytes: 4_000,
                    ns_per_op: 150.0,
                },
            ],
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = sample();
        let parsed = MicroReport::parse(&report.to_json_string()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn compare_flags_work_drift_but_ignores_timing() {
        let base = sample();
        let mut current = sample();
        current.cells[0].ns_per_op = 999_999.0; // timing may drift freely
        assert!(base.compare(&current, 0.25).is_empty());
        current.cells[0].items = 20; // work counts may not
        let violations = base.compare(&current, 0.25);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("diff_full_64k"));
    }

    #[test]
    fn compare_flags_missing_and_unknown_cells() {
        let base = sample();
        let mut current = sample();
        current.cells[1].name = "send_batched_32".to_owned();
        let violations = base.compare(&current, 0.25);
        assert_eq!(violations.len(), 2, "{violations:?}");
    }

    #[test]
    fn suite_work_metrics_are_deterministic() {
        let a = run_suite();
        let b = run_suite();
        let work = |r: &MicroReport| {
            r.cells.iter().map(|c| (c.name.clone(), c.items, c.bytes)).collect::<Vec<_>>()
        };
        assert_eq!(work(&a), work(&b));
        // The diff fixture writes 8 spans of 80 bytes, so the change-
        // proportional path has exactly that much work to do.
        let full = a.cells.iter().find(|c| c.name == "diff_full_64k").unwrap();
        assert_eq!((full.items, full.bytes), (8, 640));
    }

    #[test]
    fn suite_measures_a_real_tracked_speedup() {
        // Not asserting the CI floor here (unit tests run unoptimized);
        // just that the measurement is sane and positive.
        let report = run_suite();
        assert!(report.diff_speedup > 1.0, "speedup {}", report.diff_speedup);
    }
}
