//! The transport benchmark behind `perf net` (`BENCH_3.json`).
//!
//! One scenario, two transports: a hub-and-spokes echo exchange at 256
//! simulated peers, run over the event-driven reactor
//! ([`ReactorMesh::star`](sdso_net::reactor::ReactorMesh)) and over the
//! thread-per-peer `TcpMesh` star it replaces. Every spoke keeps a small
//! window of pings in flight to the hub; the hub echoes each one back;
//! the round-trip time of every ping lands in a log₂ histogram.
//!
//! What is gated, and how, follows the split the other baselines use:
//!
//! * **Work metrics** (`total_msgs`, `payload_bytes`) are exact counts —
//!   they drift only when the benchmark itself changes, and are gated
//!   ±tolerance against the committed baseline like `BENCH_0`–`2`.
//! * **`p99_us`** is a log₂-bucket bound, gated within one bucket of the
//!   committed baseline per transport (`BENCH_0` percentile semantics).
//! * **Throughput** is wall-clock and host-dependent, so the absolute
//!   number is informational; what `check` enforces fresh, on one host in
//!   one process, is the *ratio*: the reactor must sustain at least
//!   [`NET_PARITY_FLOOR`] × the thread-per-peer baseline's msgs/sec. That
//!   is the contract the reactor migration was sold on — one poll thread
//!   must not be slower than 256 reader threads.

use std::time::Instant;

use sdso_net::{Endpoint, Payload, SimSpan};

use crate::json::{obj, Json};

/// Bumped when the report layout changes incompatibly.
pub const NET_SCHEMA_VERSION: u64 = 1;

/// Minimum fresh-measured reactor/threaded sustained-throughput ratio the
/// check enforces (1.0 = exact parity; the margin absorbs scheduler
/// noise on loaded CI hosts without hiding a real regression).
pub const NET_PARITY_FLOOR: f64 = 0.9;

/// Spoke count the committed baseline is recorded at.
pub const NET_DEFAULT_SPOKES: usize = 256;

/// Pings each spoke exchanges with the hub.
pub const NET_DEFAULT_PINGS: u32 = 100;

/// Ping body size in bytes (fits one cache line with its header; the
/// exchange is syscall-bound, not bandwidth-bound, at this size).
const PING_BYTES: usize = 56;

/// Pings a spoke keeps in flight at once.
const WINDOW: u32 = 4;

/// Fresh-cluster repetitions per transport; the best run is reported
/// (min-of-N absorbs scheduler jitter, the same estimator the macro
/// suite's recorder-overhead measurement uses).
const NET_REPEATS: usize = 3;

/// One transport's result.
#[derive(Debug, Clone, PartialEq)]
pub struct NetCell {
    /// Transport name (`tcp-reactor` or `tcp`).
    pub transport: String,
    /// Application messages delivered cluster-wide (pings + echoes).
    /// Exact; gated.
    pub total_msgs: u64,
    /// Application payload bytes delivered cluster-wide. Exact; gated.
    pub payload_bytes: u64,
    /// Sustained delivered messages per wall-clock second. Informational
    /// (host-dependent); the reactor/threaded ratio is gated fresh.
    pub msgs_per_sec: f64,
    /// Median ping round-trip, log₂-bucket upper bound in microseconds.
    /// Informational.
    pub p50_us: u64,
    /// 99th-percentile ping round-trip, log₂-bucket upper bound in
    /// microseconds. Gated within one bucket.
    pub p99_us: u64,
}

/// A full transport benchmark report (`BENCH_3.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct NetReport {
    /// Schema version ([`NET_SCHEMA_VERSION`]).
    pub schema: u64,
    /// Spokes the exchange ran with (peers = spokes, plus the hub).
    pub spokes: u64,
    /// Pings per spoke.
    pub pings: u64,
    /// Reactor / threaded sustained-throughput ratio measured on the
    /// recording host. Recorded for the log; the check re-measures fresh.
    pub throughput_ratio: f64,
    /// One cell per transport.
    pub cells: Vec<NetCell>,
}

impl NetReport {
    /// Serializes the report as pretty-printed JSON.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                obj(vec![
                    ("transport", Json::Str(c.transport.clone())),
                    ("total_msgs", Json::Num(c.total_msgs as f64)),
                    ("payload_bytes", Json::Num(c.payload_bytes as f64)),
                    ("msgs_per_sec", Json::Num(c.msgs_per_sec)),
                    ("p50_us", Json::Num(c.p50_us as f64)),
                    ("p99_us", Json::Num(c.p99_us as f64)),
                ])
            })
            .collect();
        obj(vec![
            ("schema", Json::Num(self.schema as f64)),
            ("spokes", Json::Num(self.spokes as f64)),
            ("pings", Json::Num(self.pings as f64)),
            ("throughput_ratio", Json::Num(self.throughput_ratio)),
            ("cells", Json::Arr(cells)),
        ])
        .pretty()
    }

    /// Parses a report previously written by [`NetReport::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn parse(text: &str) -> Result<NetReport, String> {
        let root = Json::parse(text)?;
        let num = |key: &str| -> Result<f64, String> {
            root.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing numeric `{key}`"))
        };
        let schema = num("schema")? as u64;
        let spokes = num("spokes")? as u64;
        let pings = num("pings")? as u64;
        let throughput_ratio = num("throughput_ratio")?;
        let raw_cells = root
            .get("cells")
            .and_then(Json::as_array)
            .ok_or_else(|| "missing `cells` array".to_owned())?;
        let mut cells = Vec::with_capacity(raw_cells.len());
        for (i, c) in raw_cells.iter().enumerate() {
            let field = |key: &str| -> Result<f64, String> {
                c.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("cell {i}: missing numeric `{key}`"))
            };
            cells.push(NetCell {
                transport: c
                    .get("transport")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("cell {i}: missing `transport`"))?
                    .to_owned(),
                total_msgs: field("total_msgs")? as u64,
                payload_bytes: field("payload_bytes")? as u64,
                msgs_per_sec: field("msgs_per_sec")?,
                p50_us: field("p50_us")? as u64,
                p99_us: field("p99_us")? as u64,
            });
        }
        Ok(NetReport { schema, spokes, pings, throughput_ratio, cells })
    }

    /// Compares `current` against this baseline: exact work metrics within
    /// ±`tolerance` relative, p99 within one log₂ bucket, per transport;
    /// no cells may appear or vanish. The throughput parity floor is NOT
    /// checked here — it is re-measured fresh by `perf net check` (ratios
    /// travel across hosts, absolute wall numbers do not). Returns
    /// human-readable violations; empty means pass.
    #[must_use]
    pub fn compare(&self, current: &NetReport, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if self.schema != current.schema {
            violations.push(format!(
                "schema changed: baseline {} vs current {}",
                self.schema, current.schema
            ));
            return violations;
        }
        if self.spokes != current.spokes || self.pings != current.pings {
            violations.push(format!(
                "shape mismatch: baseline {} spokes × {} pings vs current {} × {}",
                self.spokes, self.pings, current.spokes, current.pings
            ));
            return violations;
        }
        for base in &self.cells {
            let Some(cur) = current.cells.iter().find(|c| c.transport == base.transport) else {
                violations.push(format!("[{}] cell missing from current run", base.transport));
                continue;
            };
            for (metric, b, c) in [
                ("total_msgs", base.total_msgs, cur.total_msgs),
                ("payload_bytes", base.payload_bytes, cur.payload_bytes),
            ] {
                if !within_rel(b as f64, c as f64, tolerance) {
                    violations.push(format!(
                        "[{}] {metric}: baseline {b} vs current {c} (>±{:.0}%)",
                        base.transport,
                        tolerance * 100.0
                    ));
                }
            }
            if !within_one_bucket(base.p99_us, cur.p99_us) {
                violations.push(format!(
                    "[{}] p99_us moved more than one log2 bucket: baseline {} vs current {}",
                    base.transport, base.p99_us, cur.p99_us
                ));
            }
        }
        for cur in &current.cells {
            if !self.cells.iter().any(|b| b.transport == cur.transport) {
                violations.push(format!(
                    "[{}] new cell not in baseline; re-record BENCH_3.json",
                    cur.transport
                ));
            }
        }
        violations
    }
}

/// `b` within ±`tol` relative of `a` (exact zeros must match).
fn within_rel(a: f64, b: f64, tol: f64) -> bool {
    if a == 0.0 {
        return b == 0.0;
    }
    ((b - a) / a).abs() <= tol
}

/// Log₂-bucket percentile bounds may legitimately land one bucket away.
fn within_one_bucket(baseline: u64, current: u64) -> bool {
    let (lo, hi) = if baseline <= current { (baseline, current) } else { (current, baseline) };
    if lo == 0 {
        return hi <= 1;
    }
    hi <= lo.saturating_mul(2).saturating_add(1)
}

/// Rounds `us` up to its log₂ bucket bound, matching the flight
/// recorder's histogram resolution so percentiles stay comparable with
/// the `BENCH_0` exchange histograms.
fn log2_bucket_bound(us: u64) -> u64 {
    if us <= 1 {
        return us;
    }
    u64::MAX >> us.leading_zeros()
}

/// Percentile over raw round-trip samples, reported as a log₂ bound.
fn percentile_us(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    log2_bucket_bound(sorted[rank.min(sorted.len() - 1)])
}

/// Runs the star echo exchange over already-built endpoints (`eps[0]` is
/// the hub) and summarizes it as a [`NetCell`].
fn run_star_echo<E: Endpoint + Send + 'static>(
    transport: &'static str,
    mut eps: Vec<E>,
    pings: u32,
) -> Result<NetCell, String> {
    let spokes = eps.len() - 1;
    let mut hub = eps.remove(0);
    let started = Instant::now();
    let handles: Vec<_> = eps
        .into_iter()
        .map(|mut ep| {
            std::thread::spawn(move || -> Result<(E, Vec<u64>), String> {
                let me = ep.node_id();
                let mut rtts = Vec::with_capacity(pings as usize);
                let mut sent_at = std::collections::VecDeque::with_capacity(WINDOW as usize);
                let mut sent = 0u32;
                let mut acked = 0u32;
                while acked < pings {
                    while sent < pings && sent - acked < WINDOW {
                        let mut body = vec![0u8; PING_BYTES];
                        body[..4].copy_from_slice(&sent.to_le_bytes());
                        sent_at.push_back(Instant::now());
                        ep.send(0, Payload::control(body))
                            .map_err(|e| format!("{transport} spoke {me} send: {e}"))?;
                        sent += 1;
                    }
                    let echo = ep
                        .recv_deadline(SimSpan::from_millis(30_000))
                        .map_err(|e| format!("{transport} spoke {me} recv: {e}"))?
                        .ok_or_else(|| format!("{transport} spoke {me} starved at {acked}"))?;
                    let t0: Instant = sent_at
                        .pop_front()
                        .ok_or_else(|| format!("{transport} spoke {me} echo with no ping"))?;
                    let mut seq = [0u8; 4];
                    seq.copy_from_slice(&echo.payload.bytes[..4]);
                    if u32::from_le_bytes(seq) != acked {
                        return Err(format!("{transport} spoke {me} echo out of order at {acked}"));
                    }
                    rtts.push(t0.elapsed().as_micros() as u64);
                    acked += 1;
                }
                Ok((ep, rtts))
            })
        })
        .collect();

    let total_pings = spokes as u64 * u64::from(pings);
    for _ in 0..total_pings {
        let ping = hub
            .recv_deadline(SimSpan::from_millis(30_000))
            .map_err(|e| format!("{transport} hub recv: {e}"))?
            .ok_or_else(|| format!("{transport} hub starved"))?;
        hub.send(ping.from, Payload::control(ping.payload.bytes))
            .map_err(|e| format!("{transport} hub echo: {e}"))?;
    }

    let mut rtts = Vec::with_capacity(total_pings as usize);
    let mut spoke_eps = Vec::with_capacity(spokes);
    for handle in handles {
        let (ep, spoke_rtts) =
            handle.join().map_err(|_| format!("{transport} spoke panicked"))??;
        rtts.extend(spoke_rtts);
        spoke_eps.push(ep);
    }
    let elapsed = started.elapsed();
    drop(spoke_eps);
    drop(hub);
    rtts.sort_unstable();
    // Pings + echoes, each delivered exactly once.
    let total_msgs = total_pings * 2;
    Ok(NetCell {
        transport: transport.to_owned(),
        total_msgs,
        payload_bytes: total_msgs * PING_BYTES as u64,
        msgs_per_sec: total_msgs as f64 / elapsed.as_secs_f64(),
        p50_us: percentile_us(&rtts, 50.0),
        p99_us: percentile_us(&rtts, 99.0),
    })
}

/// Runs the full suite — the reactor star and the thread-per-peer star,
/// same host, back to back — and assembles the report. Progress lines go
/// to stderr like the other suites'.
///
/// # Errors
///
/// Returns transport setup/run errors; on non-Linux hosts, an error that
/// the reactor transport is unavailable.
pub fn run_net_suite(spokes: usize, pings: u32) -> Result<NetReport, String> {
    let mut reactor = run_reactor_cell(spokes, pings)?;
    let mut threaded = {
        let eps = sdso_net::tcp::TcpMesh::star(spokes + 1).map_err(|e| format!("tcp star: {e}"))?;
        run_star_echo("tcp", eps, pings)?
    };
    for _ in 1..NET_REPEATS {
        let r = run_reactor_cell(spokes, pings)?;
        if r.msgs_per_sec > reactor.msgs_per_sec {
            reactor = r;
        }
        let eps = sdso_net::tcp::TcpMesh::star(spokes + 1).map_err(|e| format!("tcp star: {e}"))?;
        let t = run_star_echo("tcp", eps, pings)?;
        if t.msgs_per_sec > threaded.msgs_per_sec {
            threaded = t;
        }
    }
    eprintln!(
        "  tcp-reactor: {:>9.0} msgs/s, p50 {}us, p99 {}us (best of {NET_REPEATS})",
        reactor.msgs_per_sec, reactor.p50_us, reactor.p99_us
    );
    eprintln!(
        "  tcp        : {:>9.0} msgs/s, p50 {}us, p99 {}us (best of {NET_REPEATS})",
        threaded.msgs_per_sec, threaded.p50_us, threaded.p99_us
    );
    let throughput_ratio = reactor.msgs_per_sec / threaded.msgs_per_sec;
    eprintln!("  reactor/threaded throughput ratio: {throughput_ratio:.2}x");
    Ok(NetReport {
        schema: NET_SCHEMA_VERSION,
        spokes: spokes as u64,
        pings: u64::from(pings),
        throughput_ratio,
        cells: vec![reactor, threaded],
    })
}

#[cfg(target_os = "linux")]
fn run_reactor_cell(spokes: usize, pings: u32) -> Result<NetCell, String> {
    let eps = sdso_net::reactor::ReactorMesh::star(spokes + 1)
        .map_err(|e| format!("reactor star: {e}"))?;
    run_star_echo("tcp-reactor", eps, pings)
}

#[cfg(not(target_os = "linux"))]
fn run_reactor_cell(_spokes: usize, _pings: u32) -> Result<NetCell, String> {
    Err("the tcp-reactor transport requires Linux; `perf net` cannot run here".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> NetReport {
        NetReport {
            schema: NET_SCHEMA_VERSION,
            spokes: 4,
            pings: 10,
            throughput_ratio: 1.2,
            cells: vec![
                NetCell {
                    transport: "tcp-reactor".into(),
                    total_msgs: 80,
                    payload_bytes: 80 * PING_BYTES as u64,
                    msgs_per_sec: 5000.0,
                    p50_us: 127,
                    p99_us: 511,
                },
                NetCell {
                    transport: "tcp".into(),
                    total_msgs: 80,
                    payload_bytes: 80 * PING_BYTES as u64,
                    msgs_per_sec: 4000.0,
                    p50_us: 255,
                    p99_us: 1023,
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report();
        let parsed = NetReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn compare_accepts_identical_and_one_bucket_drift() {
        let base = report();
        let mut cur = report();
        assert!(base.compare(&cur, 0.25).is_empty());
        cur.cells[0].p99_us = 1023; // one bucket up from 511
        cur.cells[0].msgs_per_sec = 1.0; // informational: never gated here
        assert!(base.compare(&cur, 0.25).is_empty());
    }

    #[test]
    fn compare_flags_work_and_percentile_drift() {
        let base = report();
        let mut cur = report();
        cur.cells[1].total_msgs = 200;
        cur.cells[0].p99_us = 4095; // three buckets up
        let violations = base.compare(&cur, 0.25);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("total_msgs")));
        assert!(violations.iter().any(|v| v.contains("p99_us")));
    }

    #[test]
    fn compare_flags_shape_and_cell_set_changes() {
        let base = report();
        let mut wrong_shape = report();
        wrong_shape.spokes = 8;
        assert_eq!(base.compare(&wrong_shape, 0.25).len(), 1);
        let mut extra = report();
        extra.cells.push(NetCell {
            transport: "udp".into(),
            total_msgs: 1,
            payload_bytes: 1,
            msgs_per_sec: 1.0,
            p50_us: 1,
            p99_us: 1,
        });
        assert!(base.compare(&extra, 0.25).iter().any(|v| v.contains("new cell")));
    }

    #[test]
    fn log2_bounds_match_recorder_buckets() {
        assert_eq!(log2_bucket_bound(0), 0);
        assert_eq!(log2_bucket_bound(1), 1);
        assert_eq!(log2_bucket_bound(2), 3);
        assert_eq!(log2_bucket_bound(200), 255);
        assert_eq!(log2_bucket_bound(512), 1023);
        assert!(within_one_bucket(511, 1023));
        assert!(!within_one_bucket(511, 2047));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn small_star_suite_runs_end_to_end() {
        // A tiny shape keeps this a unit test; CI runs the full 256-spoke
        // shape via `perf net`.
        let report = run_net_suite(4, 10).unwrap();
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert_eq!(cell.total_msgs, 80);
            assert!(cell.msgs_per_sec > 0.0);
        }
        assert!(report.throughput_ratio > 0.0);
    }
}
