//! The recovery benchmark behind `perf crash` (`BENCH_5.json`).
//!
//! One crash schedule, the paper's four protocols: a 16-team game under
//! the default crash plan (one crash-and-restart in the first half, one
//! unrecovered crash in the second), run under the deterministic
//! virtual-time simulator. The restarted process recovers from its
//! write-ahead log, rejoins through the late-joiner snapshot path, and
//! must end the run holding the same world as every survivor.
//!
//! What is gated, and how:
//!
//! * **Work metrics** (WAL records replayed, cross-epoch drops, snapshot
//!   count, the virtual downtime) are exact under the simulator — they
//!   drift only when the recovery path changes — and are gated
//!   ±tolerance against the committed baseline like `BENCH_0`–`4`.
//! * **The recovery contract** is enforced *fresh* at both record and
//!   check time: every cell must converge across its final view, the
//!   restarted process must actually replay WAL records, and the
//!   measured unavailability window must stay under
//!   [`CRASH_DOWNTIME_CEILING_MICROS`] of virtual time.

use sdso_game::{Protocol, Scenario};
use sdso_harness::{crash_converged, default_crash_plan, run_crash_experiment};
use sdso_net::{FaultPlan, SimSpan};
use sdso_sim::NetworkModel;

use crate::json::{obj, Json};

/// Bumped when the report layout changes incompatibly.
pub const CRASH_SCHEMA_VERSION: u64 = 1;

/// Teams in the benchmark game (one process per team).
pub const CRASH_NODES: u16 = 16;

/// Run length in ticks. The default plan puts the crash at tick 9, the
/// restart at 18, and the permanent crash at 27 — a tail of live play
/// remains after every event, and the crash tick sits off the periodic
/// checkpoint boundary so the recovery genuinely replays WAL records
/// (a crash in the same tick as a checkpoint finds an empty log).
pub const CRASH_TICKS: u64 = 36;

/// Seed for the fault plan and tank placement (shared with the
/// `experiments crash` Ext. G tables so the 16-team rows line up
/// exactly).
pub const CRASH_SEED: u64 = 0x5D50_C4A5;

/// Ceiling on the restarted process's measured unavailability window, in
/// virtual microseconds — the span from abrupt death to the completed
/// snapshot rejoin. The scheduled absence is 8 ticks; the ceiling allows
/// the recovery machinery (WAL replay, view catch-up, snapshot transfer)
/// on top of that but fails the gate if rejoin ever drags past it.
pub const CRASH_DOWNTIME_CEILING_MICROS: u64 = 3_000_000;

/// One protocol's recovery result under the fixed crash schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashCell {
    /// Protocol name (as printed by [`Protocol::name`]).
    pub protocol: String,
    /// Completed WAL recoveries across the cluster. Exact; gated (and
    /// must equal the plan's restart count fresh).
    pub recoveries: u64,
    /// WAL records replayed by restarted processes. Exact; gated (and
    /// must be non-zero fresh).
    pub wal_replayed: u64,
    /// Summed unavailability window in virtual microseconds — death to
    /// completed rejoin. Exact; gated ±tolerance AND against the fresh
    /// ceiling.
    pub downtime_micros: u64,
    /// Stale-epoch frames dropped at the exchange boundary across the
    /// cluster. Exact; gated.
    pub cross_epoch: u64,
    /// State snapshots donated to (re)joining processes. Exact; gated.
    pub snapshots: u64,
    /// Whether every member of the final view — the restarted process
    /// included — held the identical final world. Gated fresh: a
    /// baseline with a diverged cell is never recorded.
    pub converged: bool,
}

/// A full recovery benchmark report (`BENCH_5.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct CrashReport {
    /// Schema version ([`CRASH_SCHEMA_VERSION`]).
    pub schema: u64,
    /// Teams in the game.
    pub nodes: u64,
    /// Run length in ticks.
    pub ticks: u64,
    /// One cell per protocol, in [`Protocol::PAPER`] order.
    pub cells: Vec<CrashCell>,
}

impl CrashReport {
    /// Serializes the report as pretty-printed JSON.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                obj(vec![
                    ("protocol", Json::Str(c.protocol.clone())),
                    ("recoveries", Json::Num(c.recoveries as f64)),
                    ("wal_replayed", Json::Num(c.wal_replayed as f64)),
                    ("downtime_micros", Json::Num(c.downtime_micros as f64)),
                    ("cross_epoch", Json::Num(c.cross_epoch as f64)),
                    ("snapshots", Json::Num(c.snapshots as f64)),
                    ("converged", Json::Bool(c.converged)),
                ])
            })
            .collect();
        obj(vec![
            ("schema", Json::Num(self.schema as f64)),
            ("nodes", Json::Num(self.nodes as f64)),
            ("ticks", Json::Num(self.ticks as f64)),
            ("cells", Json::Arr(cells)),
        ])
        .pretty()
    }

    /// Parses a report previously written by
    /// [`CrashReport::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn parse(text: &str) -> Result<CrashReport, String> {
        let root = Json::parse(text)?;
        let top = |key: &str| -> Result<u64, String> {
            root.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing numeric `{key}`"))
        };
        let schema = top("schema")?;
        let nodes = top("nodes")?;
        let ticks = top("ticks")?;
        let raw_cells = root
            .get("cells")
            .and_then(Json::as_array)
            .ok_or_else(|| "missing `cells` array".to_owned())?;
        let mut cells = Vec::with_capacity(raw_cells.len());
        for (i, c) in raw_cells.iter().enumerate() {
            let num = |key: &str| -> Result<u64, String> {
                c.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("cell {i}: missing numeric `{key}`"))
            };
            cells.push(CrashCell {
                protocol: c
                    .get("protocol")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("cell {i}: missing string `protocol`"))?
                    .to_owned(),
                recoveries: num("recoveries")?,
                wal_replayed: num("wal_replayed")?,
                downtime_micros: num("downtime_micros")?,
                cross_epoch: num("cross_epoch")?,
                snapshots: num("snapshots")?,
                converged: c
                    .get("converged")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| format!("cell {i}: missing boolean `converged`"))?,
            });
        }
        Ok(CrashReport { schema, nodes, ticks, cells })
    }

    /// Compares `current` against this baseline: every work metric
    /// within ±`tolerance` relative, per protocol; no cells may appear
    /// or vanish; the shape must match exactly. The recovery contract
    /// (convergence, replay, the downtime ceiling) is NOT checked here —
    /// `perf crash check` enforces it fresh on the current run. Returns
    /// human-readable violations; empty means pass.
    #[must_use]
    pub fn compare(&self, current: &CrashReport, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if self.schema != current.schema {
            violations.push(format!(
                "schema changed: baseline {} vs current {}",
                self.schema, current.schema
            ));
            return violations;
        }
        if self.nodes != current.nodes || self.ticks != current.ticks {
            violations.push(format!(
                "shape mismatch: baseline {} teams x {} ticks vs current {} x {}",
                self.nodes, self.ticks, current.nodes, current.ticks
            ));
            return violations;
        }
        for base in &self.cells {
            let Some(cur) = current.cells.iter().find(|c| c.protocol == base.protocol) else {
                violations.push(format!("[{}] cell missing from current run", base.protocol));
                continue;
            };
            for (metric, b, c) in [
                ("recoveries", base.recoveries, cur.recoveries),
                ("wal_replayed", base.wal_replayed, cur.wal_replayed),
                ("downtime_micros", base.downtime_micros, cur.downtime_micros),
                ("cross_epoch", base.cross_epoch, cur.cross_epoch),
                ("snapshots", base.snapshots, cur.snapshots),
            ] {
                if !within_rel(b as f64, c as f64, tolerance) {
                    violations.push(format!(
                        "[{}] {metric}: baseline {b} vs current {c} (>±{:.0}%)",
                        base.protocol,
                        tolerance * 100.0
                    ));
                }
            }
        }
        for cur in &current.cells {
            if !self.cells.iter().any(|b| b.protocol == cur.protocol) {
                violations.push(format!(
                    "[{}] new cell not in baseline; re-record BENCH_5.json",
                    cur.protocol
                ));
            }
        }
        violations
    }

    /// Enforces the recovery contract on this (freshly measured) report:
    /// every cell converged, exactly one completed recovery (the plan's
    /// single restart), a non-empty WAL replay behind it, and an
    /// unavailability window under the ceiling. Returns violations;
    /// empty means the contract holds.
    #[must_use]
    pub fn contract_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for cell in &self.cells {
            if !cell.converged {
                violations.push(format!(
                    "[{}] the final view did not converge after recovery",
                    cell.protocol
                ));
            }
            if cell.recoveries != 1 {
                violations.push(format!(
                    "[{}] {} recoveries completed; the plan schedules exactly 1 restart",
                    cell.protocol, cell.recoveries
                ));
            }
            if cell.wal_replayed == 0 {
                violations.push(format!(
                    "[{}] the restart replayed no WAL records — recovery carried no state",
                    cell.protocol
                ));
            }
            if cell.downtime_micros == 0 || cell.downtime_micros > CRASH_DOWNTIME_CEILING_MICROS {
                violations.push(format!(
                    "[{}] unavailability window {}us outside (0, {CRASH_DOWNTIME_CEILING_MICROS}]",
                    cell.protocol, cell.downtime_micros
                ));
            }
        }
        violations
    }
}

/// `b` within ±`tol` relative of `a` (exact zeros must match).
fn within_rel(a: f64, b: f64, tol: f64) -> bool {
    if a == 0.0 {
        return b == 0.0;
    }
    ((b - a) / a).abs() <= tol
}

/// The benchmark's fixed fault plan.
#[must_use]
pub fn crash_bench_plan() -> FaultPlan {
    default_crash_plan(CRASH_SEED, usize::from(CRASH_NODES), CRASH_TICKS)
}

/// Runs the full suite — the paper's four protocols under the fixed
/// crash schedule — and assembles the report. Progress lines go to
/// stderr like the other suites'.
///
/// # Errors
///
/// Returns simulator errors from any protocol's run.
pub fn run_crash_suite() -> Result<CrashReport, String> {
    let scenario = Scenario::paper(CRASH_NODES, 1).with_ticks(CRASH_TICKS).with_seed(CRASH_SEED);
    let faults = crash_bench_plan();
    let mut cells = Vec::with_capacity(Protocol::PAPER.len());
    for protocol in Protocol::PAPER {
        let t0 = std::time::Instant::now();
        let summary =
            run_crash_experiment(&scenario, protocol, NetworkModel::paper_testbed(), &faults)
                .map_err(|e| format!("{protocol}: {e}"))?;
        let downtime = summary.per_node.iter().fold(SimSpan::ZERO, |acc, s| acc + s.recovery_time);
        let cell = CrashCell {
            protocol: protocol.name().to_owned(),
            recoveries: summary.per_node.iter().map(|s| s.recoveries).sum(),
            wal_replayed: summary.per_node.iter().map(|s| s.wal_replayed).sum(),
            downtime_micros: downtime.as_micros(),
            cross_epoch: summary.per_node.iter().map(|s| s.dso.cross_epoch_dropped).sum(),
            snapshots: summary.per_node.iter().map(|s| s.dso.snapshots_sent).sum(),
            converged: crash_converged(&summary, &scenario, &faults),
        };
        eprintln!(
            "  {protocol:<6}: {} recovery, {} WAL records, down {:.2}ms, \
             {} snapshots, converged={} [{:.1?} wall]",
            cell.recoveries,
            cell.wal_replayed,
            cell.downtime_micros as f64 / 1000.0,
            cell.snapshots,
            cell.converged,
            t0.elapsed()
        );
        cells.push(cell);
    }
    Ok(CrashReport {
        schema: CRASH_SCHEMA_VERSION,
        nodes: u64::from(CRASH_NODES),
        ticks: CRASH_TICKS,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CrashReport {
        CrashReport {
            schema: CRASH_SCHEMA_VERSION,
            nodes: 16,
            ticks: 32,
            cells: vec![
                CrashCell {
                    protocol: "BSYNC".to_owned(),
                    recoveries: 1,
                    wal_replayed: 20,
                    downtime_micros: 900_000,
                    cross_epoch: 4,
                    snapshots: 1,
                    converged: true,
                },
                CrashCell {
                    protocol: "EC".to_owned(),
                    recoveries: 1,
                    wal_replayed: 18,
                    downtime_micros: 1_200_000,
                    cross_epoch: 0,
                    snapshots: 1,
                    converged: true,
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report();
        let parsed = CrashReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn compare_accepts_identical_and_flags_drift() {
        let base = report();
        assert!(base.compare(&report(), 0.05).is_empty());
        let mut cur = report();
        cur.cells[0].wal_replayed *= 3;
        cur.cells[1].downtime_micros *= 2;
        let violations = base.compare(&cur, 0.05);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("wal_replayed")));
        assert!(violations.iter().any(|v| v.contains("downtime_micros")));
    }

    #[test]
    fn compare_flags_shape_and_cell_set_changes() {
        let base = report();
        let mut wrong = report();
        wrong.ticks = 64;
        assert_eq!(base.compare(&wrong, 0.05).len(), 1);
        let mut extra = report();
        extra.cells.push(CrashCell { protocol: "MSYNC".to_owned(), ..report().cells[0].clone() });
        assert!(extra.cells.len() > base.cells.len());
        assert!(base.compare(&extra, 0.05).iter().any(|v| v.contains("new cell")));
    }

    #[test]
    fn contract_enforces_recovery_and_the_downtime_ceiling() {
        assert!(report().contract_violations().is_empty());
        let mut diverged = report();
        diverged.cells[0].converged = false;
        assert!(diverged.contract_violations().iter().any(|v| v.contains("converge")));
        let mut stuck = report();
        stuck.cells[1].recoveries = 0;
        assert!(stuck.contract_violations().iter().any(|v| v.contains("recoveries")));
        let mut empty = report();
        empty.cells[0].wal_replayed = 0;
        assert!(empty.contract_violations().iter().any(|v| v.contains("WAL")));
        let mut slow = report();
        slow.cells[1].downtime_micros = CRASH_DOWNTIME_CEILING_MICROS + 1;
        assert!(slow.contract_violations().iter().any(|v| v.contains("unavailability")));
    }

    #[test]
    fn bench_plan_schedules_one_restart_and_one_permanent_crash() {
        let plan = crash_bench_plan();
        assert_eq!(plan.crashes.len(), 2);
        let restarts = plan.crashes.iter().filter(|c| c.restart_tick.is_some()).count();
        assert_eq!(restarts, 1);
    }
}
