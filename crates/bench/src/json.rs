//! A minimal JSON value, writer and recursive-descent parser.
//!
//! The perf-regression baseline (`BENCH_<k>.json`) must be written and
//! read back without external dependencies (the workspace builds
//! offline), so this module implements the small JSON subset the
//! baseline needs: objects, arrays, strings with the standard escapes,
//! f64 numbers, booleans and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) so output is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number value as u64 (truncating), if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and sorted object keys.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // Shortest round-trip repr; JSON has no Infinity/NaN.
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

/// Convenience: an object from key/value pairs.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number {text:?} at {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        // Surrogate pairs are not needed for baseline keys;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty by match");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        members.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = obj(vec![
            ("schema", Json::Num(1.0)),
            ("name", Json::Str("perf \"baseline\"\n".to_owned())),
            (
                "cells",
                Json::Arr(vec![
                    obj(vec![("protocol", Json::Str("EC".into())), ("n", Json::Num(16.0))]),
                    Json::Null,
                    Json::Bool(true),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(BTreeMap::new())),
            ("neg", Json::Num(-0.0625)),
        ]);
        let text = doc.pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parses_numbers_in_all_forms() {
        let v = Json::parse("[0, -1, 3.5, 1e3, 2.5E-2]").unwrap();
        let nums: Vec<f64> = v.as_array().unwrap().iter().map(|j| j.as_f64().unwrap()).collect();
        assert_eq!(nums, vec![0.0, -1.0, 3.5, 1000.0, 0.025]);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "tab\there \"quoted\" back\\slash\nnewline \u{1}ctrl";
        let doc = Json::Str(s.to_owned());
        assert_eq!(Json::parse(&doc.pretty()).unwrap().as_str().unwrap(), s);
    }
}
