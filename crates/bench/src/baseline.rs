//! The perf-regression baseline: a schema-versioned summary of a fixed
//! scenario matrix, written as `BENCH_<k>.json` at the repository root
//! and compared against fresh runs by `cargo run -p sdso-bench --bin
//! perf -- check`.
//!
//! Everything compared here is produced by the *deterministic* virtual-
//! time simulator — seconds are simulated seconds, message counts are
//! exact — so the configurable tolerance only absorbs intentional
//! protocol changes, not host noise. The one wall-clock figure (the
//! flight-recorder overhead) is recorded for information and never
//! gated.

use crate::json::{obj, Json};

/// Version of the `BENCH_<k>.json` schema; bump when fields change.
pub const SCHEMA_VERSION: u64 = 1;

/// The fixed scenario matrix: the paper's four protocols, the extremes
/// of its process-count axis, and both sensing ranges.
pub const MATRIX_NODES: [u16; 2] = [2, 16];
/// Sensing ranges of the matrix (the paper's left/right graph columns).
pub const MATRIX_RANGES: [u16; 2] = [1, 3];

/// One cell of the matrix: a (protocol, nodes, range) configuration and
/// the metrics the regression gate compares.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCell {
    /// Protocol display name (`EC`, `BSYNC`, `MSYNC`, `MSYNC2`).
    pub protocol: String,
    /// Process count.
    pub nodes: u16,
    /// Sensing range.
    pub range: u16,
    /// Mean simulated seconds per object modification (Figure 5's
    /// metric) — deterministic.
    pub secs_per_mod: f64,
    /// Total messages across the cluster — deterministic.
    pub total_messages: u64,
    /// Data messages only — deterministic.
    pub data_messages: u64,
    /// p50 of the per-exchange latency histogram, microseconds
    /// (log₂-bucket upper bound; 0 for EC, which never exchanges).
    pub exchange_p50_us: u64,
    /// p99 of the per-exchange latency histogram, microseconds.
    pub exchange_p99_us: u64,
}

impl BenchCell {
    fn to_json(&self) -> Json {
        obj(vec![
            ("protocol", Json::Str(self.protocol.clone())),
            ("nodes", Json::Num(f64::from(self.nodes))),
            ("range", Json::Num(f64::from(self.range))),
            ("secs_per_mod", Json::Num(self.secs_per_mod)),
            ("total_messages", Json::Num(self.total_messages as f64)),
            ("data_messages", Json::Num(self.data_messages as f64)),
            ("exchange_p50_us", Json::Num(self.exchange_p50_us as f64)),
            ("exchange_p99_us", Json::Num(self.exchange_p99_us as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<BenchCell, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("cell missing {k:?}"));
        Ok(BenchCell {
            protocol: field("protocol")?.as_str().ok_or("protocol not a string")?.to_owned(),
            nodes: field("nodes")?.as_u64().ok_or("nodes not a number")? as u16,
            range: field("range")?.as_u64().ok_or("range not a number")? as u16,
            secs_per_mod: field("secs_per_mod")?.as_f64().ok_or("secs_per_mod not a number")?,
            total_messages: field("total_messages")?.as_u64().ok_or("total_messages")?,
            data_messages: field("data_messages")?.as_u64().ok_or("data_messages")?,
            exchange_p50_us: field("exchange_p50_us")?.as_u64().ok_or("exchange_p50_us")?,
            exchange_p99_us: field("exchange_p99_us")?.as_u64().ok_or("exchange_p99_us")?,
        })
    }

    /// The `(protocol, nodes, range)` identity of this cell.
    pub fn key(&self) -> (String, u16, u16) {
        (self.protocol.clone(), self.nodes, self.range)
    }
}

/// A full baseline document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`] when written by this build).
    pub schema: u64,
    /// Iterations per process used for every cell.
    pub ticks: u64,
    /// Placement seed used for every cell.
    pub seed: u64,
    /// One entry per matrix cell.
    pub cells: Vec<BenchCell>,
    /// Flight-recorder overhead at counters-only mode, percent of the
    /// traced run's wall time over an untraced run (min-of-N). Wall
    /// clock, host-dependent: informational only, never gated.
    pub recorder_overhead_pct: f64,
}

impl BenchReport {
    /// Serializes the report as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        obj(vec![
            ("schema", Json::Num(self.schema as f64)),
            ("ticks", Json::Num(self.ticks as f64)),
            ("seed", Json::Num(self.seed as f64)),
            ("cells", Json::Arr(self.cells.iter().map(BenchCell::to_json).collect())),
            ("recorder_overhead_pct", Json::Num(self.recorder_overhead_pct)),
        ])
        .pretty()
    }

    /// Parses a report written by [`BenchReport::to_json_string`].
    ///
    /// # Errors
    ///
    /// Fails on JSON syntax errors, missing fields, or an unknown
    /// schema version.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let doc = Json::parse(text)?;
        let schema = doc.get("schema").and_then(Json::as_u64).ok_or("missing schema")?;
        if schema != SCHEMA_VERSION {
            return Err(format!("unsupported schema {schema} (this build reads {SCHEMA_VERSION})"));
        }
        let cells = doc
            .get("cells")
            .and_then(Json::as_array)
            .ok_or("missing cells")?
            .iter()
            .map(BenchCell::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            schema,
            ticks: doc.get("ticks").and_then(Json::as_u64).ok_or("missing ticks")?,
            seed: doc.get("seed").and_then(Json::as_u64).ok_or("missing seed")?,
            cells,
            recorder_overhead_pct: doc
                .get("recorder_overhead_pct")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        })
    }

    /// Compares `current` against this baseline. Deterministic scalar
    /// metrics (`secs_per_mod`, message counts) must agree within
    /// `tolerance` (relative, e.g. `0.25` = ±25%); histogram
    /// percentiles are log₂-bucket bounds and may shift by at most one
    /// bucket (a factor of two) in either direction. Returns one
    /// human-readable violation per failed check; empty means pass.
    pub fn compare(&self, current: &BenchReport, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if self.ticks != current.ticks {
            violations.push(format!(
                "tick count mismatch: baseline {} vs current {} — rerun with --ticks {}",
                self.ticks, current.ticks, self.ticks
            ));
            return violations;
        }
        for base in &self.cells {
            let Some(cur) = current.cells.iter().find(|c| c.key() == base.key()) else {
                violations.push(format!(
                    "cell {} n={} range={} missing from current run",
                    base.protocol, base.nodes, base.range
                ));
                continue;
            };
            let cell = format!("{} n={} range={}", base.protocol, base.nodes, base.range);
            let mut check_rel = |name: &str, b: f64, c: f64| {
                if !within_rel(b, c, tolerance) {
                    violations.push(format!(
                        "{cell}: {name} drifted beyond ±{:.0}%: baseline {b} vs current {c}",
                        tolerance * 100.0
                    ));
                }
            };
            check_rel("secs_per_mod", base.secs_per_mod, cur.secs_per_mod);
            check_rel("total_messages", base.total_messages as f64, cur.total_messages as f64);
            check_rel("data_messages", base.data_messages as f64, cur.data_messages as f64);
            for (name, b, c) in [
                ("exchange_p50_us", base.exchange_p50_us, cur.exchange_p50_us),
                ("exchange_p99_us", base.exchange_p99_us, cur.exchange_p99_us),
            ] {
                if !within_one_bucket(b, c) {
                    violations.push(format!(
                        "{cell}: {name} moved more than one log2 bucket: \
                         baseline {b} vs current {c}"
                    ));
                }
            }
        }
        for cur in &current.cells {
            if !self.cells.iter().any(|b| b.key() == cur.key()) {
                violations.push(format!(
                    "cell {} n={} range={} not in baseline (re-record it)",
                    cur.protocol, cur.nodes, cur.range
                ));
            }
        }
        violations
    }
}

fn within_rel(baseline: f64, current: f64, tolerance: f64) -> bool {
    if baseline == 0.0 {
        return current == 0.0;
    }
    ((current - baseline) / baseline).abs() <= tolerance
}

/// Log₂-bucket percentile bounds may legitimately land one bucket away;
/// anything further is a real shift.
fn within_one_bucket(baseline: u64, current: u64) -> bool {
    let (lo, hi) = if baseline <= current { (baseline, current) } else { (current, baseline) };
    if lo == 0 {
        // Bucket 0 neighbours bucket 1 (upper bound 1).
        return hi <= 1;
    }
    hi <= lo.saturating_mul(2).saturating_add(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(protocol: &str, nodes: u16, msgs: u64) -> BenchCell {
        BenchCell {
            protocol: protocol.to_owned(),
            nodes,
            range: 1,
            secs_per_mod: 0.004,
            total_messages: msgs,
            data_messages: msgs / 2,
            exchange_p50_us: 1023,
            exchange_p99_us: 4095,
        }
    }

    fn report(cells: Vec<BenchCell>) -> BenchReport {
        BenchReport {
            schema: SCHEMA_VERSION,
            ticks: 120,
            seed: 0x5D50_1997,
            cells,
            recorder_overhead_pct: 1.5,
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = report(vec![cell("EC", 2, 100), cell("MSYNC2", 16, 4000)]);
        let parsed = BenchReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(vec![cell("BSYNC", 2, 500)]);
        assert!(r.compare(&r.clone(), 0.25).is_empty());
    }

    #[test]
    fn drift_beyond_tolerance_is_flagged() {
        let base = report(vec![cell("BSYNC", 2, 1000)]);
        let mut cur = base.clone();
        cur.cells[0].total_messages = 1500; // +50% > 25%
        let violations = base.compare(&cur, 0.25);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("total_messages"));
        // Within tolerance passes.
        cur.cells[0].total_messages = 1200;
        assert!(base.compare(&cur, 0.25).is_empty());
    }

    #[test]
    fn missing_and_extra_cells_are_flagged() {
        let base = report(vec![cell("EC", 2, 100), cell("MSYNC", 2, 200)]);
        let cur = report(vec![cell("EC", 2, 100), cell("MSYNC2", 2, 200)]);
        let violations = base.compare(&cur, 0.25);
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().any(|v| v.contains("missing from current")));
        assert!(violations.iter().any(|v| v.contains("not in baseline")));
    }

    #[test]
    fn percentiles_tolerate_one_bucket_but_not_two() {
        let base = report(vec![cell("MSYNC", 2, 100)]);
        let mut cur = base.clone();
        cur.cells[0].exchange_p99_us = 16383; // two buckets up from 4095
        assert_eq!(base.compare(&cur, 0.25).len(), 1);
        cur.cells[0].exchange_p99_us = 8191; // one bucket up
        assert!(base.compare(&cur, 0.25).is_empty());
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let text = report(vec![]).to_json_string().replace("\"schema\": 1", "\"schema\": 99");
        assert!(BenchReport::parse(&text).unwrap_err().contains("schema"));
    }

    #[test]
    fn tick_mismatch_short_circuits() {
        let base = report(vec![cell("EC", 2, 100)]);
        let mut cur = base.clone();
        cur.ticks = 40;
        let violations = base.compare(&cur, 0.25);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("tick count"));
    }
}
