//! The scale benchmark behind `perf shard` (`BENCH_4.json`).
//!
//! Two cluster sizes, two protocols: the region-sharded MSYNC2-SHARD
//! against full-mesh MSYNC2 on [`Scenario::scaled`] grids at 64 and 256
//! nodes, run under the deterministic virtual-time simulator. The gated
//! metric is the paper-extension scaling contract: sharded per-node
//! *live* bytes/tick as a fraction of full-mesh, measured in a
//! steady-state window (see [`sdso_harness::ShardWindow`] — the
//! cumulative short-run ratio flatters the mesh, whose far-pair trail
//! debt only ships late in a run).
//!
//! What is gated, and how:
//!
//! * **Work metrics** (steady bytes/node-tick per protocol, the
//!   exchange ratio, the suppressed-diff count) are exact under the
//!   virtual-time simulator — they drift only when the protocols
//!   change — and are gated ±tolerance against the committed baseline
//!   like `BENCH_0`–`3`.
//! * **Ratio ceilings** are the contract itself, enforced *fresh* at
//!   both record and check time: the 256-node steady traffic ratio must
//!   stay at or below [`SHARD_RATIO_CEILING_256`] (the flagship ≤25%
//!   scale claim), the 64-node one below [`SHARD_RATIO_CEILING_64`].
//! * **Sub-linear growth**: quadrupling the cluster (64 → 256) must not
//!   quadruple sharded per-node traffic — the growth factor is capped
//!   fresh at [`SHARD_GROWTH_CAP`], while the mesh's same factor is
//!   reported for contrast.

use sdso_harness::{run_shard_window, ShardWindow};
use sdso_sim::NetworkModel;

use crate::json::{obj, Json};

/// Bumped when the report layout changes incompatibly.
pub const SHARD_SCHEMA_VERSION: u64 = 1;

/// Flagship ceiling: at 256 nodes, sharded steady bytes/node-tick must
/// be at most this fraction of full-mesh.
pub const SHARD_RATIO_CEILING_256: f64 = 0.25;

/// Ceiling at 64 nodes. Looser than the 256-node one: with fewer nodes
/// the interest sets cover a larger fraction of the grid, so sharding
/// buys less — the contract is that the ratio *improves* with scale.
/// (Measured steady ratio ~0.50 at the recorded shape.)
pub const SHARD_RATIO_CEILING_64: f64 = 0.55;

/// Cap on sharded steady bytes/node-tick growth across the 64 → 256
/// step (a 4× cluster). Full-mesh traffic grows roughly with the
/// cluster; O(interest) traffic must grow far slower.
pub const SHARD_GROWTH_CAP: f64 = 2.5;

/// The benchmark shapes: `(nodes, warmup ticks, full ticks)`. The
/// 256-node window starts at 48 ticks — past the warmup transient where
/// the mesh's far pairs have not yet come due — and 96 ticks keeps the
/// pairing affordable on a CI runner while reproducing the longer-window
/// ratio to within a point.
pub const SHARD_SHAPES: &[(u16, u64, u64)] = &[(64, 12, 60), (256, 48, 96)];

/// One cluster size's result.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCell {
    /// Cluster size (one team per node).
    pub nodes: u64,
    /// Warmup run length in ticks (excluded from the steady window).
    pub warmup: u64,
    /// Full run length in ticks.
    pub ticks: u64,
    /// Full-mesh MSYNC2 live bytes/node-tick in the steady window.
    /// Exact; gated.
    pub mesh_bytes_per_node_tick: f64,
    /// Sharded MSYNC2-SHARD live bytes/node-tick in the steady window.
    /// Exact; gated.
    pub sharded_bytes_per_node_tick: f64,
    /// Sharded / mesh steady rate — the contract metric. Gated fresh
    /// against the per-size ceiling and ±tolerance against baseline.
    pub traffic_ratio: f64,
    /// Sharded / mesh live exchanges per node-tick over the full run.
    /// Exact; gated.
    pub exchange_ratio: f64,
    /// Diffs the interest router held back from live exchanges over the
    /// full run. Exact; gated (and must be non-zero fresh).
    pub suppressed: u64,
}

/// A full scale benchmark report (`BENCH_4.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Schema version ([`SHARD_SCHEMA_VERSION`]).
    pub schema: u64,
    /// One cell per cluster size, ascending.
    pub cells: Vec<ShardCell>,
}

impl ShardReport {
    /// Serializes the report as pretty-printed JSON.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                obj(vec![
                    ("nodes", Json::Num(c.nodes as f64)),
                    ("warmup", Json::Num(c.warmup as f64)),
                    ("ticks", Json::Num(c.ticks as f64)),
                    ("mesh_bytes_per_node_tick", Json::Num(c.mesh_bytes_per_node_tick)),
                    ("sharded_bytes_per_node_tick", Json::Num(c.sharded_bytes_per_node_tick)),
                    ("traffic_ratio", Json::Num(c.traffic_ratio)),
                    ("exchange_ratio", Json::Num(c.exchange_ratio)),
                    ("suppressed", Json::Num(c.suppressed as f64)),
                ])
            })
            .collect();
        obj(vec![("schema", Json::Num(self.schema as f64)), ("cells", Json::Arr(cells))]).pretty()
    }

    /// Parses a report previously written by
    /// [`ShardReport::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn parse(text: &str) -> Result<ShardReport, String> {
        let root = Json::parse(text)?;
        let schema = root
            .get("schema")
            .and_then(Json::as_f64)
            .ok_or_else(|| "missing numeric `schema`".to_owned())? as u64;
        let raw_cells = root
            .get("cells")
            .and_then(Json::as_array)
            .ok_or_else(|| "missing `cells` array".to_owned())?;
        let mut cells = Vec::with_capacity(raw_cells.len());
        for (i, c) in raw_cells.iter().enumerate() {
            let field = |key: &str| -> Result<f64, String> {
                c.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("cell {i}: missing numeric `{key}`"))
            };
            cells.push(ShardCell {
                nodes: field("nodes")? as u64,
                warmup: field("warmup")? as u64,
                ticks: field("ticks")? as u64,
                mesh_bytes_per_node_tick: field("mesh_bytes_per_node_tick")?,
                sharded_bytes_per_node_tick: field("sharded_bytes_per_node_tick")?,
                traffic_ratio: field("traffic_ratio")?,
                exchange_ratio: field("exchange_ratio")?,
                suppressed: field("suppressed")? as u64,
            });
        }
        Ok(ShardReport { schema, cells })
    }

    /// Compares `current` against this baseline: every work metric
    /// within ±`tolerance` relative, per cluster size; no cells may
    /// appear or vanish; shapes must match exactly. The ratio ceilings
    /// and the growth cap are NOT checked here — `perf shard check`
    /// enforces them fresh on the current run (the contract must hold
    /// outright, not merely not-drift). Returns human-readable
    /// violations; empty means pass.
    #[must_use]
    pub fn compare(&self, current: &ShardReport, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if self.schema != current.schema {
            violations.push(format!(
                "schema changed: baseline {} vs current {}",
                self.schema, current.schema
            ));
            return violations;
        }
        for base in &self.cells {
            let Some(cur) = current.cells.iter().find(|c| c.nodes == base.nodes) else {
                violations.push(format!("[n={}] cell missing from current run", base.nodes));
                continue;
            };
            if base.warmup != cur.warmup || base.ticks != cur.ticks {
                violations.push(format!(
                    "[n={}] shape mismatch: baseline {}..{} ticks vs current {}..{}",
                    base.nodes, base.warmup, base.ticks, cur.warmup, cur.ticks
                ));
                continue;
            }
            for (metric, b, c) in [
                (
                    "mesh_bytes_per_node_tick",
                    base.mesh_bytes_per_node_tick,
                    cur.mesh_bytes_per_node_tick,
                ),
                (
                    "sharded_bytes_per_node_tick",
                    base.sharded_bytes_per_node_tick,
                    cur.sharded_bytes_per_node_tick,
                ),
                ("traffic_ratio", base.traffic_ratio, cur.traffic_ratio),
                ("exchange_ratio", base.exchange_ratio, cur.exchange_ratio),
                ("suppressed", base.suppressed as f64, cur.suppressed as f64),
            ] {
                if !within_rel(b, c, tolerance) {
                    violations.push(format!(
                        "[n={}] {metric}: baseline {b:.4} vs current {c:.4} (>±{:.0}%)",
                        base.nodes,
                        tolerance * 100.0
                    ));
                }
            }
        }
        for cur in &current.cells {
            if !self.cells.iter().any(|b| b.nodes == cur.nodes) {
                violations.push(format!(
                    "[n={}] new cell not in baseline; re-record BENCH_4.json",
                    cur.nodes
                ));
            }
        }
        violations
    }

    /// Enforces the scale contract on this (freshly measured) report:
    /// per-size ratio ceilings, non-zero suppression, and the sub-linear
    /// growth cap across the 64 → 256 step. Returns violations; empty
    /// means the contract holds.
    #[must_use]
    pub fn contract_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for cell in &self.cells {
            let ceiling = match cell.nodes {
                64 => SHARD_RATIO_CEILING_64,
                256 => SHARD_RATIO_CEILING_256,
                _ => continue,
            };
            if cell.traffic_ratio > ceiling {
                violations.push(format!(
                    "[n={}] steady traffic ratio {:.4} exceeds the {ceiling} ceiling",
                    cell.nodes, cell.traffic_ratio
                ));
            }
            if cell.suppressed == 0 {
                violations.push(format!(
                    "[n={}] the interest router suppressed nothing — routing is inert",
                    cell.nodes
                ));
            }
        }
        if let (Some(small), Some(large)) =
            (self.cells.iter().find(|c| c.nodes == 64), self.cells.iter().find(|c| c.nodes == 256))
        {
            if small.sharded_bytes_per_node_tick > 0.0 {
                let growth = large.sharded_bytes_per_node_tick / small.sharded_bytes_per_node_tick;
                if growth > SHARD_GROWTH_CAP {
                    violations.push(format!(
                        "sharded per-node traffic grew {growth:.2}x across the 4x cluster step \
                         (cap {SHARD_GROWTH_CAP}x): scaling is not sub-linear"
                    ));
                }
            }
        }
        violations
    }
}

/// `b` within ±`tol` relative of `a` (exact zeros must match).
fn within_rel(a: f64, b: f64, tol: f64) -> bool {
    if a == 0.0 {
        return b == 0.0;
    }
    ((b - a) / a).abs() <= tol
}

/// Summarizes one steady-state window pairing as a report cell.
fn cell_from_window(nodes: u16, warmup: u64, ticks: u64, win: &ShardWindow) -> ShardCell {
    ShardCell {
        nodes: u64::from(nodes),
        warmup,
        ticks,
        mesh_bytes_per_node_tick: win.mesh_steady_rate(),
        sharded_bytes_per_node_tick: win.sharded_steady_rate(),
        traffic_ratio: win.steady_traffic_ratio(),
        exchange_ratio: win.full.exchange_ratio(),
        suppressed: win.full.suppressed(),
    }
}

/// Runs the full suite — both cluster sizes of [`SHARD_SHAPES`], each a
/// mesh/sharded pairing at warmup and full length — and assembles the
/// report. Progress lines go to stderr like the other suites'.
///
/// # Errors
///
/// Returns simulator errors, and fails outright if any run's replicas
/// do not converge: a traffic number from a diverged run is meaningless.
pub fn run_shard_suite() -> Result<ShardReport, String> {
    let mut cells = Vec::with_capacity(SHARD_SHAPES.len());
    for &(nodes, warmup, ticks) in SHARD_SHAPES {
        let t0 = std::time::Instant::now();
        let win = run_shard_window(nodes, 1, warmup, ticks, NetworkModel::paper_testbed())
            .map_err(|e| format!("n={nodes}: {e}"))?;
        for (tag, cmp) in [("warmup", &win.warmup), ("full", &win.full)] {
            if !cmp.both_converged() {
                return Err(format!("n={nodes}: {tag} run did not converge on every replica"));
            }
        }
        let cell = cell_from_window(nodes, warmup, ticks, &win);
        eprintln!(
            "  n={nodes:<3} window {warmup}..{ticks}t: mesh {:.0} B/nt, sharded {:.0} B/nt, \
             ratio {:.4}, suppressed {} [{:.1?} wall]",
            cell.mesh_bytes_per_node_tick,
            cell.sharded_bytes_per_node_tick,
            cell.traffic_ratio,
            cell.suppressed,
            t0.elapsed()
        );
        cells.push(cell);
    }
    Ok(ShardReport { schema: SHARD_SCHEMA_VERSION, cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ShardReport {
        ShardReport {
            schema: SHARD_SCHEMA_VERSION,
            cells: vec![
                ShardCell {
                    nodes: 64,
                    warmup: 12,
                    ticks: 60,
                    mesh_bytes_per_node_tick: 10_000.0,
                    sharded_bytes_per_node_tick: 4_000.0,
                    traffic_ratio: 0.4,
                    exchange_ratio: 1.1,
                    suppressed: 50_000,
                },
                ShardCell {
                    nodes: 256,
                    warmup: 48,
                    ticks: 96,
                    mesh_bytes_per_node_tick: 40_000.0,
                    sharded_bytes_per_node_tick: 8_000.0,
                    traffic_ratio: 0.2,
                    exchange_ratio: 1.1,
                    suppressed: 1_000_000,
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report();
        let parsed = ShardReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn compare_accepts_identical_and_flags_drift() {
        let base = report();
        assert!(base.compare(&report(), 0.05).is_empty());
        let mut cur = report();
        cur.cells[1].sharded_bytes_per_node_tick *= 2.0;
        cur.cells[0].suppressed = 1;
        let violations = base.compare(&cur, 0.05);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("sharded_bytes_per_node_tick")));
        assert!(violations.iter().any(|v| v.contains("suppressed")));
    }

    #[test]
    fn compare_flags_shape_and_cell_set_changes() {
        let base = report();
        let mut wrong = report();
        wrong.cells[0].ticks = 99;
        assert_eq!(base.compare(&wrong, 0.05).len(), 1);
        let mut extra = report();
        extra.cells.push(ShardCell { nodes: 1024, ..report().cells[1].clone() });
        assert!(base.compare(&extra, 0.05).iter().any(|v| v.contains("new cell")));
    }

    #[test]
    fn contract_enforces_ceilings_and_growth() {
        assert!(report().contract_violations().is_empty());
        let mut over = report();
        over.cells[1].traffic_ratio = 0.3;
        assert!(over.contract_violations().iter().any(|v| v.contains("ceiling")));
        let mut inert = report();
        inert.cells[0].suppressed = 0;
        assert!(inert.contract_violations().iter().any(|v| v.contains("inert")));
        let mut linear = report();
        linear.cells[1].sharded_bytes_per_node_tick =
            linear.cells[0].sharded_bytes_per_node_tick * 4.0;
        assert!(linear.contract_violations().iter().any(|v| v.contains("sub-linear")));
    }
}
