//! The wire-compression benchmark behind `perf wire` (`BENCH_6.json`).
//!
//! One scenario, a sweep over link speeds × the paper's four protocols,
//! each cell run twice: once on the v1 absolute wire format and once with
//! the full bandwidth diet ([`sdso_core::WireConfig::compressed`] —
//! negotiated varint/run-length codec v2, XOR-delta against the link
//! shadow, batch dedup). Frames are modelled at payload size
//! (`frame_wire_len: None`): the paper's fixed 2048-byte frames would
//! pad every message to the same size and mask exactly the savings this
//! suite exists to measure.
//!
//! What is gated, and how, follows the split the other baselines use:
//!
//! * **`bytes_per_tick`** (v1 and v2) and **`total_msgs`** are exact
//!   virtual-time measurements — the simulator is deterministic, so any
//!   drift beyond ±tolerance is a protocol or codec change, not noise.
//!   Compression must never change *how many* messages flow, only their
//!   size; the suite asserts the v2 run's count exceeds v1's by at most
//!   the one-off `CodecOffer` per directed link.
//! * **`exchange_us`** (mean per-process exchange time) is virtual time
//!   too, gated ±tolerance; it is where the link-speed sweep shows up —
//!   on 10 Mbps serialisation dominates and shrinking frames shortens
//!   the rendezvous, on 10 Gbps per-message CPU dominates and the gain
//!   vanishes (EXPERIMENTS.md Ext. H).
//! * **The reduction contract** is enforced fresh on every `record` and
//!   `check`: MSYNC2 must ship at least [`WIRE_REDUCTION_FLOOR`] fewer
//!   bytes per tick compressed than absolute (worst link taken), and no
//!   cell may ship *more* bytes compressed than absolute beyond the
//!   negotiation-overhead allowance.
//! * **Bit identity** is asserted inside the suite itself: for every
//!   cell the v1 and v2 runs must produce identical per-node
//!   modification counts and scores. A codec that decodes to anything
//!   but the exact bytes the v1 path would have delivered changes game
//!   outcomes and fails the run outright.

use sdso_core::WireConfig;
use sdso_game::{Protocol, Scenario};
use sdso_harness::{run_experiment, RunSummary};
use sdso_sim::NetworkModel;

use crate::json::{obj, Json};

/// Bumped when the report layout changes incompatibly.
pub const WIRE_SCHEMA_VERSION: u64 = 1;

/// Minimum MSYNC2 bytes-per-tick reduction (compressed vs absolute) the
/// suite enforces fresh, as a fraction: 0.40 = the compressed run must
/// ship at least 40% fewer bytes per tick.
pub const WIRE_REDUCTION_FLOOR: f64 = 0.40;

/// Codec negotiation costs one `CodecOffer` per link plus the per-frame
/// version byte; a compressed run may exceed the absolute run's bytes by
/// at most this relative allowance before the contract flags it.
const WIRE_INFLATION_ALLOWANCE: f64 = 0.02;

/// Teams (= processes) the committed baseline is recorded at.
pub const WIRE_DEFAULT_TEAMS: u16 = 4;

/// Ticks per process the committed baseline is recorded at.
pub const WIRE_DEFAULT_TICKS: u64 = 120;

/// Block payload size for the sweep. Larger than the paper's 64 bytes on
/// purpose: the game rewrites whole blocks whose content barely changes
/// between ticks (~1% of the world's bytes are genuinely dirty per
/// tick), which is exactly the regime where XOR-delta + zero-RLE pays.
const WIRE_BLOCK_BYTES: usize = 256;

/// The link sweep: name → calibrated [`NetworkModel`] preset.
fn links() -> [(&'static str, NetworkModel); 4] {
    [
        ("10M", NetworkModel::paper_testbed()),
        ("100M", NetworkModel::fast_ethernet()),
        ("1G", NetworkModel::modern_lan()),
        ("10G", NetworkModel::datacenter()),
    ]
}

/// One (link, protocol) result: the v1/v2 pair.
#[derive(Debug, Clone, PartialEq)]
pub struct WireCell {
    /// Link preset name (`10M`, `100M`, `1G`, `10G`).
    pub link: String,
    /// Protocol name (`BSYNC`, `MSYNC`, `MSYNC2`, `EC`).
    pub protocol: String,
    /// Modelled wire bytes per tick on the v1 absolute format. Exact;
    /// gated.
    pub v1_bytes_per_tick: f64,
    /// Modelled wire bytes per tick with the full bandwidth diet. Exact;
    /// gated.
    pub v2_bytes_per_tick: f64,
    /// Mean per-process exchange time on v1, virtual microseconds (zero
    /// for EC, which never exchanges). Gated.
    pub v1_exchange_us: f64,
    /// Mean per-process exchange time compressed, virtual microseconds.
    /// Gated.
    pub v2_exchange_us: f64,
    /// Cluster-wide message count of the v1 run. The v2 run's count may
    /// exceed it only by the one-off `CodecOffer` per directed link
    /// (asserted by the suite); compression changes frame sizes, never
    /// message flow. Exact; gated.
    pub total_msgs: u64,
}

impl WireCell {
    /// Fractional bytes-per-tick reduction of v2 over v1 (0.4 = 40%
    /// fewer bytes; negative means the compressed run shipped more).
    #[must_use]
    pub fn reduction(&self) -> f64 {
        if self.v1_bytes_per_tick == 0.0 {
            return 0.0;
        }
        1.0 - self.v2_bytes_per_tick / self.v1_bytes_per_tick
    }
}

/// A full wire-compression report (`BENCH_6.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct WireReport {
    /// Schema version ([`WIRE_SCHEMA_VERSION`]).
    pub schema: u64,
    /// Teams the sweep ran with.
    pub teams: u64,
    /// Ticks per process.
    pub ticks: u64,
    /// Block payload bytes.
    pub block_bytes: u64,
    /// Worst-link MSYNC2 bytes-per-tick reduction measured on the
    /// recording run. Recorded for the log; `record` and `check` both
    /// re-derive it fresh from their own cells.
    pub msync2_reduction: f64,
    /// One cell per (link, protocol).
    pub cells: Vec<WireCell>,
}

impl WireReport {
    /// Serializes the report as pretty-printed JSON.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                obj(vec![
                    ("link", Json::Str(c.link.clone())),
                    ("protocol", Json::Str(c.protocol.clone())),
                    ("v1_bytes_per_tick", Json::Num(c.v1_bytes_per_tick)),
                    ("v2_bytes_per_tick", Json::Num(c.v2_bytes_per_tick)),
                    ("v1_exchange_us", Json::Num(c.v1_exchange_us)),
                    ("v2_exchange_us", Json::Num(c.v2_exchange_us)),
                    ("total_msgs", Json::Num(c.total_msgs as f64)),
                ])
            })
            .collect();
        obj(vec![
            ("schema", Json::Num(self.schema as f64)),
            ("teams", Json::Num(self.teams as f64)),
            ("ticks", Json::Num(self.ticks as f64)),
            ("block_bytes", Json::Num(self.block_bytes as f64)),
            ("msync2_reduction", Json::Num(self.msync2_reduction)),
            ("cells", Json::Arr(cells)),
        ])
        .pretty()
    }

    /// Parses a report previously written by
    /// [`WireReport::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn parse(text: &str) -> Result<WireReport, String> {
        let root = Json::parse(text)?;
        let num = |key: &str| -> Result<f64, String> {
            root.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing numeric `{key}`"))
        };
        let schema = num("schema")? as u64;
        let teams = num("teams")? as u64;
        let ticks = num("ticks")? as u64;
        let block_bytes = num("block_bytes")? as u64;
        let msync2_reduction = num("msync2_reduction")?;
        let raw_cells = root
            .get("cells")
            .and_then(Json::as_array)
            .ok_or_else(|| "missing `cells` array".to_owned())?;
        let mut cells = Vec::with_capacity(raw_cells.len());
        for (i, c) in raw_cells.iter().enumerate() {
            let field = |key: &str| -> Result<f64, String> {
                c.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("cell {i}: missing numeric `{key}`"))
            };
            let text_field = |key: &str| -> Result<String, String> {
                c.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("cell {i}: missing `{key}`"))
            };
            cells.push(WireCell {
                link: text_field("link")?,
                protocol: text_field("protocol")?,
                v1_bytes_per_tick: field("v1_bytes_per_tick")?,
                v2_bytes_per_tick: field("v2_bytes_per_tick")?,
                v1_exchange_us: field("v1_exchange_us")?,
                v2_exchange_us: field("v2_exchange_us")?,
                total_msgs: field("total_msgs")? as u64,
            });
        }
        Ok(WireReport { schema, teams, ticks, block_bytes, msync2_reduction, cells })
    }

    /// Compares `current` against this baseline: every gated metric
    /// within ±`tolerance` relative per (link, protocol) cell; no cells
    /// may appear or vanish. The reduction floor is NOT checked here —
    /// [`WireReport::contract_violations`] enforces it fresh on both
    /// `record` and `check` (the shard/crash pattern). Returns
    /// human-readable violations; empty means pass.
    #[must_use]
    pub fn compare(&self, current: &WireReport, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if self.schema != current.schema {
            violations.push(format!(
                "schema changed: baseline {} vs current {}",
                self.schema, current.schema
            ));
            return violations;
        }
        if self.teams != current.teams
            || self.ticks != current.ticks
            || self.block_bytes != current.block_bytes
        {
            violations.push(format!(
                "shape mismatch: baseline {} teams × {} ticks × {}B blocks vs \
                 current {} × {} × {}B",
                self.teams,
                self.ticks,
                self.block_bytes,
                current.teams,
                current.ticks,
                current.block_bytes
            ));
            return violations;
        }
        for base in &self.cells {
            let key = format!("{} {}", base.link, base.protocol);
            let Some(cur) =
                current.cells.iter().find(|c| c.link == base.link && c.protocol == base.protocol)
            else {
                violations.push(format!("[{key}] cell missing from current run"));
                continue;
            };
            for (metric, b, c) in [
                ("v1_bytes_per_tick", base.v1_bytes_per_tick, cur.v1_bytes_per_tick),
                ("v2_bytes_per_tick", base.v2_bytes_per_tick, cur.v2_bytes_per_tick),
                ("v1_exchange_us", base.v1_exchange_us, cur.v1_exchange_us),
                ("v2_exchange_us", base.v2_exchange_us, cur.v2_exchange_us),
                ("total_msgs", base.total_msgs as f64, cur.total_msgs as f64),
            ] {
                if !within_rel(b, c, tolerance) {
                    violations.push(format!(
                        "[{key}] {metric}: baseline {b:.1} vs current {c:.1} (>±{:.0}%)",
                        tolerance * 100.0
                    ));
                }
            }
        }
        for cur in &current.cells {
            if !self.cells.iter().any(|b| b.link == cur.link && b.protocol == cur.protocol) {
                violations.push(format!(
                    "[{} {}] new cell not in baseline; re-record BENCH_6.json",
                    cur.link, cur.protocol
                ));
            }
        }
        violations
    }

    /// The compression contract, enforced fresh on `record` and `check`
    /// (the sim is deterministic, so these are exact — any breach is a
    /// real change):
    ///
    /// * MSYNC2's bytes-per-tick reduction, on its *worst* link, must
    ///   reach [`WIRE_REDUCTION_FLOOR`];
    /// * no cell may ship more compressed bytes than absolute beyond
    ///   the negotiation-overhead allowance.
    #[must_use]
    pub fn contract_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let msync2_worst = self
            .cells
            .iter()
            .filter(|c| c.protocol == "MSYNC2")
            .map(WireCell::reduction)
            .fold(f64::INFINITY, f64::min);
        if msync2_worst < WIRE_REDUCTION_FLOOR {
            violations.push(format!(
                "[MSYNC2] worst-link bytes/tick reduction {:.1}% below the {:.0}% floor",
                msync2_worst * 100.0,
                WIRE_REDUCTION_FLOOR * 100.0
            ));
        }
        for c in &self.cells {
            if c.v2_bytes_per_tick > c.v1_bytes_per_tick * (1.0 + WIRE_INFLATION_ALLOWANCE) {
                violations.push(format!(
                    "[{} {}] compressed run ships MORE bytes than absolute: \
                     {:.1} vs {:.1} per tick",
                    c.link, c.protocol, c.v2_bytes_per_tick, c.v1_bytes_per_tick
                ));
            }
        }
        violations
    }

    /// Worst-link MSYNC2 reduction derived from the cells.
    #[must_use]
    pub fn derived_msync2_reduction(&self) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.protocol == "MSYNC2")
            .map(WireCell::reduction)
            .fold(f64::INFINITY, f64::min)
    }
}

/// `b` within ±`tol` relative of `a` (exact zeros must match).
fn within_rel(a: f64, b: f64, tol: f64) -> bool {
    if a == 0.0 {
        return b == 0.0;
    }
    ((b - a) / a).abs() <= tol
}

/// The sweep scenario: paper world, payload-sized frames, fat blocks.
fn wire_scenario(teams: u16, ticks: u64) -> Scenario {
    let mut scenario =
        Scenario::paper(teams, 1).with_ticks(ticks).with_block_bytes(WIRE_BLOCK_BYTES);
    // Payload-sized frames: fixed 2048-byte frames would pad every
    // message identically and hide the codec's savings.
    scenario.frame_wire_len = None;
    scenario
}

/// Per-node `(modifications, score)` — the outcome fingerprint two runs
/// must share if (and only if) every frame decoded to identical bytes.
fn outcomes(summary: &RunSummary) -> Vec<(u64, i64)> {
    summary.per_node.iter().map(|s| (s.modifications, s.score)).collect()
}

/// Runs the full sweep at a given shape and assembles the report.
/// Progress lines go to stderr like the other suites'.
///
/// # Errors
///
/// Returns run errors, and fails outright if any compressed run's game
/// outcome diverges from its absolute twin (decode bit-identity broken)
/// or their message counts differ.
pub fn run_wire_suite_with(teams: u16, ticks: u64) -> Result<WireReport, String> {
    let scenario = wire_scenario(teams, ticks);
    let mut cells = Vec::new();
    for (link, model) in links() {
        for protocol in Protocol::PAPER {
            let run = |wire: WireConfig| -> Result<RunSummary, String> {
                run_experiment(&scenario.clone().with_wire(wire), protocol, model)
                    .map_err(|e| format!("{} {} : {e}", link, protocol.name()))
            };
            let v1 = run(WireConfig::v1())?;
            let v2 = run(WireConfig::compressed())?;
            if outcomes(&v1) != outcomes(&v2) {
                return Err(format!(
                    "[{link} {}] compressed run diverged from absolute run: \
                     decode is not bit-identical ({:?} vs {:?})",
                    protocol.name(),
                    outcomes(&v1),
                    outcomes(&v2)
                ));
            }
            // Compression may add at most one CodecOffer per directed
            // link (lazy negotiation); beyond that it must not change
            // how many messages flow, only their size.
            let offer_budget = u64::from(teams) * (u64::from(teams) - 1);
            let extra = v2.total_messages().wrapping_sub(v1.total_messages());
            if extra > offer_budget {
                return Err(format!(
                    "[{link} {}] compression changed the message count: {} vs {} \
                     (negotiation may add at most {offer_budget})",
                    protocol.name(),
                    v1.total_messages(),
                    v2.total_messages()
                ));
            }
            let cell = WireCell {
                link: link.to_owned(),
                protocol: protocol.name().to_owned(),
                v1_bytes_per_tick: v1.total_bytes() as f64 / ticks as f64,
                v2_bytes_per_tick: v2.total_bytes() as f64 / ticks as f64,
                v1_exchange_us: v1.avg_exchange_secs() * 1e6,
                v2_exchange_us: v2.avg_exchange_secs() * 1e6,
                total_msgs: v1.total_messages(),
            };
            eprintln!(
                "  {link:>4} {:<6}: {:>8.0} -> {:>8.0} B/tick ({:+.1}%), \
                 exchange {:>8.0} -> {:>8.0} us",
                cell.protocol,
                cell.v1_bytes_per_tick,
                cell.v2_bytes_per_tick,
                -cell.reduction() * 100.0,
                cell.v1_exchange_us,
                cell.v2_exchange_us,
            );
            cells.push(cell);
        }
    }
    let mut report = WireReport {
        schema: WIRE_SCHEMA_VERSION,
        teams: u64::from(teams),
        ticks,
        block_bytes: WIRE_BLOCK_BYTES as u64,
        msync2_reduction: 0.0,
        cells,
    };
    report.msync2_reduction = report.derived_msync2_reduction();
    eprintln!(
        "  MSYNC2 worst-link reduction: {:.1}% (floor {:.0}%)",
        report.msync2_reduction * 100.0,
        WIRE_REDUCTION_FLOOR * 100.0
    );
    Ok(report)
}

/// Runs the sweep at the committed baseline's shape.
///
/// # Errors
///
/// See [`run_wire_suite_with`].
pub fn run_wire_suite() -> Result<WireReport, String> {
    run_wire_suite_with(WIRE_DEFAULT_TEAMS, WIRE_DEFAULT_TICKS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(link: &str, protocol: &str, v1: f64, v2: f64) -> WireCell {
        WireCell {
            link: link.into(),
            protocol: protocol.into(),
            v1_bytes_per_tick: v1,
            v2_bytes_per_tick: v2,
            v1_exchange_us: 1500.0,
            v2_exchange_us: 900.0,
            total_msgs: 4000,
        }
    }

    fn report() -> WireReport {
        WireReport {
            schema: WIRE_SCHEMA_VERSION,
            teams: 4,
            ticks: 120,
            block_bytes: 256,
            msync2_reduction: 0.5,
            cells: vec![
                cell("10M", "MSYNC2", 10_000.0, 5_000.0),
                cell("10G", "MSYNC2", 10_000.0, 5_000.0),
                cell("10M", "EC", 8_000.0, 8_000.0),
            ],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report();
        let parsed = WireReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn compare_accepts_identical_and_small_drift() {
        let base = report();
        let mut cur = report();
        assert!(base.compare(&cur, 0.25).is_empty());
        cur.cells[0].v2_bytes_per_tick = 5_500.0; // +10%, inside ±25%
        assert!(base.compare(&cur, 0.25).is_empty());
    }

    #[test]
    fn compare_flags_drift_shape_and_cell_set_changes() {
        let base = report();
        let mut cur = report();
        cur.cells[0].v1_bytes_per_tick = 20_000.0;
        cur.cells[1].total_msgs = 8_000;
        let violations = base.compare(&cur, 0.25);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("v1_bytes_per_tick")));
        assert!(violations.iter().any(|v| v.contains("total_msgs")));

        let mut wrong_shape = report();
        wrong_shape.ticks = 60;
        assert_eq!(base.compare(&wrong_shape, 0.25).len(), 1);

        let mut extra = report();
        extra.cells.push(cell("1G", "BSYNC", 1.0, 1.0));
        assert!(base.compare(&extra, 0.25).iter().any(|v| v.contains("new cell")));
    }

    #[test]
    fn contract_enforces_reduction_floor_and_no_inflation() {
        assert!(report().contract_violations().is_empty());

        let mut weak = report();
        weak.cells[1].v2_bytes_per_tick = 9_000.0; // 10% < 40% floor
        let violations = weak.contract_violations();
        assert!(violations.iter().any(|v| v.contains("below the 40% floor")), "{violations:?}");

        let mut inflated = report();
        inflated.cells[2].v2_bytes_per_tick = 9_000.0; // EC grew 12.5%
        let violations = inflated.contract_violations();
        assert!(violations.iter().any(|v| v.contains("MORE bytes")), "{violations:?}");
    }

    #[test]
    fn small_sweep_compresses_and_stays_bit_identical() {
        // A tiny shape keeps this a unit test; CI runs the recorded
        // 4-team 120-tick shape via `perf wire`. Bit identity and the
        // message-count contract are asserted inside the suite itself.
        let report = run_wire_suite_with(2, 40).unwrap();
        assert_eq!(report.cells.len(), 16, "4 links × 4 protocols");
        assert!(
            report.msync2_reduction >= WIRE_REDUCTION_FLOOR,
            "MSYNC2 reduction {:.1}% under the floor even at the test shape",
            report.msync2_reduction * 100.0
        );
        let bytes_of = |link: &str, proto: &str, v2: bool| {
            let c = report
                .cells
                .iter()
                .find(|c| c.link == link && c.protocol == proto)
                .expect("cell present");
            if v2 {
                c.v2_bytes_per_tick
            } else {
                c.v1_bytes_per_tick
            }
        };
        // Bytes are link-independent (the sweep varies timing, not
        // behaviour): 10M and 10G must agree exactly.
        for proto in ["BSYNC", "MSYNC", "MSYNC2", "EC"] {
            assert_eq!(bytes_of("10M", proto, false), bytes_of("10G", proto, false), "{proto} v1");
            assert_eq!(bytes_of("10M", proto, true), bytes_of("10G", proto, true), "{proto} v2");
        }
    }
}
