//! Benchmark crate: see `benches/` and `src/bin/experiments.rs`.
//!
//! This crate has no library API of its own; it exists to host the
//! criterion micro-benchmarks and the `experiments` binary that
//! regenerates the paper's figures.
