//! Benchmark crate: criterion micro-benchmarks (`benches/`), the
//! `experiments` binary that regenerates the paper's figures, and the
//! `perf` binary that records/checks the perf-regression baseline
//! (`BENCH_<k>.json` at the repository root).
//!
//! The library part holds what the `perf` binary needs to be testable
//! offline: a dependency-free JSON reader/writer ([`json`]) and the
//! baseline schema plus tolerance comparison ([`baseline`]).

#![warn(missing_docs)]

pub mod baseline;
pub mod crashbench;
pub mod json;
pub mod micro;
pub mod netbench;
pub mod shardbench;
pub mod wirebench;
