//! Micro-benchmarks of the transport layer: framing, the in-process hub,
//! vector clocks, and the wire codec.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sdso_net::memory::MemoryHub;
use sdso_net::{Endpoint, Payload};
use sdso_protocols::VectorClock;

fn bench_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame");
    for &size in &[64usize, 2048, 65536] {
        let payload = Payload::data(vec![0u8; size]);
        group.bench_with_input(BenchmarkId::new("write", size), &size, |b, _| {
            let mut buf = Vec::with_capacity(size + 16);
            b.iter(|| {
                buf.clear();
                sdso_net::frame::write_frame(&mut buf, 0, black_box(&payload)).unwrap();
            });
        });
        let mut encoded = Vec::new();
        sdso_net::frame::write_frame(&mut encoded, 0, &payload).unwrap();
        group.bench_with_input(BenchmarkId::new("read", size), &size, |b, _| {
            b.iter(|| {
                let mut cursor = std::io::Cursor::new(black_box(&encoded));
                sdso_net::frame::read_frame(&mut cursor).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_memory_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_transport");
    group.bench_function("send_recv_2048", |b| {
        let mut eps = MemoryHub::new(2).into_endpoints();
        let mut rx = eps.pop().unwrap();
        let mut tx = eps.pop().unwrap();
        let payload = Payload::data(vec![0u8; 2048]);
        b.iter(|| {
            tx.send(1, payload.clone()).unwrap();
            black_box(rx.recv().unwrap())
        });
    });
    group.bench_function("broadcast_16", |b| {
        let mut eps = MemoryHub::new(16).into_endpoints();
        let payload = Payload::control(vec![0u8; 64]);
        b.iter(|| {
            eps[0].broadcast(black_box(&payload)).unwrap();
            for ep in eps.iter_mut().skip(1) {
                let _ = ep.recv().unwrap();
            }
        });
    });
    group.finish();
}

fn bench_vector_clock(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector_clock");
    for &width in &[16usize, 256] {
        let mut a = VectorClock::new(width);
        let mut b_clock = VectorClock::new(width);
        for i in 0..width {
            if i % 2 == 0 {
                a.increment(i as u16);
            } else {
                b_clock.increment(i as u16);
            }
        }
        group.bench_with_input(BenchmarkId::new("compare", width), &width, |bench, _| {
            bench.iter(|| black_box(&a).compare(black_box(&b_clock)));
        });
        group.bench_with_input(BenchmarkId::new("merge", width), &width, |bench, _| {
            bench.iter(|| {
                let mut m = a.clone();
                m.merge(black_box(&b_clock));
                black_box(m)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_frame, bench_memory_transport, bench_vector_clock);
criterion_main!(benches);
