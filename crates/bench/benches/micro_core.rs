//! Micro-benchmarks of the S-DSO runtime's data structures: diffs, the
//! exchange list, the slotted buffer, and block encoding.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sdso_core::{Diff, ExchangeList, LogicalTime, ObjectId, SlottedBuffer, Version};
use sdso_game::{Block, Direction};

fn bench_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("diff");
    for &size in &[64usize, 2048, 65536] {
        let old = vec![0u8; size];
        let mut new = old.clone();
        // Dirty 10% of the buffer in scattered runs.
        for i in (0..size).step_by(10) {
            new[i] = 1;
        }
        group.bench_with_input(BenchmarkId::new("between", size), &size, |b, _| {
            b.iter(|| Diff::between(black_box(&old), black_box(&new)));
        });
        let diff = Diff::between(&old, &new);
        group.bench_with_input(BenchmarkId::new("apply", size), &size, |b, _| {
            let mut target = old.clone();
            b.iter(|| diff.apply(black_box(&mut target)).unwrap());
        });
        let newer = Diff::single(size as u32 / 2, vec![9; size / 4]);
        group.bench_with_input(BenchmarkId::new("merge", size), &size, |b, _| {
            b.iter(|| black_box(&diff).merge(black_box(&newer)));
        });
        group.bench_with_input(BenchmarkId::new("encode", size), &size, |b, _| {
            b.iter(|| sdso_net::wire::encode(black_box(&diff)));
        });
    }
    group.finish();
}

fn bench_exchange_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_list");
    for &peers in &[16u16, 256] {
        group.bench_with_input(BenchmarkId::new("schedule_and_due", peers), &peers, |b, &peers| {
            b.iter(|| {
                let mut list = ExchangeList::new();
                for p in 0..peers {
                    list.schedule(p, LogicalTime::from_ticks(u64::from(p % 13) + 1));
                }
                black_box(list.due(LogicalTime::from_ticks(6)))
            });
        });
        group.bench_with_input(BenchmarkId::new("reschedule_churn", peers), &peers, |b, &peers| {
            let mut list = ExchangeList::new();
            for p in 0..peers {
                list.schedule(p, LogicalTime::from_ticks(u64::from(p) + 1));
            }
            let mut tick = 0u64;
            b.iter(|| {
                tick += 1;
                let peer = (tick % u64::from(peers)) as u16;
                list.schedule(peer, LogicalTime::from_ticks(tick + 10));
                black_box(list.peek_next())
            });
        });
    }
    group.finish();
}

fn bench_slotted_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("slotted_buffer");
    for &nodes in &[4usize, 16] {
        group.bench_with_input(BenchmarkId::new("buffer_and_drain", nodes), &nodes, |b, &nodes| {
            let stamp = Version::new(LogicalTime::from_ticks(1), 0);
            b.iter(|| {
                let mut buf = SlottedBuffer::new(nodes, 0, true);
                for obj in 0..32u32 {
                    buf.buffer_for_all(
                        ObjectId(obj % 8),
                        &Diff::single(0, vec![obj as u8; 64]),
                        stamp,
                        &[],
                    );
                }
                black_box(buf.drain_slot(1))
            });
        });
    }
    group.finish();
}

fn bench_block_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("block");
    let tank = Block::Tank {
        team: 7,
        tank: 0,
        hp: 2,
        facing: Direction::East,
        fired: Some(sdso_game::FireRecord { target: sdso_game::Pos::new(3, 4), tick: 99 }),
    };
    for &size in &[64usize, 2048] {
        group.bench_with_input(BenchmarkId::new("encode", size), &size, |b, &size| {
            b.iter(|| black_box(&tank).encode(size));
        });
        let encoded = tank.encode(size);
        group.bench_with_input(BenchmarkId::new("decode", size), &size, |b, _| {
            b.iter(|| Block::decode(black_box(&encoded)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_diff, bench_exchange_list, bench_slotted_buffer, bench_block_codec);
criterion_main!(benches);
