//! Criterion wrapper around the figure workloads: one benchmark per
//! (figure-cell) so regressions in protocol performance are caught by the
//! standard `cargo bench` flow. Cells use reduced tick counts — the full
//! paper-scale sweep lives in the `experiments` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdso_game::{Protocol, Scenario};
use sdso_harness::run_experiment;
use sdso_sim::NetworkModel;

/// One simulated game per iteration: Figure 5/6/7's inner loop.
fn bench_figure_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_cells");
    group.sample_size(10);
    for protocol in Protocol::PAPER {
        for &n in &[2u16, 4] {
            let scenario = Scenario::paper(n, 1).with_ticks(30);
            group.bench_with_input(
                BenchmarkId::new(protocol.name(), n),
                &scenario,
                |b, scenario| {
                    b.iter(|| {
                        run_experiment(scenario, protocol, NetworkModel::paper_testbed())
                            .expect("figure cell run")
                    });
                },
            );
        }
    }
    group.finish();
}

/// The virtual-time scheduler's raw throughput: a tight ping-pong.
fn bench_simulator_overhead(c: &mut Criterion) {
    use sdso_net::{Endpoint, Payload};
    use sdso_sim::SimCluster;

    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("ping_pong_1000", |b| {
        b.iter(|| {
            SimCluster::new(2, NetworkModel::instant())
                .run(|mut ep| {
                    let peer = 1 - ep.node_id();
                    for _ in 0..500 {
                        if ep.node_id() == 0 {
                            ep.send(peer, Payload::control(vec![0u8; 8]))?;
                            let _ = ep.recv()?;
                        } else {
                            let _ = ep.recv()?;
                            ep.send(peer, Payload::control(vec![0u8; 8]))?;
                        }
                    }
                    Ok(())
                })
                .expect("ping pong")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_figure_cells, bench_simulator_overhead);
criterion_main!(benches);
