//! Simulator-level integration tests: determinism under randomised
//! workloads, per-link FIFO, and deadlock detection with partial failures.

use proptest::prelude::*;
use sdso_net::{Endpoint, NodeId, Payload, SimSpan};
use sdso_sim::{NetworkModel, SimCluster, SimError};

/// A randomised but *deterministically seeded* workload: each node does a
/// fixed schedule of sends/advances derived from the seed, then drains its
/// expected message count.
fn run_seeded(seed: u64, nodes: usize) -> Vec<(u64, u64)> {
    let outcome = SimCluster::new(nodes, NetworkModel::paper_testbed())
        .run(move |mut ep| {
            let me = u64::from(ep.node_id());
            let n = ep.num_nodes() as u64;
            // Everyone sends `rounds` messages round-robin, interleaved
            // with seed-dependent compute.
            let rounds = 3 + (seed % 3);
            for r in 0..rounds {
                let target = ((me + 1 + (seed + r) % (n - 1)) % n) as NodeId;
                let size = 64 + ((seed.wrapping_mul(31) + r * 17 + me * 7) % 1024) as usize;
                ep.advance(SimSpan::from_micros((seed + me * 13 + r) % 500));
                ep.send(target, Payload::data(vec![r as u8; size]))?;
            }
            // Receive everything destined to us: count is data-dependent,
            // so poll until the cluster drains (deadlock marks the end).
            let mut received = 0u64;
            // Err marks the cluster drained (reported as deadlock).
            while ep.recv().is_ok() {
                received += 1;
            }
            Ok((received, ep.now().as_micros()))
        })
        .expect("cluster run");
    outcome.nodes.into_iter().map(|n| n.result.unwrap_or((u64::MAX, u64::MAX))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn randomised_workloads_are_bit_deterministic(seed in 0u64..1_000_000) {
        let a = run_seeded(seed, 4);
        let b = run_seeded(seed, 4);
        prop_assert_eq!(a, b, "same seed must give identical clocks and counts");
    }
}

#[test]
fn per_link_fifo_holds_under_load() {
    let outcome = SimCluster::new(2, NetworkModel::paper_testbed())
        .run(|mut ep| {
            if ep.node_id() == 0 {
                for i in 0..200u32 {
                    // Vary sizes so transmission times differ wildly.
                    let size = if i % 3 == 0 { 4096 } else { 16 };
                    let mut body = i.to_le_bytes().to_vec();
                    body.resize(size, 0);
                    ep.send(1, Payload::data(body))?;
                }
                Ok(0)
            } else {
                let mut last = None;
                for _ in 0..200 {
                    let msg = ep.recv()?;
                    let seq = u32::from_le_bytes(msg.payload.bytes[..4].try_into().unwrap());
                    if let Some(prev) = last {
                        assert_eq!(seq, prev + 1, "per-link FIFO violated");
                    }
                    last = Some(seq);
                }
                Ok(1)
            }
        })
        .unwrap();
    assert!(outcome.into_results().is_ok());
}

#[test]
fn one_silent_node_is_diagnosed_not_hung() {
    // Node 2 exits immediately; 0 and 1 wait for it forever. The scheduler
    // must report a deadlock naming the blocked nodes.
    let outcome = SimCluster::new(3, NetworkModel::instant())
        .run(|mut ep| {
            if ep.node_id() == 2 {
                return Ok(());
            }
            let _ = ep.recv()?;
            Ok(())
        })
        .unwrap();
    assert!(outcome.nodes[2].result.is_ok());
    for node in &outcome.nodes[..2] {
        match &node.result {
            Err(SimError::Net(sdso_net::NetError::Deadlock(diag))) => {
                assert!(diag.contains("Blocked"), "diagnostics list node states: {diag}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }
}

#[test]
fn makespan_reflects_the_slowest_node() {
    let outcome = SimCluster::new(3, NetworkModel::instant())
        .run(|mut ep| {
            let me = ep.node_id();
            ep.advance(SimSpan::from_millis(u64::from(me) * 10));
            Ok(ep.now().as_micros())
        })
        .unwrap();
    assert_eq!(outcome.makespan().as_micros(), 20_000);
}

#[test]
fn try_recv_does_not_deadlock_an_idle_cluster() {
    // Pure try_recv usage never blocks, so the run ends cleanly even with
    // nothing in flight.
    let outcome = SimCluster::new(2, NetworkModel::paper_testbed())
        .run(|mut ep| {
            for _ in 0..10 {
                ep.advance(SimSpan::from_micros(100));
                let _ = ep.try_recv()?;
            }
            Ok(())
        })
        .unwrap();
    assert!(outcome.into_results().is_ok());
}
