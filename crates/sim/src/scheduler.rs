//! The conservative virtual-time scheduler.
//!
//! Invariant: at most one node executes a time-advancing operation at a time,
//! and it is always a node with the globally minimal *next event time* (ties
//! broken by node id). A node's next event time is its clock while runnable,
//! or the arrival time of its earliest pending message while blocked in
//! `recv`. This guarantees that no node ever observes an inbox that a
//! virtual-time-earlier action could still change — which makes every run
//! deterministic.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use sdso_net::fault::Verdict;
use sdso_net::{FaultInjector, Incoming, NetError, NodeId, Payload, SimInstant, SimSpan};

use crate::explore::{Candidate, DeliveryOracle};
use crate::model::NetworkModel;

/// Scheduling status of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Executing (or waiting for its turn to execute).
    Running,
    /// Parked inside `recv` with no deliverable message yet.
    Blocked,
    /// The node's closure has returned.
    Done,
}

/// An in-flight message.
#[derive(Debug)]
struct Entry {
    deliver_at: u64,
    /// Global sequence number: total, deterministic tie-break.
    seq: u64,
    from: NodeId,
    payload: Payload,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.seq) == (other.deliver_at, other.seq)
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

#[derive(Debug)]
struct Node {
    clock: u64,
    status: Status,
    inbox: BinaryHeap<Reverse<Entry>>,
    /// Outgoing link busy-until time, per destination actually sent to.
    /// Sparse on purpose: under sharded routing a 256-node cluster's
    /// node talks to its interest set, not to all n-1 peers, and a dense
    /// `vec![0; n]` per node would be O(n²) state for links that never
    /// carry a byte. An absent key means the link was never busy.
    link_busy: BTreeMap<usize, u64>,
    /// Absolute virtual time at which a `recv_deadline` wait gives up.
    deadline: Option<u64>,
}

#[derive(Debug)]
struct State {
    nodes: Vec<Node>,
    deadlock: Option<String>,
    next_seq: u64,
    /// Fault injector, consulted once per send. Living under the state
    /// mutex means fault decisions are drawn in virtual-time order, so a
    /// given plan replays bit-identically across runs.
    injector: Option<FaultInjector>,
    /// Delivery-choice oracle, consulted whenever two or more senders race
    /// a message into the same receiver at one wake instant. Under the
    /// state mutex, so choice points form one global deterministic order.
    oracle: Option<Arc<dyn DeliveryOracle>>,
}

impl State {
    /// Next event time of node `i`, or `None` if it can never act again
    /// without external input.
    fn next_event(&self, i: usize) -> Option<u64> {
        let node = &self.nodes[i];
        match node.status {
            Status::Done => None,
            Status::Running => Some(node.clock),
            Status::Blocked => {
                let head = node.inbox.peek().map(|Reverse(e)| e.deliver_at);
                let t = match (head, node.deadline) {
                    (Some(h), Some(d)) => Some(h.min(d)),
                    (Some(h), None) => Some(h),
                    (None, d) => d,
                };
                t.map(|t| t.max(node.clock))
            }
        }
    }

    /// Whether node `id` holds the (virtual-time-minimal) right to act.
    fn is_min(&self, id: usize) -> bool {
        let Some(mine) = self.next_event(id) else {
            return false;
        };
        (0..self.nodes.len()).all(|j| {
            j == id
                || match self.next_event(j) {
                    None => true,
                    Some(t) => (mine, id) <= (t, j),
                }
        })
    }

    /// True iff no node can ever make progress again.
    fn is_deadlocked(&self) -> bool {
        let mut any_blocked = false;
        for node in &self.nodes {
            match node.status {
                Status::Running => return false,
                Status::Blocked => {
                    // A node waiting with a deadline will wake on its own;
                    // it can never be part of a deadlock.
                    if !node.inbox.is_empty() || node.deadline.is_some() {
                        return false;
                    }
                    any_blocked = true;
                }
                Status::Done => {}
            }
        }
        any_blocked
    }

    /// Pops the next deliverable message for node `id`.
    ///
    /// Without an oracle the heap head (earliest arrival, lowest seq) wins —
    /// the scheduler's native deterministic order. With an oracle, every
    /// entry deliverable at the wake instant is pooled, the earliest entry
    /// per distinct sender becomes a candidate, and the oracle picks among
    /// them when two or more senders race. Per-sender FIFO always holds:
    /// the oracle permutes across senders, never within one link.
    fn pop_delivery(&mut self, id: usize) -> Option<Entry> {
        let oracle = self.oracle.clone();
        let node = &mut self.nodes[id];
        let head_t = node.inbox.peek().map(|Reverse(e)| e.deliver_at)?;
        let Some(oracle) = oracle else {
            return node.inbox.pop().map(|Reverse(e)| e);
        };
        // All entries with deliver_at <= wake have arrived by the time this
        // node resumes; is_min guarantees no earlier event can add more.
        let wake = head_t.max(node.clock);
        let mut pool: Vec<Entry> = Vec::new();
        while node.inbox.peek().is_some_and(|Reverse(e)| e.deliver_at <= wake) {
            if let Some(Reverse(e)) = node.inbox.pop() {
                pool.push(e);
            }
        }
        // The heap pops in (deliver_at, seq) order, so the first pool entry
        // from each sender is that sender's earliest pending message.
        let mut candidates: Vec<usize> = Vec::new();
        for (i, e) in pool.iter().enumerate() {
            if !candidates.iter().any(|&j| pool[j].from == e.from) {
                candidates.push(i);
            }
        }
        let chosen = if candidates.len() >= 2 {
            let view: Vec<Candidate> = candidates
                .iter()
                .map(|&j| Candidate {
                    from: pool[j].from,
                    seq: pool[j].seq,
                    deliver_at: pool[j].deliver_at,
                })
                .collect();
            let k = oracle.choose(id as NodeId, &view).min(candidates.len() - 1);
            candidates[k]
        } else {
            *candidates.first()?
        };
        let entry = pool.swap_remove(chosen);
        for e in pool {
            node.inbox.push(Reverse(e));
        }
        Some(entry)
    }

    fn diagnostics(&self) -> String {
        let mut s = String::from("all live nodes blocked with empty inboxes;");
        for (i, node) in self.nodes.iter().enumerate() {
            s.push_str(&format!(
                " node {i}: {:?} at {}µs ({} queued);",
                node.status,
                node.clock,
                node.inbox.len()
            ));
        }
        s
    }
}

/// The shared scheduler for one cluster run.
#[derive(Debug)]
pub(crate) struct Scheduler {
    state: Mutex<State>,
    /// One condvar per node. Every mutation wakes only the node now
    /// holding the virtual-time minimum (see [`Scheduler::wake_min`]);
    /// a single shared condvar with `notify_all` would wake every
    /// parked thread per operation — an O(n²) context-switch storm that
    /// dominates wall-clock time on 256-node clusters.
    cvs: Vec<Condvar>,
    model: NetworkModel,
}

impl Scheduler {
    pub(crate) fn new(n: usize, model: NetworkModel) -> Self {
        let nodes = (0..n)
            .map(|_| Node {
                clock: 0,
                status: Status::Running,
                inbox: BinaryHeap::new(),
                link_busy: BTreeMap::new(),
                deadline: None,
            })
            .collect();
        Scheduler {
            state: Mutex::new(State {
                nodes,
                deadlock: None,
                next_seq: 0,
                injector: None,
                oracle: None,
            }),
            cvs: (0..n).map(|_| Condvar::new()).collect(),
            model,
        }
    }

    /// Installs a fault injector; call before any node starts running.
    pub(crate) fn set_faults(&self, injector: FaultInjector) {
        self.state.lock().injector = Some(injector);
    }

    /// Installs a delivery-choice oracle; call before any node starts
    /// running.
    pub(crate) fn set_oracle(&self, oracle: Arc<dyn DeliveryOracle>) {
        self.state.lock().oracle = Some(oracle);
    }

    /// The number of nodes this scheduler serves.
    pub(crate) fn num_nodes(&self) -> usize {
        self.state.lock().nodes.len()
    }

    /// Wakes exactly the node that now holds the virtual-time minimum.
    ///
    /// Only the (unique, id-tie-broken) minimal node can make progress,
    /// so it is the only one worth waking. If no node has a next event
    /// while some are still blocked, the cluster is deadlocked: record
    /// it and wake everyone so they can observe the error. The executing
    /// thread itself may be the minimum — notifying its idle condvar is
    /// a harmless no-op.
    fn wake_min(&self, st: &mut State) {
        if st.deadlock.is_some() {
            for cv in &self.cvs {
                cv.notify_all();
            }
            return;
        }
        let mut min: Option<(u64, usize)> = None;
        for j in 0..st.nodes.len() {
            if let Some(t) = st.next_event(j) {
                if min.is_none_or(|m| (t, j) < m) {
                    min = Some((t, j));
                }
            }
        }
        match min {
            Some((_, j)) => self.cvs[j].notify_all(),
            None => {
                if st.is_deadlocked() {
                    st.deadlock = Some(st.diagnostics());
                    for cv in &self.cvs {
                        cv.notify_all();
                    }
                }
            }
        }
    }

    /// Blocks until `id` is the minimal-time node (or the run deadlocked).
    fn wait_turn<'a>(
        &'a self,
        st: &mut parking_lot::MutexGuard<'a, State>,
        id: usize,
    ) -> Result<(), NetError> {
        loop {
            if let Some(d) = &st.deadlock {
                return Err(NetError::Deadlock(d.clone()));
            }
            if st.is_min(id) {
                return Ok(());
            }
            self.cvs[id].wait(st);
        }
    }

    /// Models local computation: advances `id`'s clock by `dt`.
    pub(crate) fn advance(&self, id: usize, dt: SimSpan) -> Result<(), NetError> {
        let mut st = self.state.lock();
        self.wait_turn(&mut st, id)?;
        st.nodes[id].clock += dt.as_micros();
        self.wake_min(&mut st);
        Ok(())
    }

    /// Current clock of `id` in microseconds.
    pub(crate) fn now(&self, id: usize) -> u64 {
        self.state.lock().nodes[id].clock
    }

    /// Sends `payload` from `id` to `to` under the network model.
    ///
    /// Returns the fault verdict when an injector is installed (`None`
    /// otherwise) so the endpoint can account for injected faults. A
    /// dropped message still pays send CPU and occupies the link — the
    /// bits went out; they just never arrive.
    pub(crate) fn send(
        &self,
        id: usize,
        to: usize,
        payload: Payload,
    ) -> Result<Option<Verdict>, NetError> {
        let mut st = self.state.lock();
        self.wait_turn(&mut st, id)?;
        let wire_len = payload.wire_len();
        let seq = st.next_seq;
        st.next_seq += 1;

        let (deliver_at, sent_at) = {
            let sender = &mut st.nodes[id];
            sender.clock += self.model.send_cpu.as_micros();
            let busy = sender.link_busy.get(&to).copied().unwrap_or(0);
            let start = sender.clock.max(busy);
            let done_tx = start + self.model.transmission(wire_len).as_micros();
            sender.link_busy.insert(to, done_tx);
            (done_tx + self.model.latency.as_micros(), sender.clock)
        };

        let verdict = st
            .injector
            .as_mut()
            .map(|inj| inj.judge(id as NodeId, to as NodeId, SimInstant::from_micros(sent_at)));
        let v = verdict.unwrap_or_default();
        if !v.dropped {
            let deliver_at = deliver_at + v.extra_delay.as_micros();
            st.nodes[to].inbox.push(Reverse(Entry {
                deliver_at,
                seq,
                from: id as NodeId,
                payload: payload.clone(),
            }));
            if v.duplicated {
                // The duplicate is a second transmission: it queues behind
                // the original on the link and pays its own wire time.
                let seq2 = st.next_seq;
                st.next_seq += 1;
                let deliver2 = {
                    let sender = &mut st.nodes[id];
                    let busy = sender.link_busy.get(&to).copied().unwrap_or(0);
                    let start = sender.clock.max(busy);
                    let done_tx = start + self.model.transmission(wire_len).as_micros();
                    sender.link_busy.insert(to, done_tx);
                    done_tx + self.model.latency.as_micros()
                };
                st.nodes[to].inbox.push(Reverse(Entry {
                    deliver_at: deliver2,
                    seq: seq2,
                    from: id as NodeId,
                    payload,
                }));
            }
        }
        self.wake_min(&mut st);
        Ok(verdict)
    }

    /// Receives the next message for `id`, blocking in virtual time.
    ///
    /// Returns the message plus the span the node spent blocked (arrival
    /// time minus the clock at call time, clamped to zero).
    pub(crate) fn recv(&self, id: usize) -> Result<(Incoming, SimSpan), NetError> {
        let mut st = self.state.lock();
        let entry_clock = st.nodes[id].clock;
        loop {
            if let Some(d) = st.deadlock.clone() {
                st.nodes[id].status = Status::Running;
                return Err(NetError::Deadlock(d));
            }
            // Entering the blocked state changes every other node's is_min
            // verdict, so the transition must wake them.
            if st.nodes[id].status != Status::Blocked {
                st.nodes[id].status = Status::Blocked;
                self.wake_min(&mut st);
            }
            // Deliverable only when this node's wake time is globally
            // minimal (Blocked semantics: the pending arrival, not the stale
            // clock, is what gets compared).
            if !st.nodes[id].inbox.is_empty() {
                if st.is_min(id) {
                    if let Some(entry) = st.pop_delivery(id) {
                        let node = &mut st.nodes[id];
                        node.clock =
                            entry.deliver_at.max(node.clock) + self.model.recv_cpu.as_micros();
                        node.status = Status::Running;
                        let blocked =
                            SimSpan::from_micros(entry.deliver_at.saturating_sub(entry_clock));
                        self.wake_min(&mut st);
                        return Ok((
                            Incoming { from: entry.from, payload: entry.payload },
                            blocked,
                        ));
                    }
                }
            } else if st.is_deadlocked() {
                let diag = st.diagnostics();
                st.deadlock = Some(diag.clone());
                st.nodes[id].status = Status::Running;
                self.wake_min(&mut st);
                return Err(NetError::Deadlock(diag));
            }
            self.cvs[id].wait(&mut st);
        }
    }

    /// Like [`Scheduler::recv`], but gives up once the node's clock would
    /// pass `timeout`, returning `Ok((None, timeout))` with the clock
    /// advanced to the deadline.
    ///
    /// While waiting, the deadline itself is a scheduled event: the node
    /// participates in the virtual-time total order through it, and a
    /// cluster whose nodes all wait with deadlines is never declared
    /// deadlocked — the earliest deadline fires instead.
    pub(crate) fn recv_deadline(
        &self,
        id: usize,
        timeout: SimSpan,
    ) -> Result<(Option<Incoming>, SimSpan), NetError> {
        let mut st = self.state.lock();
        let entry_clock = st.nodes[id].clock;
        let deadline = entry_clock + timeout.as_micros();
        st.nodes[id].deadline = Some(deadline);
        loop {
            if let Some(d) = st.deadlock.clone() {
                let node = &mut st.nodes[id];
                node.status = Status::Running;
                node.deadline = None;
                return Err(NetError::Deadlock(d));
            }
            if st.nodes[id].status != Status::Blocked {
                st.nodes[id].status = Status::Blocked;
                self.wake_min(&mut st);
            }
            if st.is_min(id) {
                let node = &mut st.nodes[id];
                let msg_first =
                    node.inbox.peek().is_some_and(|Reverse(e)| e.deliver_at <= deadline);
                node.status = Status::Running;
                node.deadline = None;
                if msg_first {
                    // The wake instant never exceeds the deadline here, so
                    // every pooled candidate beats the timeout.
                    if let Some(entry) = st.pop_delivery(id) {
                        let node = &mut st.nodes[id];
                        node.clock =
                            entry.deliver_at.max(node.clock) + self.model.recv_cpu.as_micros();
                        let blocked =
                            SimSpan::from_micros(entry.deliver_at.saturating_sub(entry_clock));
                        self.wake_min(&mut st);
                        return Ok((
                            Some(Incoming { from: entry.from, payload: entry.payload }),
                            blocked,
                        ));
                    }
                }
                let node = &mut st.nodes[id];
                node.clock = deadline.max(node.clock);
                self.wake_min(&mut st);
                return Ok((None, timeout));
            }
            self.cvs[id].wait(&mut st);
        }
    }

    /// Receives a message only if one has already arrived at `id`'s current
    /// clock; never advances past other nodes' earlier events.
    pub(crate) fn try_recv(&self, id: usize) -> Result<Option<Incoming>, NetError> {
        let mut st = self.state.lock();
        self.wait_turn(&mut st, id)?;
        let node = &st.nodes[id];
        let due = node.inbox.peek().is_some_and(|Reverse(e)| e.deliver_at <= node.clock);
        if !due {
            return Ok(None);
        }
        let Some(entry) = st.pop_delivery(id) else {
            return Ok(None);
        };
        st.nodes[id].clock += self.model.recv_cpu.as_micros();
        self.wake_min(&mut st);
        Ok(Some(Incoming { from: entry.from, payload: entry.payload }))
    }

    /// Marks `id` finished (its closure returned or panicked).
    pub(crate) fn mark_done(&self, id: usize) {
        let mut st = self.state.lock();
        st.nodes[id].status = Status::Done;
        // A finish can expose a deadlock among the remaining nodes;
        // wake_min detects the no-next-event case and flags it.
        self.wake_min(&mut st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pl(n: usize) -> Payload {
        Payload::data(vec![0u8; n])
    }

    #[test]
    fn delivery_time_includes_cpu_tx_and_latency() {
        let model = NetworkModel {
            send_cpu: SimSpan::from_micros(100),
            recv_cpu: SimSpan::from_micros(50),
            bandwidth_bps: 8_000_000, // 1 byte per microsecond
            latency: SimSpan::from_micros(300),
        };
        let s = Arc::new(Scheduler::new(2, model));
        let s2 = Arc::clone(&s);
        let t = std::thread::spawn(move || {
            let (msg, blocked) = s2.recv(1).unwrap();
            assert_eq!(msg.from, 0);
            // deliver_at = 100 (send cpu) + 1000 (tx) + 300 (latency) = 1400
            assert_eq!(blocked.as_micros(), 1400);
            let clock = s2.now(1);
            assert_eq!(clock, 1450); // + recv cpu
            s2.mark_done(1);
        });
        s.send(0, 1, pl(1000)).unwrap();
        s.mark_done(0);
        t.join().unwrap();
    }

    #[test]
    fn back_to_back_sends_serialise_on_the_link() {
        let model = NetworkModel {
            send_cpu: SimSpan::ZERO,
            recv_cpu: SimSpan::ZERO,
            bandwidth_bps: 8_000_000, // 1 byte/µs
            latency: SimSpan::ZERO,
        };
        let s = Arc::new(Scheduler::new(2, model));
        s.send(0, 1, pl(1000)).unwrap();
        s.send(0, 1, pl(1000)).unwrap();
        s.mark_done(0);
        let (_, b1) = s.recv(1).unwrap();
        assert_eq!(b1.as_micros(), 1000);
        assert_eq!(s.now(1), 1000);
        let (_, b2) = s.recv(1).unwrap();
        // The second frame waited for the link: it arrives at t=2000, i.e.
        // 1000µs after the receiver finished the first recv.
        assert_eq!(b2.as_micros(), 1000);
        assert_eq!(s.now(1), 2000);
        s.mark_done(1);
    }

    #[test]
    fn links_to_distinct_peers_do_not_serialise() {
        let model = NetworkModel {
            send_cpu: SimSpan::ZERO,
            recv_cpu: SimSpan::ZERO,
            bandwidth_bps: 8_000_000,
            latency: SimSpan::ZERO,
        };
        let s = Arc::new(Scheduler::new(3, model));
        let receivers: Vec<_> = [1usize, 2]
            .into_iter()
            .map(|id| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let (_, blocked) = s.recv(id).unwrap();
                    s.mark_done(id);
                    blocked
                })
            })
            .collect();
        s.send(0, 1, pl(1000)).unwrap();
        s.send(0, 2, pl(1000)).unwrap();
        s.mark_done(0);
        for t in receivers {
            let blocked = t.join().unwrap();
            assert_eq!(blocked.as_micros(), 1000, "switched network: independent links");
        }
    }

    #[test]
    fn deadlock_detected_when_all_block_empty() {
        let s = Arc::new(Scheduler::new(2, NetworkModel::instant()));
        let s2 = Arc::clone(&s);
        let t = std::thread::spawn(move || s2.recv(1));
        let r0 = s.recv(0);
        let r1 = t.join().unwrap();
        assert!(matches!(r0, Err(NetError::Deadlock(_))));
        assert!(matches!(r1, Err(NetError::Deadlock(_))));
    }

    #[test]
    fn messages_delivered_in_virtual_time_order_across_senders() {
        // Node 2 receives from both 0 and 1; node 1's message is sent later
        // in wall time but earlier in virtual time and must win.
        let model = NetworkModel {
            send_cpu: SimSpan::ZERO,
            recv_cpu: SimSpan::ZERO,
            bandwidth_bps: u64::MAX,
            latency: SimSpan::from_micros(10),
        };
        let s = Arc::new(Scheduler::new(3, model));
        // Node 0: advance far, then send (deliver at 1010).
        let s0 = Arc::clone(&s);
        let t0 = std::thread::spawn(move || {
            s0.advance(0, SimSpan::from_micros(1000)).unwrap();
            s0.send(0, 2, pl(1)).unwrap();
            s0.mark_done(0);
        });
        // Node 1: sends at virtual time 0 (deliver at 10), regardless of
        // which thread wins the wall-clock race.
        let s1 = Arc::clone(&s);
        let t1 = std::thread::spawn(move || {
            s1.send(1, 2, pl(2)).unwrap();
            s1.mark_done(1);
        });
        let (m1, _) = s.recv(2).unwrap();
        let (m2, _) = s.recv(2).unwrap();
        s.mark_done(2);
        assert_eq!(m1.from, 1);
        assert_eq!(m2.from, 0);
        t0.join().unwrap();
        t1.join().unwrap();
    }

    #[test]
    fn try_recv_sees_only_arrived_messages() {
        let model = NetworkModel {
            send_cpu: SimSpan::ZERO,
            recv_cpu: SimSpan::ZERO,
            bandwidth_bps: u64::MAX,
            latency: SimSpan::from_micros(100),
        };
        let s = Arc::new(Scheduler::new(2, model));
        s.send(0, 1, pl(1)).unwrap();
        s.mark_done(0);
        // Message arrives at t=100; node 1 is still at t=0.
        assert!(s.try_recv(1).unwrap().is_none());
        s.advance(1, SimSpan::from_micros(100)).unwrap();
        assert!(s.try_recv(1).unwrap().is_some());
        s.mark_done(1);
    }

    #[test]
    fn min_time_node_runs_first() {
        // Node 1 (clock 0) must complete its send before node 0 (clock 500)
        // may act, so node 0's recv sees it immediately.
        let s = Arc::new(Scheduler::new(2, NetworkModel::instant()));
        let s2 = Arc::clone(&s);
        s.advance(0, SimSpan::from_micros(500)).unwrap();
        let t = std::thread::spawn(move || {
            s2.send(1, 0, pl(1)).unwrap();
            s2.mark_done(1);
        });
        let (msg, _) = s.recv(0).unwrap();
        assert_eq!(msg.from, 1);
        s.mark_done(0);
        t.join().unwrap();
    }
}
