use std::sync::Arc;

use sdso_net::{
    Endpoint, Incoming, NetError, NetMetrics, NetMetricsSnapshot, NodeId, Payload, SimInstant,
    SimSpan,
};

use crate::scheduler::Scheduler;

/// One simulated node's endpoint.
///
/// Implements [`sdso_net::Endpoint`] over the virtual-time scheduler, so the
/// exact protocol code that runs on real transports runs — deterministically
/// and with modelled timing — inside the simulator.
#[derive(Debug)]
pub struct SimEndpoint {
    id: NodeId,
    num_nodes: usize,
    scheduler: Arc<Scheduler>,
    metrics: NetMetrics,
}

impl SimEndpoint {
    pub(crate) fn new(id: NodeId, num_nodes: usize, scheduler: Arc<Scheduler>) -> Self {
        SimEndpoint { id, num_nodes, scheduler, metrics: NetMetrics::new() }
    }

    /// Shared handle to this endpoint's live metrics (the cluster keeps one
    /// to report per-node counters after the run).
    pub(crate) fn metrics_handle(&self) -> NetMetrics {
        self.metrics.clone()
    }
}

impl Endpoint for SimEndpoint {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn send(&mut self, to: NodeId, payload: Payload) -> Result<(), NetError> {
        if to == self.id || usize::from(to) >= self.num_nodes {
            return Err(NetError::InvalidPeer { peer: to, cluster: self.num_nodes });
        }
        let (class, wire_len) = (payload.class, payload.wire_len());
        let verdict = self.scheduler.send(usize::from(self.id), usize::from(to), payload)?;
        match verdict {
            Some(v) => {
                self.metrics.record_fault(&v);
                if !v.dropped {
                    self.metrics.record_send(class, wire_len);
                    if v.duplicated {
                        self.metrics.record_send(class, wire_len);
                    }
                }
            }
            None => self.metrics.record_send(class, wire_len),
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Incoming, NetError> {
        let (msg, blocked) = self.scheduler.recv(usize::from(self.id))?;
        self.metrics.record_blocked(blocked);
        self.metrics.record_recv(msg.payload.class, msg.payload.wire_len());
        Ok(msg)
    }

    fn try_recv(&mut self) -> Result<Option<Incoming>, NetError> {
        let msg = self.scheduler.try_recv(usize::from(self.id))?;
        if let Some(msg) = &msg {
            self.metrics.record_recv(msg.payload.class, msg.payload.wire_len());
        }
        Ok(msg)
    }

    fn recv_deadline(&mut self, timeout: SimSpan) -> Result<Option<Incoming>, NetError> {
        let (msg, blocked) = self.scheduler.recv_deadline(usize::from(self.id), timeout)?;
        self.metrics.record_blocked(blocked);
        if let Some(msg) = &msg {
            self.metrics.record_recv(msg.payload.class, msg.payload.wire_len());
        }
        Ok(msg)
    }

    fn advance(&mut self, dt: SimSpan) {
        // An advance can only fail after a declared deadlock, at which point
        // the node will discover the error at its next recv.
        let _ = self.scheduler.advance(usize::from(self.id), dt);
    }

    fn now(&self) -> SimInstant {
        SimInstant::from_micros(self.scheduler.now(usize::from(self.id)))
    }

    fn metrics(&self) -> NetMetricsSnapshot {
        self.metrics.snapshot()
    }
}
