use std::sync::Arc;

use sdso_net::{
    Endpoint, EventKind, Incoming, MsgClass, NetError, NetMetrics, NetMetricsSnapshot, NodeId,
    Payload, Recorder, SimInstant, SimSpan,
};

use crate::scheduler::Scheduler;

/// The `class` operand for flight-recorder Send/Recv events.
fn obs_class(class: MsgClass) -> u32 {
    match class {
        MsgClass::Control => 0,
        MsgClass::Data => 1,
    }
}

/// One simulated node's endpoint.
///
/// Implements [`sdso_net::Endpoint`] over the virtual-time scheduler, so the
/// exact protocol code that runs on real transports runs — deterministically
/// and with modelled timing — inside the simulator. Flight-recorder events
/// are stamped with virtual time, so traces of sim runs are reproducible
/// bit-for-bit.
#[derive(Debug)]
pub struct SimEndpoint {
    id: NodeId,
    num_nodes: usize,
    scheduler: Arc<Scheduler>,
    metrics: NetMetrics,
    recorder: Recorder,
}

impl SimEndpoint {
    pub(crate) fn new(id: NodeId, num_nodes: usize, scheduler: Arc<Scheduler>) -> Self {
        SimEndpoint {
            id,
            num_nodes,
            scheduler,
            metrics: NetMetrics::new(),
            recorder: Recorder::disabled(),
        }
    }

    /// Shared handle to this endpoint's live metrics (the cluster keeps one
    /// to report per-node counters after the run).
    pub(crate) fn metrics_handle(&self) -> NetMetrics {
        self.metrics.clone()
    }

    fn note_recv(&self, msg: &Incoming) {
        self.metrics.record_recv(msg.payload.class, msg.payload.wire_len());
        self.recorder.record(
            self.now().as_micros(),
            EventKind::Recv,
            u32::from(msg.from),
            obs_class(msg.payload.class),
            msg.payload.wire_len(),
        );
    }
}

impl Endpoint for SimEndpoint {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn send(&mut self, to: NodeId, payload: Payload) -> Result<(), NetError> {
        if to == self.id || usize::from(to) >= self.num_nodes {
            return Err(NetError::InvalidPeer { peer: to, cluster: self.num_nodes });
        }
        let (class, wire_len) = (payload.class, payload.wire_len());
        let verdict = self.scheduler.send(usize::from(self.id), usize::from(to), payload)?;
        let mut sends = 0u32;
        match verdict {
            Some(v) => {
                self.metrics.record_fault(&v);
                let mut bits = 0;
                if v.dropped {
                    bits |= sdso_obs::FAULT_DROP;
                }
                if v.duplicated {
                    bits |= sdso_obs::FAULT_DUP;
                }
                if v.extra_delay > SimSpan::ZERO {
                    bits |= sdso_obs::FAULT_DELAY;
                }
                if bits != 0 {
                    self.recorder.record(
                        self.now().as_micros(),
                        EventKind::FaultInjected,
                        bits,
                        0,
                        0,
                    );
                }
                if !v.dropped {
                    sends = if v.duplicated { 2 } else { 1 };
                }
            }
            None => sends = 1,
        }
        for _ in 0..sends {
            self.metrics.record_send(class, wire_len);
            self.recorder.record(
                self.now().as_micros(),
                EventKind::Send,
                u32::from(to),
                obs_class(class),
                wire_len,
            );
        }
        Ok(())
    }

    fn send_batch(&mut self, to: NodeId, payloads: Vec<Payload>) -> Result<(), NetError> {
        // The simulated network has no per-write cost to amortize, and every
        // `scheduler.send` is a choice point the explorer may perturb — so a
        // batch MUST consume exactly the same choice-point sequence as the
        // equivalent loop of single sends. Only the batch accounting is new.
        let msgs = payloads.len();
        let wire_bytes: u64 = payloads.iter().map(|p| u64::from(p.wire_len())).sum();
        for payload in payloads {
            self.send(to, payload)?;
        }
        if msgs > 0 {
            self.metrics.record_batch(msgs, wire_bytes);
            self.recorder.record(
                self.now().as_micros(),
                EventKind::BatchSend,
                u32::from(to),
                msgs as u32,
                wire_bytes as u32,
            );
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Incoming, NetError> {
        let (msg, blocked) = self.scheduler.recv(usize::from(self.id))?;
        self.metrics.record_blocked(blocked);
        self.note_recv(&msg);
        Ok(msg)
    }

    fn try_recv(&mut self) -> Result<Option<Incoming>, NetError> {
        let msg = self.scheduler.try_recv(usize::from(self.id))?;
        if let Some(msg) = &msg {
            self.note_recv(msg);
        }
        Ok(msg)
    }

    fn recv_deadline(&mut self, timeout: SimSpan) -> Result<Option<Incoming>, NetError> {
        let (msg, blocked) = self.scheduler.recv_deadline(usize::from(self.id), timeout)?;
        self.metrics.record_blocked(blocked);
        if let Some(msg) = &msg {
            self.note_recv(msg);
        }
        Ok(msg)
    }

    fn advance(&mut self, dt: SimSpan) {
        // An advance can only fail after a declared deadlock, at which point
        // the node will discover the error at its next recv.
        let _ = self.scheduler.advance(usize::from(self.id), dt);
    }

    fn now(&self) -> SimInstant {
        SimInstant::from_micros(self.scheduler.now(usize::from(self.id)))
    }

    fn metrics(&self) -> NetMetricsSnapshot {
        self.metrics.snapshot()
    }

    fn metrics_delta(&mut self) -> NetMetricsSnapshot {
        self.metrics.snapshot_delta()
    }

    fn attach_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }
}
