use std::fmt;

use sdso_net::NetError;

/// Errors produced by the virtual-time cluster.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// A node's closure returned a transport error.
    Net(NetError),
    /// A node's closure panicked; the payload's `Display` is captured when
    /// possible.
    NodePanic {
        /// Which node panicked.
        node: u16,
        /// Panic message, if it was a `&str`/`String` payload.
        message: String,
    },
    /// Every live node was blocked in `recv` with no message in flight: the
    /// protocol under test deadlocked. Contains per-node diagnostics.
    Deadlock(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Net(e) => write!(f, "transport error: {e}"),
            SimError::NodePanic { node, message } => {
                write!(f, "node {node} panicked: {message}")
            }
            SimError::Deadlock(detail) => write!(f, "distributed deadlock: {detail}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for SimError {
    fn from(e: NetError) -> Self {
        SimError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_node_for_panics() {
        let e = SimError::NodePanic { node: 5, message: "boom".into() };
        let s = e.to_string();
        assert!(s.contains('5') && s.contains("boom"));
    }
}
