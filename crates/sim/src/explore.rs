//! Bounded systematic exploration of message-delivery interleavings.
//!
//! The conservative scheduler makes every run deterministic by delivering
//! the virtual-time-minimal message first. That determinism is exactly what
//! a model checker needs: install a [`DeliveryOracle`] and the scheduler
//! asks it, at every *delivery race* (two or more senders with a message
//! deliverable at the same wake instant), which sender's message to hand
//! over first. Per-sender FIFO order is always preserved — the oracle only
//! permutes across senders, never within one link — so every explored
//! schedule is one the real network could have produced.
//!
//! [`Explorer`] then drives a depth-bounded DFS over the tree of oracle
//! choices. Branching happens *only* at genuine races (which plays the role
//! of persistent sets in DPOR), and runs whose delivery traces coincide are
//! pruned from re-expansion (sleep-set-flavoured deduplication), so the
//! enumerated schedules are pairwise-distinct interleavings.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use sdso_net::NodeId;

/// One deliverable message at a choice point: the earliest pending message
/// from one sender whose arrival time has been reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Sending node.
    pub from: NodeId,
    /// Global send sequence number (deterministic identity of the message).
    pub seq: u64,
    /// Virtual arrival time in microseconds.
    pub deliver_at: u64,
}

/// Decides which of several racing messages a receiver dequeues first.
///
/// `choose` is only consulted when `candidates.len() >= 2`; the returned
/// index is clamped into range. Calls are globally serialised by the
/// scheduler in virtual-time order, so a deterministic oracle yields a
/// deterministic run.
pub trait DeliveryOracle: Send + Sync + fmt::Debug {
    /// Returns the index into `candidates` of the message to deliver.
    fn choose(&self, receiver: NodeId, candidates: &[Candidate]) -> usize;
}

/// One resolved delivery race, as recorded by [`ReplayOracle`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoicePoint {
    /// The receiving node.
    pub receiver: NodeId,
    /// How many senders were racing (always >= 2).
    pub arity: usize,
    /// Which candidate index was delivered.
    pub chosen: usize,
    /// `(from, seq)` of the delivered message.
    pub delivered: (NodeId, u64),
}

/// A choice vector: the `i`-th element picks the candidate at the `i`-th
/// choice point of a run. Positions beyond the vector default to 0 (the
/// scheduler's native earliest-first order).
pub type Schedule = Vec<usize>;

/// Oracle that replays a preset [`Schedule`] and records every choice
/// point it passes, including the ones beyond the preset (which default
/// to candidate 0).
#[derive(Debug, Default)]
pub struct ReplayOracle {
    preset: Schedule,
    record: Mutex<Vec<ChoicePoint>>,
}

impl ReplayOracle {
    /// Creates an oracle that follows `preset` and then defaults to 0.
    pub fn new(preset: Schedule) -> Self {
        ReplayOracle { preset, record: Mutex::new(Vec::new()) }
    }

    /// The choice points encountered so far, in global virtual-time order.
    pub fn trace(&self) -> Vec<ChoicePoint> {
        self.record.lock().clone()
    }
}

impl DeliveryOracle for ReplayOracle {
    fn choose(&self, receiver: NodeId, candidates: &[Candidate]) -> usize {
        let mut rec = self.record.lock();
        let i = rec.len();
        let choice = self.preset.get(i).copied().unwrap_or(0).min(candidates.len() - 1);
        rec.push(ChoicePoint {
            receiver,
            arity: candidates.len(),
            chosen: choice,
            delivered: (candidates[choice].from, candidates[choice].seq),
        });
        choice
    }
}

/// An invariant violation found during exploration.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The minimized schedule that triggers the violation (trailing
    /// default-0 choices trimmed). Replay it with [`Explorer::replay`].
    pub schedule: Schedule,
    /// The scenario's description of what broke.
    pub message: String,
}

/// Summary of one exploration.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Total schedules executed.
    pub runs: usize,
    /// Pairwise-distinct delivery traces observed.
    pub distinct: usize,
    /// Longest choice-point trace seen in any run.
    pub max_choice_points: usize,
    /// True if the run cap stopped exploration before the frontier emptied.
    pub truncated: bool,
    /// First invariant violation, if any (exploration stops on it).
    pub violation: Option<Violation>,
}

/// Depth-bounded DFS over delivery-race choices.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Branch only at the first `depth` choice points of each run; later
    /// races follow the default earliest-first order.
    pub depth: usize,
    /// Hard cap on executed schedules.
    pub max_runs: usize,
}

impl Explorer {
    /// Creates an explorer with the given branching depth and run cap.
    pub fn new(depth: usize, max_runs: usize) -> Self {
        Explorer { depth, max_runs }
    }

    /// Systematically explores `scenario` under permuted delivery orders.
    ///
    /// The scenario must build a cluster with the given oracle installed
    /// (see `SimCluster::with_oracle`), run it, check its invariants, and
    /// return `Err(description)` if one fails. It is called once per
    /// schedule; exploration stops at the first violation, when the
    /// frontier is exhausted, or at `max_runs`.
    pub fn explore<F>(&self, mut scenario: F) -> ExploreReport
    where
        F: FnMut(Arc<ReplayOracle>) -> Result<(), String>,
    {
        let mut report = ExploreReport::default();
        let mut frontier: Vec<Schedule> = vec![Vec::new()];
        let mut seen: HashSet<Vec<(NodeId, NodeId, u64)>> = HashSet::new();
        while let Some(prefix) = frontier.pop() {
            if report.runs >= self.max_runs {
                report.truncated = true;
                break;
            }
            let oracle = Arc::new(ReplayOracle::new(prefix.clone()));
            report.runs += 1;
            if let Err(message) = scenario(Arc::clone(&oracle)) {
                report.violation = Some(Violation { schedule: minimize(&prefix), message });
                break;
            }
            let trace = oracle.trace();
            report.max_choice_points = report.max_choice_points.max(trace.len());
            let signature: Vec<(NodeId, NodeId, u64)> =
                trace.iter().map(|c| (c.receiver, c.delivered.0, c.delivered.1)).collect();
            if !seen.insert(signature) {
                continue; // equivalent interleaving already expanded
            }
            report.distinct += 1;
            // Expand alternatives only at positions this run discovered
            // (ancestors already own the earlier positions).
            let limit = trace.len().min(self.depth);
            for i in prefix.len()..limit {
                for alt in 1..trace[i].arity {
                    let mut next: Schedule = trace[..i].iter().map(|c| c.chosen).collect();
                    next.push(alt);
                    frontier.push(next);
                }
            }
        }
        report
    }

    /// Replays a single schedule (e.g. a minimized violation) through the
    /// scenario, returning the scenario's own verdict.
    ///
    /// # Errors
    ///
    /// Propagates the scenario's invariant-violation description.
    pub fn replay<F>(schedule: &Schedule, scenario: F) -> Result<(), String>
    where
        F: Fn(Arc<ReplayOracle>) -> Result<(), String>,
    {
        scenario(Arc::new(ReplayOracle::new(schedule.clone())))
    }
}

/// Trims trailing default-0 choices: they are implied by an empty tail.
fn minimize(schedule: &Schedule) -> Schedule {
    let mut s = schedule.clone();
    while s.last() == Some(&0) {
        s.pop();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkModel, SimCluster};
    use sdso_net::{Endpoint, Payload};

    /// Two senders race one message each into node 2 on an instant network.
    fn race_scenario(oracle: Arc<ReplayOracle>) -> Result<Vec<u8>, String> {
        let outcome = SimCluster::new(3, NetworkModel::instant())
            .with_oracle(oracle)
            .run(|mut ep| {
                if ep.node_id() == 2 {
                    let a = ep.recv()?.payload.bytes[0];
                    let b = ep.recv()?.payload.bytes[0];
                    Ok(vec![a, b])
                } else {
                    let tag = ep.node_id() as u8;
                    ep.send(2, Payload::data(vec![tag]))?;
                    Ok(vec![])
                }
            })
            .map_err(|e| e.to_string())?;
        let results = outcome.into_results().map_err(|e| e.to_string())?;
        Ok(results[2].clone())
    }

    #[test]
    fn default_schedule_matches_native_order() {
        let got = race_scenario(Arc::new(ReplayOracle::new(vec![]))).unwrap();
        assert_eq!(got, vec![0, 1], "earliest (seq-min) message first");
    }

    #[test]
    fn alternative_choice_flips_delivery_order() {
        let got = race_scenario(Arc::new(ReplayOracle::new(vec![1]))).unwrap();
        assert_eq!(got, vec![1, 0], "oracle picked sender 1 first");
    }

    #[test]
    fn explorer_enumerates_both_orders() {
        let ex = Explorer::new(4, 16);
        let mut orders = Vec::new();
        let report = ex.explore(|oracle| {
            let got = race_scenario(oracle)?;
            orders.push(got);
            Ok(())
        });
        assert!(report.violation.is_none());
        assert_eq!(report.distinct, 2);
        assert!(orders.contains(&vec![0, 1]) && orders.contains(&vec![1, 0]));
    }

    #[test]
    fn violation_is_reported_with_minimized_schedule() {
        let ex = Explorer::new(4, 16);
        let report = ex.explore(|oracle| {
            let got = race_scenario(oracle)?;
            if got == vec![1, 0] {
                return Err("reordering observed".to_owned());
            }
            Ok(())
        });
        let v = report.violation.expect("the bad order is reachable");
        assert_eq!(v.schedule, vec![1]);
        // The minimized schedule replays to the same failure.
        let replayed = Explorer::replay(&v.schedule, |oracle| {
            let got = race_scenario(oracle)?;
            if got == vec![1, 0] {
                return Err("reordering observed".to_owned());
            }
            Ok(())
        });
        assert!(replayed.is_err());
    }

    #[test]
    fn per_sender_fifo_is_never_violated() {
        // Node 0 sends two messages; node 1 sends one; receiver takes all
        // three. Whatever the oracle does, 0's first message precedes 0's
        // second.
        let scenario = |oracle: Arc<ReplayOracle>| -> Result<(), String> {
            let outcome = SimCluster::new(3, NetworkModel::instant())
                .with_oracle(oracle)
                .run(|mut ep| {
                    if ep.node_id() == 2 {
                        let mut from0 = Vec::new();
                        for _ in 0..3 {
                            let m = ep.recv()?;
                            if m.from == 0 {
                                from0.push(m.payload.bytes[0]);
                            }
                        }
                        Ok(from0)
                    } else if ep.node_id() == 0 {
                        ep.send(2, Payload::data(vec![10]))?;
                        ep.send(2, Payload::data(vec![11]))?;
                        Ok(vec![])
                    } else {
                        ep.send(2, Payload::data(vec![20]))?;
                        Ok(vec![])
                    }
                })
                .map_err(|e| e.to_string())?;
            let results = outcome.into_results().map_err(|e| e.to_string())?;
            if results[2] != vec![10, 11] {
                return Err(format!("per-sender FIFO broken: {:?}", results[2]));
            }
            Ok(())
        };
        let report = Explorer::new(6, 64).explore(scenario);
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.distinct >= 2, "the 0/1 race must branch");
    }
}
