use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use sdso_net::{FaultInjector, FaultPlan, NetError, NetMetricsSnapshot, NodeId, SimInstant};

use crate::endpoint::SimEndpoint;
use crate::error::SimError;
use crate::explore::DeliveryOracle;
use crate::model::NetworkModel;
use crate::scheduler::Scheduler;

/// A fixed-size virtual-time cluster.
///
/// [`SimCluster::run`] spawns one OS thread per node, hands each a
/// [`SimEndpoint`], and executes the supplied closure on every node to
/// completion. The run is deterministic: identical closures and model
/// produce identical results, clocks, and metrics on every execution.
#[derive(Debug)]
pub struct SimCluster {
    n: usize,
    model: NetworkModel,
    faults: Option<FaultPlan>,
    oracle: Option<Arc<dyn DeliveryOracle>>,
}

/// Everything one node produced during a run.
#[derive(Debug)]
pub struct NodeOutcome<T> {
    /// The closure's return value, or the error that stopped the node.
    pub result: Result<T, SimError>,
    /// The node's virtual clock when its closure returned.
    pub finished_at: SimInstant,
    /// The node's traffic counters.
    pub metrics: NetMetricsSnapshot,
}

/// The collected results of a cluster run, indexed by node id.
#[derive(Debug)]
pub struct ClusterOutcome<T> {
    /// One outcome per node.
    pub nodes: Vec<NodeOutcome<T>>,
}

impl<T> ClusterOutcome<T> {
    /// The latest per-node finish time — the virtual makespan of the run.
    pub fn makespan(&self) -> SimInstant {
        self.nodes.iter().map(|n| n.finished_at).max().unwrap_or(SimInstant::ZERO)
    }

    /// Cluster-wide traffic totals.
    pub fn total_metrics(&self) -> NetMetricsSnapshot {
        self.nodes.iter().fold(NetMetricsSnapshot::default(), |acc, n| acc.merged(&n.metrics))
    }

    /// Returns the per-node results, failing on the first node error.
    ///
    /// # Errors
    ///
    /// Returns the lowest-numbered node's error if any node failed.
    pub fn into_results(self) -> Result<Vec<T>, SimError> {
        self.nodes.into_iter().map(|n| n.result).collect()
    }
}

impl SimCluster {
    /// Creates a cluster of `n` nodes over `model`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds `NodeId::MAX`.
    pub fn new(n: usize, model: NetworkModel) -> Self {
        assert!(n > 0, "cluster must have at least one node");
        assert!(n <= usize::from(NodeId::MAX), "cluster too large");
        SimCluster { n, model, faults: None, oracle: None }
    }

    /// Installs a fault plan: every send is judged against it, in global
    /// virtual-time order, so a given `(plan, workload)` pair replays its
    /// drops, duplicates, delays, and partitions bit-identically.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Installs a delivery-choice oracle: whenever two or more senders race
    /// a message into one receiver, the oracle picks which is dequeued
    /// first. Used by the schedule explorer to enumerate interleavings.
    pub fn with_oracle(mut self, oracle: Arc<dyn DeliveryOracle>) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Runs `f` on every node (in parallel threads, serialised in virtual
    /// time) and collects per-node outcomes.
    ///
    /// The closure receives the node's endpoint; its `Result` becomes the
    /// node's [`NodeOutcome::result`]. A panicking node is reported as
    /// [`SimError::NodePanic`] without poisoning the other nodes (they will
    /// observe a deadlock if they depended on it).
    ///
    /// # Errors
    ///
    /// Node-level failures are reported per node inside [`ClusterOutcome`];
    /// this method itself only fails if a worker thread cannot be joined.
    pub fn run<T, F>(&self, f: F) -> Result<ClusterOutcome<T>, SimError>
    where
        T: Send + 'static,
        F: Fn(SimEndpoint) -> Result<T, NetError> + Send + Sync + 'static,
    {
        let scheduler = Arc::new(Scheduler::new(self.n, self.model));
        if let Some(plan) = &self.faults {
            scheduler.set_faults(FaultInjector::new(plan.clone()));
        }
        if let Some(oracle) = &self.oracle {
            scheduler.set_oracle(Arc::clone(oracle));
        }
        let f = Arc::new(f);

        /// Marks the node done even if the closure panics, so surviving
        /// nodes can detect the resulting deadlock instead of hanging.
        struct DoneGuard {
            scheduler: Arc<Scheduler>,
            id: usize,
        }
        impl Drop for DoneGuard {
            fn drop(&mut self) {
                self.scheduler.mark_done(self.id);
            }
        }

        let handles: Vec<_> = (0..self.n)
            .map(|id| {
                let scheduler = Arc::clone(&scheduler);
                let f = Arc::clone(&f);
                std::thread::Builder::new()
                    .name(format!("sim-node-{id}"))
                    .spawn(move || {
                        let endpoint = SimEndpoint::new(
                            id as NodeId,
                            scheduler.num_nodes(),
                            Arc::clone(&scheduler),
                        );
                        let metrics = endpoint.metrics_handle();
                        let guard = DoneGuard { scheduler: Arc::clone(&scheduler), id };
                        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| f(endpoint)));
                        drop(guard);
                        let finished_at = SimInstant::from_micros(scheduler.now(id));
                        let result = match outcome {
                            Ok(Ok(v)) => Ok(v),
                            Ok(Err(e)) => Err(SimError::Net(e)),
                            Err(panic) => Err(SimError::NodePanic {
                                node: id as u16,
                                message: panic_message(&*panic),
                            }),
                        };
                        NodeOutcome { result, finished_at, metrics: metrics.snapshot() }
                    })
                    .expect("spawn sim node thread")
            })
            .collect();

        let nodes = handles
            .into_iter()
            .enumerate()
            .map(|(id, h)| {
                h.join().unwrap_or_else(|panic| NodeOutcome {
                    result: Err(SimError::NodePanic {
                        node: id as u16,
                        message: panic_message(&*panic),
                    }),
                    finished_at: SimInstant::ZERO,
                    metrics: NetMetricsSnapshot::default(),
                })
            })
            .collect();
        Ok(ClusterOutcome { nodes })
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdso_net::{Endpoint, MsgClass, Payload};

    #[test]
    fn ring_run_is_deterministic() {
        fn run_once() -> (u64, Vec<u64>) {
            let outcome = SimCluster::new(4, NetworkModel::paper_testbed())
                .run(|mut ep| {
                    let n = ep.num_nodes() as NodeId;
                    let next = (ep.node_id() + 1) % n;
                    for round in 0..5u8 {
                        ep.send(next, Payload::data(vec![round; 256]))?;
                        let _ = ep.recv()?;
                    }
                    Ok(ep.now().as_micros())
                })
                .unwrap();
            let clocks: Vec<u64> =
                outcome.nodes.iter().map(|n| n.result.as_ref().copied().unwrap()).collect();
            (outcome.makespan().as_micros(), clocks)
        }
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "virtual-time runs must be bit-identical");
        assert!(a.0 > 0);
    }

    #[test]
    fn metrics_are_collected_per_node() {
        let outcome = SimCluster::new(3, NetworkModel::instant())
            .run(|mut ep| {
                if ep.node_id() == 0 {
                    ep.broadcast(&Payload::control(vec![1]))?;
                } else {
                    let _ = ep.recv()?;
                }
                Ok(())
            })
            .unwrap();
        assert_eq!(outcome.nodes[0].metrics.control_sent.msgs, 2);
        assert_eq!(outcome.nodes[1].metrics.control_recv.msgs, 1);
        assert_eq!(outcome.total_metrics().total_sent(), 2);
        let _ = MsgClass::Control;
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        let outcome = SimCluster::new(2, NetworkModel::instant())
            .run(|mut ep| {
                let _ = ep.recv()?; // nobody ever sends
                Ok(())
            })
            .unwrap();
        for node in &outcome.nodes {
            assert!(matches!(node.result, Err(SimError::Net(NetError::Deadlock(_)))));
        }
    }

    #[test]
    fn panicking_node_is_isolated() {
        let outcome = SimCluster::new(2, NetworkModel::instant())
            .run(|mut ep| {
                if ep.node_id() == 0 {
                    panic!("injected fault");
                }
                let _ = ep.recv()?;
                Ok(())
            })
            .unwrap();
        assert!(matches!(
            &outcome.nodes[0].result,
            Err(SimError::NodePanic { node: 0, message }) if message.contains("injected")
        ));
        // Node 1 waited for a message that will never come: deadlock.
        assert!(outcome.nodes[1].result.is_err());
    }

    #[test]
    fn virtual_makespan_is_independent_of_host_speed() {
        let outcome = SimCluster::new(2, NetworkModel::paper_testbed())
            .run(|mut ep| {
                if ep.node_id() == 0 {
                    // Host-side sleep must not show up in virtual time.
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    ep.send(1, Payload::data(vec![0u8; 2048]))?;
                } else {
                    let _ = ep.recv()?;
                }
                Ok(ep.now().as_micros())
            })
            .unwrap();
        let receiver_clock = *outcome.nodes[1].result.as_ref().unwrap();
        // send cpu (700) + tx (~1639) + latency (1000) + recv cpu (700).
        assert!((3_900..4_200).contains(&receiver_clock), "got {receiver_clock}");
    }

    #[test]
    fn recv_deadline_times_out_in_virtual_time() {
        let outcome = SimCluster::new(2, NetworkModel::instant())
            .run(|mut ep| {
                // Nobody sends: both nodes wait out their deadlines instead
                // of deadlocking, and their clocks land exactly on them.
                let got = ep.recv_deadline(sdso_net::SimSpan::from_micros(500))?;
                assert!(got.is_none());
                Ok(ep.now().as_micros())
            })
            .unwrap();
        for node in &outcome.nodes {
            assert_eq!(*node.result.as_ref().unwrap(), 500);
        }
    }

    #[test]
    fn recv_deadline_delivers_early_messages() {
        let outcome = SimCluster::new(2, NetworkModel::paper_testbed())
            .run(|mut ep| {
                if ep.node_id() == 0 {
                    ep.send(1, Payload::data(vec![7u8; 64]))?;
                    Ok(0)
                } else {
                    let msg = ep.recv_deadline(sdso_net::SimSpan::from_millis(100))?;
                    Ok(u64::from(msg.expect("arrives well before deadline").payload.bytes[0]))
                }
            })
            .unwrap();
        assert_eq!(*outcome.nodes[1].result.as_ref().unwrap(), 7);
        // The wait ended at the arrival, not the deadline.
        assert!(outcome.nodes[1].finished_at.as_micros() < 100_000);
    }

    #[test]
    fn fault_plan_drops_replay_bit_identically() {
        fn run_once() -> (u64, u64, u64) {
            let plan = sdso_net::FaultPlan::new(0xC0FFEE).with_drop(0.3);
            let outcome = SimCluster::new(2, NetworkModel::instant())
                .with_faults(plan)
                .run(|mut ep| {
                    if ep.node_id() == 0 {
                        for i in 0..100u8 {
                            ep.send(1, Payload::data(vec![i]))?;
                        }
                        Ok(0)
                    } else {
                        let mut got = 0u64;
                        while ep.recv_deadline(sdso_net::SimSpan::from_millis(5))?.is_some() {
                            got += 1;
                        }
                        Ok(got)
                    }
                })
                .unwrap();
            let drops = outcome.total_metrics().drops_injected;
            let got = *outcome.nodes[1].result.as_ref().unwrap();
            (drops, got, outcome.makespan().as_micros())
        }
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "same plan + workload must replay identically");
        assert!(a.0 > 0, "a 30% plan over 100 sends drops something");
        assert_eq!(a.0 + a.1, 100, "every message is dropped or delivered");
    }

    #[test]
    fn partition_severs_then_heals_in_virtual_time() {
        // Partition [0] vs [1] active for the first 10ms of virtual time.
        let plan = sdso_net::FaultPlan::new(1).with_partition(
            vec![0],
            SimInstant::ZERO,
            SimInstant::from_micros(10_000),
        );
        let outcome = SimCluster::new(2, NetworkModel::instant())
            .with_faults(plan)
            .run(|mut ep| {
                if ep.node_id() == 0 {
                    ep.send(1, Payload::data(vec![1]))?; // severed
                    ep.advance(sdso_net::SimSpan::from_millis(20));
                    ep.send(1, Payload::data(vec![2]))?; // healed
                    Ok(0)
                } else {
                    let msg = ep.recv_deadline(sdso_net::SimSpan::from_millis(100))?;
                    Ok(u64::from(msg.expect("post-heal message arrives").payload.bytes[0]))
                }
            })
            .unwrap();
        assert_eq!(*outcome.nodes[1].result.as_ref().unwrap(), 2);
        assert_eq!(outcome.total_metrics().drops_injected, 1);
    }

    #[test]
    fn into_results_surfaces_errors() {
        let outcome = SimCluster::new(2, NetworkModel::instant())
            .run(|mut ep| if ep.node_id() == 0 { ep.recv().map(|_| ()) } else { Ok(()) })
            .unwrap();
        assert!(outcome.into_results().is_err());
    }
}
