use sdso_net::SimSpan;

/// Timing model of the simulated network and protocol stack.
///
/// A message of modelled size `w` bytes sent from node `a` to node `b` at
/// sender-time `t` is handled as follows:
///
/// 1. the sender's clock advances by [`send_cpu`](Self::send_cpu) (protocol
///    stack, syscall, copy costs);
/// 2. transmission starts when the `a→b` link is free, i.e. at
///    `max(sender clock, link-busy time)`, and occupies the link for
///    `w ⋅ 8 / bandwidth` seconds;
/// 3. the message arrives [`latency`](Self::latency) after transmission ends
///    (propagation plus switch forwarding);
/// 4. when the receiver dequeues it, the receiver's clock advances by
///    [`recv_cpu`](Self::recv_cpu).
///
/// Links are full-duplex and per-destination (a switched network): `a→b`,
/// `a→c` and `b→a` are independent, but back-to-back sends on `a→b`
/// serialise. This mirrors the paper's switched 10 Mbps Ethernet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkModel {
    /// Sender-side per-message CPU cost.
    pub send_cpu: SimSpan,
    /// Receiver-side per-message CPU cost.
    pub recv_cpu: SimSpan,
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Propagation + switching latency per message.
    pub latency: SimSpan,
}

impl NetworkModel {
    /// Calibrated to the paper's testbed: SGI Indy workstations (MIPS R4400)
    /// on switched 10 Mbps Ethernet over TCP.
    ///
    /// * 10 Mbps ⇒ a 2048-byte frame occupies the link for ≈ 1.64 ms;
    /// * ≈ 1 ms propagation + store-and-forward switch latency;
    /// * ≈ 700 µs per-message TCP/IP stack cost on a mid-90s RISC host
    ///   (send and receive sides each).
    pub fn paper_testbed() -> Self {
        NetworkModel {
            send_cpu: SimSpan::from_micros(700),
            recv_cpu: SimSpan::from_micros(700),
            bandwidth_bps: 10_000_000,
            latency: SimSpan::from_micros(1_000),
        }
    }

    /// A late-90s upgrade of the testbed: switched 100 Mbps Ethernet with
    /// the same R4400-class hosts (stack cost dominated by the CPU, not
    /// the link, so it stays at 700 µs; switch latency drops to ≈ 200 µs).
    pub fn fast_ethernet() -> Self {
        NetworkModel {
            send_cpu: SimSpan::from_micros(700),
            recv_cpu: SimSpan::from_micros(700),
            bandwidth_bps: 100_000_000,
            latency: SimSpan::from_micros(200),
        }
    }

    /// A modern-LAN model (1 Gbps, 50 µs latency, 5 µs stacks) for
    /// sensitivity studies.
    pub fn modern_lan() -> Self {
        NetworkModel {
            send_cpu: SimSpan::from_micros(5),
            recv_cpu: SimSpan::from_micros(5),
            bandwidth_bps: 1_000_000_000,
            latency: SimSpan::from_micros(50),
        }
    }

    /// A datacenter fabric (10 Gbps, 10 µs latency, 2 µs kernel-bypass
    /// stacks): the fast end of the wire sweep, where per-message CPU and
    /// propagation dwarf serialisation and bandwidth savings stop mattering
    /// for latency.
    pub fn datacenter() -> Self {
        NetworkModel {
            send_cpu: SimSpan::from_micros(2),
            recv_cpu: SimSpan::from_micros(2),
            bandwidth_bps: 10_000_000_000,
            latency: SimSpan::from_micros(10),
        }
    }

    /// An idealised zero-cost network: useful to isolate protocol-logic
    /// effects (message counts) from timing effects in tests.
    pub fn instant() -> Self {
        NetworkModel {
            send_cpu: SimSpan::ZERO,
            recv_cpu: SimSpan::ZERO,
            bandwidth_bps: u64::MAX,
            latency: SimSpan::ZERO,
        }
    }

    /// Time a message of `wire_len` bytes occupies a link.
    pub fn transmission(&self, wire_len: u32) -> SimSpan {
        if self.bandwidth_bps == u64::MAX {
            return SimSpan::ZERO;
        }
        let bits = u64::from(wire_len) * 8;
        // micros = bits / (bps / 1e6), rounded up so a nonzero message never
        // transmits in zero time on a finite link.
        let micros = (bits * 1_000_000).div_ceil(self.bandwidth_bps);
        SimSpan::from_micros(micros)
    }
}

impl Default for NetworkModel {
    /// The paper-testbed calibration.
    fn default() -> Self {
        NetworkModel::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_transmission_of_2048_bytes_is_about_1_64_ms() {
        let m = NetworkModel::paper_testbed();
        let t = m.transmission(2048);
        assert!((1_600..1_700).contains(&t.as_micros()), "got {t}");
    }

    #[test]
    fn instant_model_is_free() {
        let m = NetworkModel::instant();
        assert_eq!(m.transmission(1 << 20), SimSpan::ZERO);
    }

    #[test]
    fn nonzero_message_takes_nonzero_time_on_finite_link() {
        let m = NetworkModel::paper_testbed();
        assert!(m.transmission(1).as_micros() >= 1);
    }

    #[test]
    fn default_is_paper_testbed() {
        assert_eq!(NetworkModel::default(), NetworkModel::paper_testbed());
    }

    #[test]
    fn sweep_presets_order_by_serialisation_time() {
        let frame = 2048;
        let t10m = NetworkModel::paper_testbed().transmission(frame);
        let t100m = NetworkModel::fast_ethernet().transmission(frame);
        let t1g = NetworkModel::modern_lan().transmission(frame);
        let t10g = NetworkModel::datacenter().transmission(frame);
        assert!(t10m > t100m && t100m > t1g && t1g > t10g, "{t10m} {t100m} {t1g} {t10g}");
        // 100 Mbps moves a 2048-byte frame in ≈ 164 µs, 10 Gbps in ≈ 2 µs.
        assert!((160..170).contains(&t100m.as_micros()), "got {t100m}");
        assert!(t10g.as_micros() <= 2, "got {t10g}");
    }
}
