//! Deterministic virtual-time cluster simulator for S-DSO protocol
//! evaluation.
//!
//! The paper evaluated its protocols on 16 SGI Indy workstations connected by
//! switched 10 Mbps Ethernet. This crate substitutes that testbed with a
//! *virtual-time* cluster: each simulated node runs the **real** protocol
//! code on its own OS thread, but every time-advancing operation (`send`,
//! `recv`, `advance`) is mediated by a conservative scheduler that executes
//! nodes in global virtual-time order. Message delivery times follow a
//! configurable [`NetworkModel`] (per-message CPU cost, link bandwidth, wire
//! latency), so results reflect the modelled network rather than host speed —
//! and every run is bit-for-bit deterministic.
//!
//! # Example
//!
//! ```
//! use sdso_net::{Endpoint, Payload, SimSpan};
//! use sdso_sim::{NetworkModel, SimCluster};
//!
//! # fn main() -> Result<(), sdso_sim::SimError> {
//! let outcome = SimCluster::new(2, NetworkModel::paper_testbed()).run(|mut ep| {
//!     if ep.node_id() == 0 {
//!         ep.send(1, Payload::data(vec![0u8; 2048]))?;
//!         Ok(ep.now())
//!     } else {
//!         let _ = ep.recv()?;
//!         Ok(ep.now())
//!     }
//! })?;
//! // The receiver's clock reflects transmission + latency of a 2 KiB frame.
//! let t1 = outcome.nodes[1].result.as_ref().unwrap();
//! assert!(t1.as_micros() > 2_000);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod cluster;
mod endpoint;
mod error;
pub mod explore;
mod model;
mod scheduler;

pub use cluster::{ClusterOutcome, NodeOutcome, SimCluster};
pub use endpoint::SimEndpoint;
pub use error::SimError;
pub use explore::{
    Candidate, ChoicePoint, DeliveryOracle, ExploreReport, Explorer, ReplayOracle, Schedule,
    Violation,
};
pub use model::NetworkModel;
pub use sdso_net::{FaultPlan, Partition};
