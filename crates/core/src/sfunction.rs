use sdso_net::NodeId;

use crate::clock::LogicalTime;
use crate::store::ObjectStore;

/// A semantic function ("s-function"): the application-supplied attribute
/// that tells the consistency layer *when* it must next exchange updates
/// with *which* process (paper §3.1).
///
/// After every successful rendezvous with `peer` at logical time `now` the
/// runtime calls [`SFunction::next_exchange`] to recompute that peer's entry
/// in the exchange list, passing the local object store *after* the
/// rendezvous updates were applied. The same method seeds the initial
/// schedule with `now == LogicalTime::ZERO` and the initial store.
///
/// # Correctness contract
///
/// Rendezvous are symmetric: when process *a* schedules an exchange with *b*
/// at time *t*, process *b* must schedule *a* at the same *t*. S-functions
/// therefore may only consult state both endpoints share — at rendezvous
/// time that is exactly the pair's mutually exchanged objects — never
/// process-local randomness. The runtime checks the cheap half of this
/// contract (returned times must be strictly after `now`); symmetry itself
/// is application responsibility and is validated for the game s-functions
/// by property tests.
///
/// # Example
///
/// A closure is an s-function; this one re-exchanges with every peer on
/// every tick (the BSYNC temporal worst case):
///
/// ```
/// use sdso_core::{LogicalTime, ObjectStore, SFunction};
///
/// let mut every_tick =
///     |_peer: u16, now: LogicalTime, _view: &ObjectStore| Some(now.plus(1));
/// let store = ObjectStore::new();
/// assert_eq!(
///     SFunction::next_exchange(&mut every_tick, 3, LogicalTime::ZERO, &store),
///     Some(LogicalTime::from_ticks(1)),
/// );
/// ```
pub trait SFunction {
    /// The next logical time this process must exchange with `peer`, or
    /// `None` if no future exchange is required. `view` is the local object
    /// store with all rendezvous updates applied.
    fn next_exchange(
        &mut self,
        peer: NodeId,
        now: LogicalTime,
        view: &ObjectStore,
    ) -> Option<LogicalTime>;

    /// Membership-delta hook: called once per view change, after the
    /// runtime has pruned leavers and before it schedules first exchanges
    /// with joiners. S-functions that cache per-peer spatial state (e.g.
    /// interaction predictions keyed by peer) override this to recompute
    /// their groups; stateless s-functions need not.
    fn on_view_change(&mut self, joined: &[NodeId], left: &[NodeId]) {
        let _ = (joined, left);
    }
}

impl<F> SFunction for F
where
    F: FnMut(NodeId, LogicalTime, &ObjectStore) -> Option<LogicalTime>,
{
    fn next_exchange(
        &mut self,
        peer: NodeId,
        now: LogicalTime,
        view: &ObjectStore,
    ) -> Option<LogicalTime> {
        self(peer, now, view)
    }
}

/// The trivial temporal s-function: exchange with every peer on every tick.
///
/// This is BSYNC's attribute — it encodes the worst-case assumption that
/// "all updates to shared objects must be made known to all other processes
/// whenever any object is modified".
#[derive(Debug, Clone, Copy, Default)]
pub struct EveryTick;

impl SFunction for EveryTick {
    fn next_exchange(
        &mut self,
        _peer: NodeId,
        now: LogicalTime,
        _view: &ObjectStore,
    ) -> Option<LogicalTime> {
        Some(now.plus(1))
    }
}

/// An s-function that never schedules exchanges (pure push-mode usage).
#[derive(Debug, Clone, Copy, Default)]
pub struct Never;

impl SFunction for Never {
    fn next_exchange(
        &mut self,
        _peer: NodeId,
        _now: LogicalTime,
        _view: &ObjectStore,
    ) -> Option<LogicalTime> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_tick_always_next() {
        let mut s = EveryTick;
        let store = ObjectStore::new();
        for t in 0..5 {
            let now = LogicalTime::from_ticks(t);
            assert_eq!(s.next_exchange(9, now, &store), Some(now.plus(1)));
        }
    }

    #[test]
    fn never_returns_none() {
        assert_eq!(Never.next_exchange(0, LogicalTime::ZERO, &ObjectStore::new()), None);
    }

    #[test]
    fn closures_are_sfunctions() {
        let mut halver = |peer: NodeId, now: LogicalTime, _view: &ObjectStore| {
            Some(now.plus(u64::from(peer) / 2 + 1))
        };
        assert_eq!(
            SFunction::next_exchange(&mut halver, 4, LogicalTime::ZERO, &ObjectStore::new()),
            Some(LogicalTime::from_ticks(3))
        );
    }
}
