//! The interest-routing hook: which pending diffs a live exchange ships.
//!
//! The paper's spatial constraint decides *when* and *with whom* updates
//! are exchanged (the s-function); a [`DiffRouter`] additionally decides
//! *which objects'* diffs travel on each live multicast exchange. The
//! runtime consults it in [`crate::SdsoRuntime::exchange`] for
//! `SendMode::Multicast` only:
//!
//! * slot drains become [`crate::SlottedBuffer::drain_slot_filtered`] —
//!   out-of-interest objects stay buffered (merged) instead of shipping;
//! * fresh local modifications are sent only to the due peers whose
//!   interest covers them, and buffered for everyone else.
//!
//! Broadcast exchanges — epoch barriers, the terminal sync — always drain
//! everything, so routing defers delivery but never loses an update:
//! final worlds stay bit-identical with and without a router. Suppression
//! is counted under `dso.shard.suppressed`
//! ([`crate::DsoMetrics::shard_suppressed`]).

use sdso_net::NodeId;

use crate::clock::LogicalTime;
use crate::object::ObjectId;
use crate::store::ObjectStore;

/// Decides, per destination, which objects' diffs a live multicast
/// exchange ships. Implementations live above the core (the sharding
/// layer maps objects to regions and peers to interest sets); the runtime
/// only asks yes/no per `(peer, object)` pair.
///
/// Implementations must be conservative: when a peer's interest is
/// unknown (e.g. its position has not been observed yet), return `true`.
/// Routing is a sender-local optimisation — it needs no symmetry between
/// endpoints, because rendezvous `Sync` messages are always sent and the
/// next broadcast exchange flushes whatever was withheld.
pub trait DiffRouter: Send + core::fmt::Debug {
    /// Called once at the start of every multicast exchange with the
    /// local replica state and the current logical time, so the router
    /// can refresh its interest map from the same observations the
    /// s-function uses. The default does nothing.
    fn observe(&mut self, store: &ObjectStore, now: LogicalTime) {
        let _ = (store, now);
    }

    /// Whether `object`'s pending diffs should be shipped to `peer` on
    /// this exchange. Returning `false` retains them (merged) in the
    /// peer's slot for a later exchange or broadcast flush.
    fn routes(&self, peer: NodeId, object: ObjectId) -> bool;

    /// Membership-change notification, mirroring
    /// [`crate::SFunction::on_view_change`]: interest sets are rebuilt at
    /// epoch boundaries (they are monotone *within* an epoch), and
    /// epoch-stamped handoff records can be retired because the barrier's
    /// broadcast exchange has flushed every slot. The default does
    /// nothing.
    fn on_view_change(&mut self, joined: &[NodeId], left: &[NodeId]) {
        let _ = (joined, left);
    }
}

/// A router that ships everything — installing it is equivalent to
/// installing no router at all. Useful as a default and in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouteAll;

impl DiffRouter for RouteAll {
    fn routes(&self, _peer: NodeId, _object: ObjectId) -> bool {
        true
    }
}
