//! Wire codec v2: varint/run-length diff encoding with optional XOR-delta.
//!
//! The v1 wire format ships every diff run as a fixed 8-byte header plus
//! literal bytes. For game-style workloads that rewrite whole blocks where
//! most bytes did not change, the payload is dominated by headers and
//! unchanged bytes. Codec v2 (negotiated per peer via
//! [`crate::wire::DsoMessage::CodecOffer`]) attacks both:
//!
//! * **Varint headers** — object ids, versions, counts, offsets and lengths
//!   are LEB128 varints; run offsets after the first are encoded as the gap
//!   from the previous run's end, so sorted run lists cost one or two bytes
//!   per header instead of eight.
//! * **Zero-RLE bodies** — run bodies are a token stream of
//!   `(zeros, literals)` pairs, so zero bytes collapse to a couple of bytes
//!   per stretch.
//! * **XOR-delta** — when enabled, each run body is XORed against the
//!   link's *shadow* of the peer's last-delivered state before run-length
//!   encoding, turning "rewrote the block but almost nothing changed" into
//!   long zero stretches. The encoder picks XOR or absolute per update,
//!   whichever is smaller, and records the choice in a flags byte.
//!
//! # Shadow lockstep
//!
//! Both ends of a link hold a [`ShadowState`]: per-object buffers seeded
//! lazily from the object's *initial* body (the `share` contract guarantees
//! identical initial contents cluster-wide) and advanced by exactly the
//! runs carried in [`Data2`](crate::wire::DsoMessage::Data2) messages on
//! that link, in delivery order. v1 fallback traffic advances neither side.
//! The shadows therefore stay a pure function of the Data2 sequence, which
//! the `basis` counter stamps on every message: a mismatch on decode means
//! the shadows are out of lockstep and the blob is rejected loudly instead
//! of silently applying garbage. This requires in-order exactly-once
//! delivery, which the runtime's admission layer provides (ARQ reliability
//! or a lossless FIFO transport).
//!
//! Decoding is bit-exact: `decode_updates(encode_updates(u)) == u` for
//! every update list, XORed or not, so protocol behaviour above the codec
//! is unchanged byte-for-byte.

use std::collections::HashMap;

use sdso_net::wire::{WireReader, WireWriter};
use sdso_net::NetError;

use crate::clock::LogicalTime;
use crate::diff::Diff;
use crate::object::{ObjectId, Version};
use crate::wire::WireUpdate;

/// The original fixed-header wire format.
pub const CODEC_V1: u8 = 1;
/// Varint/run-length (+ optional XOR-delta) encoding — this module.
pub const CODEC_V2: u8 = 2;

/// Per-update flags byte, bit 0: run bodies are XORed against the shadow.
const FLAG_XOR: u8 = 0b0000_0001;

/// Decoder inflation budget: a single run may not claim more than this many
/// bytes, bounding what a hostile tiny blob can make the decoder allocate
/// (zero-RLE legitimately inflates, so the blob length bounds nothing).
/// The encoder falls back to the v1 format for anything larger.
const MAX_RUN_LEN: u64 = 1 << 26;

/// A zero stretch inside a literal run must be at least this long before
/// splitting it out as its own token pays for the two header varints.
const ZERO_BREAK: usize = 3;

/// One direction of a link's codec v2 state: the XOR shadows plus the
/// count of `Data2` messages encoded (sender side) or decoded (receiver
/// side) since the last reset.
#[derive(Debug, Default)]
pub(crate) struct ShadowState {
    shadows: HashMap<ObjectId, Vec<u8>>,
    basis: u64,
}

impl ShadowState {
    /// `Data2` messages processed since the last reset.
    pub fn basis(&self) -> u64 {
        self.basis
    }

    /// Forgets everything — called when a peer departs or reconnects, so a
    /// restarted peer (whose shadows died with it) re-negotiates from a
    /// clean slate instead of decoding against state it no longer has.
    pub fn reset(&mut self) {
        self.shadows.clear();
        self.basis = 0;
    }

    /// The shadow for `object`, seeding it from `seed` on first touch.
    fn shadow(
        &mut self,
        object: ObjectId,
        seed: &mut dyn FnMut(ObjectId) -> Option<Vec<u8>>,
    ) -> Option<&mut Vec<u8>> {
        match self.shadows.entry(object) {
            std::collections::hash_map::Entry::Occupied(e) => Some(e.into_mut()),
            std::collections::hash_map::Entry::Vacant(e) => seed(object).map(|b| e.insert(b)),
        }
    }

    /// Advances the shadows past one delivered batch: every run's plain
    /// bytes overwrite the shadow, growing it with zeros when a run reaches
    /// past its end (deterministic on both sides).
    fn apply_batch(&mut self, updates: &[WireUpdate]) {
        for u in updates {
            let Some(shadow) = self.shadows.get_mut(&u.object) else { continue };
            for (offset, bytes) in u.diff.runs() {
                let end = offset as usize + bytes.len();
                if shadow.len() < end {
                    shadow.resize(end, 0);
                }
                shadow[offset as usize..end].copy_from_slice(bytes);
            }
        }
    }
}

/// Encodes an update batch into a codec-v2 blob, choosing XOR or absolute
/// bodies per update by encoded size.
///
/// Returns `(basis, blob)` — the basis to stamp on the `Data2` message —
/// and advances `state` (shadows and basis) past the batch. Returns `None`
/// when the batch cannot be represented (a run above the decoder budget,
/// or XOR requested for an object `seed` cannot produce): the caller must
/// fall back to a v1 `Data` message, and the basis and every shadow's
/// contents are left unadvanced so both ends skip the batch symmetrically.
pub(crate) fn encode_updates(
    updates: &[WireUpdate],
    xor: bool,
    state: &mut ShadowState,
    seed: &mut dyn FnMut(ObjectId) -> Option<Vec<u8>>,
) -> Option<(u64, Vec<u8>)> {
    for u in updates {
        for (_, bytes) in u.diff.runs() {
            if bytes.len() as u64 > MAX_RUN_LEN {
                return None;
            }
        }
        if xor && state.shadow(u.object, seed).is_none() {
            return None;
        }
    }

    let mut w = WireWriter::new();
    w.put_varint(updates.len() as u64);
    let mut scratch = Vec::new();
    for u in updates {
        w.put_varint(u.object.0 as u64);
        w.put_varint(u.version.time.as_ticks());
        w.put_varint(u.version.writer as u64);
        // XOR only when it beats absolute encoding for this update — an
        // update that genuinely changed most bytes (or a shadow made stale
        // by v1 fallback batches) costs the same or more XORed. The
        // preflight loop seeded every shadow we need, but the encoder
        // stays total anyway: a missing shadow takes the absolute arm.
        let shadow = if xor { state.shadows.get(&u.object) } else { None };
        let use_xor = shadow.is_some_and(|shadow| {
            let mut abs_cost = 0usize;
            let mut xor_cost = 0usize;
            for (offset, bytes) in u.diff.runs() {
                abs_cost += rle_cost(bytes);
                xor_into(&mut scratch, bytes, shadow, offset);
                xor_cost += rle_cost(&scratch);
            }
            xor_cost < abs_cost
        });
        w.put_u8(if use_xor { FLAG_XOR } else { 0 });
        w.put_varint(u.diff.run_count() as u64);
        let mut prev_end = 0u64;
        let mut first = true;
        for (offset, bytes) in u.diff.runs() {
            let gap = if first { offset as u64 } else { offset as u64 - prev_end };
            first = false;
            prev_end = offset as u64 + bytes.len() as u64;
            w.put_varint(gap);
            w.put_varint(bytes.len() as u64);
            match shadow {
                Some(shadow) if use_xor => {
                    xor_into(&mut scratch, bytes, shadow, offset);
                    rle_encode(&mut w, &scratch);
                }
                _ => rle_encode(&mut w, bytes),
            }
        }
    }

    if xor {
        state.apply_batch(updates);
    }
    let basis = state.basis;
    state.basis += 1;
    Some((basis, w.into_bytes().to_vec()))
}

/// Decodes a codec-v2 blob back into the exact update batch the sender
/// encoded, and advances `state` past it.
///
/// # Errors
///
/// Returns [`NetError::Codec`] on a basis mismatch (shadows out of
/// lockstep), an XORed update whose object `seed` cannot produce, or any
/// malformed/hostile input. `state` is only advanced on success.
pub(crate) fn decode_updates(
    blob: &[u8],
    basis: u64,
    state: &mut ShadowState,
    seed: &mut dyn FnMut(ObjectId) -> Option<Vec<u8>>,
) -> Result<Vec<WireUpdate>, NetError> {
    if basis != state.basis {
        return Err(NetError::Codec(format!(
            "codec basis mismatch: message {basis}, link {} — XOR shadows out of lockstep",
            state.basis
        )));
    }
    let mut r = WireReader::new(blob);
    let count = r.get_varint()?;
    if count > r.remaining() as u64 {
        return Err(NetError::Codec(format!(
            "update count {count} exceeds remaining {} bytes",
            r.remaining()
        )));
    }
    let mut updates = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let object = r.get_varint()?;
        let object = u32::try_from(object)
            .map(ObjectId)
            .map_err(|_| NetError::Codec(format!("object id {object} exceeds u32")))?;
        let time = LogicalTime::from_ticks(r.get_varint()?);
        let writer = r.get_varint()?;
        let writer = u16::try_from(writer)
            .map_err(|_| NetError::Codec(format!("writer id {writer} exceeds u16")))?;
        let flags = r.get_u8()?;
        if flags & !FLAG_XOR != 0 {
            return Err(NetError::Codec(format!("unknown codec flags {flags:#04x}")));
        }
        let nruns = r.get_varint()?;
        if nruns > r.remaining() as u64 {
            return Err(NetError::Codec(format!(
                "run count {nruns} exceeds remaining {} bytes",
                r.remaining()
            )));
        }
        let mut runs = Vec::with_capacity(nruns as usize);
        let mut prev_end = 0u64;
        let mut first = true;
        for _ in 0..nruns {
            let gap = r.get_varint()?;
            let offset = if first { Some(gap) } else { prev_end.checked_add(gap) };
            first = false;
            let len = r.get_varint()?;
            if len > MAX_RUN_LEN {
                return Err(NetError::Codec(format!(
                    "run length {len} exceeds decoder budget {MAX_RUN_LEN}"
                )));
            }
            let end = offset.and_then(|o| o.checked_add(len));
            let (offset, end) = match (offset, end) {
                (Some(o), Some(e)) if e <= u32::MAX as u64 => (o, e),
                _ => {
                    return Err(NetError::Codec("diff run exceeds u32 address space".into()));
                }
            };
            prev_end = end;
            let mut body = rle_decode(&mut r, len as usize)?;
            if flags & FLAG_XOR != 0 {
                let shadow = state.shadow(object, seed).ok_or_else(|| {
                    NetError::Codec(format!("XORed update for {object:?} with no seedable shadow"))
                })?;
                // XOR reference is the *pre-batch* shadow: the sender
                // decided and encoded the whole batch before advancing.
                unxor_in_place(&mut body, shadow, offset as u32);
            }
            runs.push((offset as u32, body));
        }
        // Seed unconditionally (not just on XOR) so both ends hold shadows
        // for the same object set once traffic flows, keeping later XOR
        // decisions honest after a v1 fallback.
        let _ = state.shadow(object, seed);
        updates.push(WireUpdate {
            object,
            diff: Diff::from_sorted_runs(runs)?,
            version: Version::new(time, writer),
        });
    }
    r.finish()?;
    state.apply_batch(&updates);
    state.basis += 1;
    Ok(updates)
}

/// XORs `bytes` (a run at absolute `offset`) against the shadow into
/// `scratch`, treating bytes past the shadow's end as zero.
fn xor_into(scratch: &mut Vec<u8>, bytes: &[u8], shadow: &[u8], offset: u32) {
    scratch.clear();
    scratch.extend_from_slice(bytes);
    let start = offset as usize;
    for (i, b) in scratch.iter_mut().enumerate() {
        if let Some(&s) = shadow.get(start + i) {
            *b ^= s;
        }
    }
}

/// Reverses [`xor_into`] in place on a decoded body.
fn unxor_in_place(body: &mut [u8], shadow: &[u8], offset: u32) {
    let start = offset as usize;
    for (i, b) in body.iter_mut().enumerate() {
        if let Some(&s) = shadow.get(start + i) {
            *b ^= s;
        }
    }
}

/// Walks `bytes` as alternating (zeros, literal) segments — the token
/// structure both [`rle_cost`] and [`rle_encode`] emit. A zero stretch
/// inside a literal shorter than [`ZERO_BREAK`] is cheaper shipped as
/// literal bytes than split into its own token.
fn for_each_token(bytes: &[u8], mut f: impl FnMut(usize, &[u8])) {
    let mut i = 0usize;
    while i < bytes.len() {
        let z0 = i;
        while i < bytes.len() && bytes[i] == 0 {
            i += 1;
        }
        let nzeros = i - z0;
        let l0 = i;
        loop {
            while i < bytes.len() && bytes[i] != 0 {
                i += 1;
            }
            if i == bytes.len() {
                break;
            }
            let z = i;
            while i < bytes.len() && bytes[i] == 0 {
                i += 1;
            }
            if i - z >= ZERO_BREAK || i == bytes.len() {
                i = z;
                break;
            }
        }
        f(nzeros, &bytes[l0..i]);
    }
}

/// Encoded size in bytes of `bytes` as a zero-RLE token stream.
fn rle_cost(bytes: &[u8]) -> usize {
    let mut cost = 0usize;
    for_each_token(bytes, |nzeros, lit| {
        cost += varint_len(nzeros as u64) + varint_len(lit.len() as u64) + lit.len();
    });
    cost
}

/// Encoded size of `v` as an LEB128 varint.
fn varint_len(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7)
}

/// Emits `bytes` as a zero-RLE token stream: repeated
/// `(varint zeros, varint literals, literal bytes)` until the run length
/// (carried in the run header) is covered.
///
/// sdso-check: hot-path
fn rle_encode(w: &mut WireWriter, bytes: &[u8]) {
    for_each_token(bytes, |nzeros, lit| {
        w.put_varint(nzeros as u64);
        w.put_varint(lit.len() as u64);
        w.put_raw(lit);
    });
}

/// Reads a zero-RLE token stream producing exactly `len` bytes.
fn rle_decode(r: &mut WireReader<'_>, len: usize) -> Result<Vec<u8>, NetError> {
    let mut out = Vec::with_capacity(len.min(r.remaining().max(64)));
    while out.len() < len {
        let nzeros = r.get_varint()?;
        let nlit = r.get_varint()?;
        if nzeros == 0 && nlit == 0 {
            return Err(NetError::Codec("empty zero-RLE token".into()));
        }
        let total = (out.len() as u64)
            .checked_add(nzeros)
            .and_then(|t| t.checked_add(nlit))
            .ok_or_else(|| NetError::Codec("zero-RLE token overflows".into()))?;
        if total > len as u64 {
            return Err(NetError::Codec(format!(
                "zero-RLE tokens produce {total} bytes, run header said {len}"
            )));
        }
        out.resize(out.len() + nzeros as usize, 0);
        out.extend_from_slice(r.get_raw(nlit as usize)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(object: u32, diff: Diff, ticks: u64, writer: u16) -> WireUpdate {
        WireUpdate {
            object: ObjectId(object),
            diff,
            version: Version::new(LogicalTime::from_ticks(ticks), writer),
        }
    }

    fn no_seed(_: ObjectId) -> Option<Vec<u8>> {
        None
    }

    fn roundtrip_abs(updates: Vec<WireUpdate>) {
        let mut tx = ShadowState::default();
        let mut rx = ShadowState::default();
        let (basis, blob) =
            encode_updates(&updates, false, &mut tx, &mut no_seed).expect("encodable");
        let decoded = decode_updates(&blob, basis, &mut rx, &mut no_seed).unwrap();
        assert_eq!(decoded, updates);
    }

    #[test]
    fn absolute_roundtrip_is_bit_exact() {
        roundtrip_abs(vec![]);
        roundtrip_abs(vec![upd(3, Diff::single(2, vec![1, 2, 3]), 9, 1)]);
        roundtrip_abs(vec![
            upd(0, Diff::single(0, vec![0; 64]), 1, 0),
            upd(u32::MAX, Diff::single(u32::MAX - 8, vec![7; 8]), u64::MAX, u16::MAX),
            upd(5, Diff::empty(), 3, 2),
        ]);
        // Multi-run diffs exercise the gap encoding.
        let old = vec![0u8; 256];
        let mut new = old.clone();
        new[3] = 1;
        new[100] = 2;
        new[255] = 3;
        roundtrip_abs(vec![upd(1, Diff::between(&old, &new), 4, 4)]);
    }

    #[test]
    fn zero_heavy_updates_shrink_dramatically() {
        // A 4 KiB run where only 1% of bytes are non-zero: v1 ships the
        // whole body; v2's zero-RLE collapses it.
        let mut body = vec![0u8; 4096];
        for i in (0..4096).step_by(100) {
            body[i] = 0xAB;
        }
        let updates = vec![upd(1, Diff::single(0, body), 1, 1)];
        let mut tx = ShadowState::default();
        let (_, blob) = encode_updates(&updates, false, &mut tx, &mut no_seed).unwrap();
        let v1_len: usize = updates.iter().map(|u| u.diff.encoded_len()).sum();
        assert!(blob.len() * 5 < v1_len, "expected ≥5× shrink, got {} vs {v1_len}", blob.len());
    }

    #[test]
    fn xor_delta_roundtrips_and_beats_absolute() {
        // Peer's shadow holds the previous block contents; the new write
        // changes 8 of 1024 bytes but ships the whole block (the game's
        // write pattern). XOR turns it into almost all zeros.
        let initial: Vec<u8> = (0..1024u32).map(|i| (i * 7) as u8).collect();
        let mut new_body = initial.clone();
        for i in 0..8 {
            new_body[i * 100] ^= 0xFF;
        }
        let updates = vec![upd(2, Diff::single(0, new_body), 5, 3)];

        let mut seed = |o: ObjectId| (o == ObjectId(2)).then(|| initial.clone());
        let mut tx = ShadowState::default();
        let mut rx = ShadowState::default();
        let (b_xor, xor_blob) =
            encode_updates(&updates, true, &mut tx, &mut seed).expect("encodable");
        let decoded = decode_updates(&xor_blob, b_xor, &mut rx, &mut seed).unwrap();
        assert_eq!(decoded, updates, "XOR decode must be bit-exact");

        let (_, abs_blob) =
            encode_updates(&updates, false, &mut ShadowState::default(), &mut no_seed).unwrap();
        assert!(
            xor_blob.len() * 10 < abs_blob.len(),
            "XOR blob {} should be ≥10× smaller than absolute {}",
            xor_blob.len(),
            abs_blob.len()
        );
    }

    #[test]
    fn xor_shadows_stay_in_lockstep_across_batches() {
        let initial = vec![0x55u8; 512];
        let mut seed_tx = {
            let initial = initial.clone();
            move |_: ObjectId| Some(initial.clone())
        };
        let mut seed_rx = {
            let initial = initial.clone();
            move |_: ObjectId| Some(initial.clone())
        };
        let mut tx = ShadowState::default();
        let mut rx = ShadowState::default();
        let mut reference = initial.clone();
        for round in 0..20u64 {
            let mut body = reference.clone();
            let at = (round as usize * 37) % 500;
            body[at] = round as u8;
            body[at + 3] = !(round as u8);
            let updates = vec![upd(9, Diff::between(&reference, &body), round, 1)];
            let (basis, blob) =
                encode_updates(&updates, true, &mut tx, &mut seed_tx).expect("encodable");
            assert_eq!(basis, round);
            let decoded = decode_updates(&blob, basis, &mut rx, &mut seed_rx).unwrap();
            assert_eq!(decoded, updates, "round {round}");
            for u in &decoded {
                u.diff.apply(&mut reference).unwrap();
            }
        }
    }

    #[test]
    fn basis_mismatch_is_a_loud_error() {
        let updates = vec![upd(1, Diff::single(0, vec![1, 2, 3]), 1, 1)];
        let mut tx = ShadowState::default();
        let (basis, blob) = encode_updates(&updates, false, &mut tx, &mut no_seed).unwrap();
        let mut rx = ShadowState { basis: basis + 1, ..ShadowState::default() };
        let err = decode_updates(&blob, basis, &mut rx, &mut no_seed).unwrap_err();
        assert!(err.to_string().contains("lockstep"), "{err}");
    }

    #[test]
    fn xor_without_seed_falls_back_to_v1() {
        let updates = vec![upd(7, Diff::single(0, vec![1; 16]), 1, 1)];
        let mut tx = ShadowState::default();
        assert!(encode_updates(&updates, true, &mut tx, &mut no_seed).is_none());
        assert_eq!(tx.basis(), 0, "failed encode must not advance the basis");
    }

    #[test]
    fn oversized_run_falls_back_to_v1() {
        let updates = vec![upd(1, Diff::single(0, vec![1; (MAX_RUN_LEN + 1) as usize]), 1, 1)];
        let mut tx = ShadowState::default();
        assert!(encode_updates(&updates, false, &mut tx, &mut no_seed).is_none());
    }

    #[test]
    fn hostile_blobs_error_and_never_panic() {
        let updates = vec![
            upd(3, Diff::single(2, vec![0, 1, 0, 0, 0, 2]), 9, 1),
            upd(4, Diff::single(40, vec![5; 30]), 10, 2),
        ];
        let mut tx = ShadowState::default();
        let (_, blob) = encode_updates(&updates, false, &mut tx, &mut no_seed).unwrap();
        // Truncations.
        for cut in 0..blob.len() {
            let mut rx = ShadowState::default();
            assert!(decode_updates(&blob[..cut], 0, &mut rx, &mut no_seed).is_err());
        }
        // Single-byte corruption: must error or decode to something else,
        // never panic or hang.
        for i in 0..blob.len() {
            let mut bad = blob.to_vec();
            bad[i] = 0xFF;
            let mut rx = ShadowState::default();
            let _ = decode_updates(&bad, 0, &mut rx, &mut no_seed);
        }
        // A huge claimed run length must not allocate its claim.
        let mut w = WireWriter::new();
        w.put_varint(1); // one update
        w.put_varint(1); // object
        w.put_varint(0); // time
        w.put_varint(0); // writer
        w.put_u8(0); // flags
        w.put_varint(1); // one run
        w.put_varint(0); // offset
        w.put_varint(u32::MAX as u64); // far beyond the decoder budget
        let mut rx = ShadowState::default();
        let err = decode_updates(&w.into_bytes(), 0, &mut rx, &mut no_seed).unwrap_err();
        assert!(err.to_string().contains("budget"), "{err}");
    }

    #[test]
    fn empty_rle_token_rejected() {
        let mut w = WireWriter::new();
        w.put_varint(1); // one update
        w.put_varint(1); // object
        w.put_varint(0); // time
        w.put_varint(0); // writer
        w.put_u8(0); // flags
        w.put_varint(1); // one run
        w.put_varint(0); // offset
        w.put_varint(4); // len 4
        w.put_varint(0); // token: 0 zeros,
        w.put_varint(0); //        0 literals — would loop forever
        let mut rx = ShadowState::default();
        assert!(decode_updates(&w.into_bytes(), 0, &mut rx, &mut no_seed).is_err());
    }

    #[test]
    fn reset_clears_shadows_and_basis() {
        let initial = vec![1u8; 64];
        let mut seed = move |_: ObjectId| Some(initial.clone());
        let mut tx = ShadowState::default();
        let updates = vec![upd(1, Diff::single(0, vec![2; 64]), 1, 1)];
        encode_updates(&updates, true, &mut tx, &mut seed).unwrap();
        assert_eq!(tx.basis(), 1);
        assert!(!tx.shadows.is_empty());
        tx.reset();
        assert_eq!(tx.basis(), 0);
        assert!(tx.shadows.is_empty());
    }

    #[test]
    fn varint_len_matches_encoder() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut w = WireWriter::new();
            w.put_varint(v);
            assert_eq!(w.len(), varint_len(v), "varint_len({v})");
        }
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    /// A hostile alphabet: heavily biased toward the RLE edge cases
    /// (zero stretches, 0xFF walls) with a sprinkle of everything else.
    fn arb_body(max: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(any::<u8>(), 0..max).prop_map(|raw| {
            raw.into_iter()
                .map(|b| match b {
                    // ~47% zeros: long runs that must round-trip through
                    // the zero-RLE arm, including runs crossing ZERO_BREAK.
                    0..=119 => 0u8,
                    // ~23% 0xFF walls: worst case for the literal arm.
                    120..=179 => 0xFF,
                    other => other,
                })
                .collect()
        })
    }

    /// Arbitrary well-formed update batches: sorted, possibly adjacent,
    /// possibly empty runs (a zero-length run and a zero-run diff are
    /// both legal wire states), hostile bodies.
    fn arb_updates() -> impl Strategy<Value = Vec<WireUpdate>> {
        let run = (0u32..40, arb_body(48));
        let update = (0u32..1000, proptest::collection::vec(run, 0..5), 0u64..10_000, any::<u16>());
        proptest::collection::vec(update, 0..6).prop_map(|raw| {
            raw.into_iter()
                .map(|(object, raw_runs, ticks, writer)| {
                    let mut offset = 0u64;
                    let mut runs = Vec::new();
                    for (gap, body) in raw_runs {
                        offset += u64::from(gap);
                        runs.push((offset as u32, body.clone()));
                        offset += body.len() as u64;
                    }
                    WireUpdate {
                        object: ObjectId(object),
                        diff: Diff::from_sorted_runs(runs).expect("runs built sorted"),
                        version: Version::new(LogicalTime::from_ticks(ticks), writer),
                    }
                })
                .collect()
        })
    }

    fn no_seed(_: ObjectId) -> Option<Vec<u8>> {
        None
    }

    proptest! {
        #[test]
        fn rle_stream_roundtrips_and_cost_is_exact(body in arb_body(512)) {
            let mut w = WireWriter::new();
            rle_encode(&mut w, &body);
            prop_assert_eq!(w.len(), rle_cost(&body), "rle_cost must price the real stream");
            let encoded = w.into_bytes();
            let mut r = WireReader::new(&encoded);
            let decoded = rle_decode(&mut r, body.len()).unwrap();
            prop_assert_eq!(decoded, body);
            prop_assert_eq!(r.remaining(), 0, "decode must consume the whole stream");
        }

        #[test]
        fn absolute_batches_roundtrip_bit_exact(updates in arb_updates()) {
            let mut tx = ShadowState::default();
            let mut rx = ShadowState::default();
            let (basis, blob) =
                encode_updates(&updates, false, &mut tx, &mut no_seed).expect("encodable");
            let decoded = decode_updates(&blob, basis, &mut rx, &mut no_seed).unwrap();
            prop_assert_eq!(decoded, updates);
        }

        #[test]
        fn max_offset_runs_roundtrip(len in 1usize..64, back in 0u32..128, body in arb_body(64)) {
            // Runs butted against the top of the u32 address space: the
            // gap encoding must survive offsets the varint widens to five
            // bytes, and offset+len == u32::MAX exactly must be legal.
            let len = len.max(body.len().max(1));
            let mut bytes = body;
            bytes.resize(len, 0xA5);
            let offset = u32::MAX - bytes.len() as u32 - back;
            let updates = vec![WireUpdate {
                object: ObjectId(u32::MAX),
                diff: Diff::from_sorted_runs(vec![(offset, bytes)]).unwrap(),
                version: Version::new(LogicalTime::from_ticks(u64::MAX), u16::MAX),
            }];
            let mut tx = ShadowState::default();
            let mut rx = ShadowState::default();
            let (basis, blob) =
                encode_updates(&updates, false, &mut tx, &mut no_seed).expect("encodable");
            let decoded = decode_updates(&blob, basis, &mut rx, &mut no_seed).unwrap();
            prop_assert_eq!(decoded, updates);
        }

        #[test]
        fn xor_delta_is_identity_under_randomized_frontiers(
            initial in arb_body(96),
            rounds in proptest::collection::vec(
                (proptest::collection::vec((0u32..96, arb_body(16)), 1..4), any::<bool>()),
                1..12,
            ),
        ) {
            // Both ends start from the shared initial body, then the
            // acked frontier (what the shadows have seen) is randomized
            // by interleaving v1-fallback rounds that advance neither
            // shadow: XORed batches must still decode to the exact
            // encoder input, whatever state the frontier stopped at.
            let object = ObjectId(7);
            let size = initial.len().max(1);
            let mut seed_tx = {
                let initial = initial.clone();
                move |_: ObjectId| Some(initial.clone())
            };
            let mut seed_rx = {
                let initial = initial.clone();
                move |_: ObjectId| Some(initial.clone())
            };
            let mut tx = ShadowState::default();
            let mut rx = ShadowState::default();
            let mut reference = {
                let mut r = initial.clone();
                r.resize(size, 0);
                r
            };
            for (round, (writes, skip_as_v1)) in rounds.into_iter().enumerate() {
                let mut image = reference.clone();
                for (off, bytes) in writes {
                    let off = off as usize % size;
                    for (i, b) in bytes.iter().enumerate() {
                        if off + i < size {
                            image[off + i] = *b;
                        }
                    }
                }
                let updates = vec![WireUpdate {
                    object,
                    diff: Diff::between(&reference, &image),
                    version: Version::new(LogicalTime::from_ticks(round as u64 + 1), 1),
                }];
                if skip_as_v1 {
                    // A v1-fallback batch: delivered out of band, advances
                    // no shadow — the frontier now lags the real state.
                    reference = image;
                    continue;
                }
                let basis_before = tx.basis();
                let (basis, blob) =
                    encode_updates(&updates, true, &mut tx, &mut seed_tx).expect("seeded");
                prop_assert_eq!(basis, basis_before);
                let decoded = decode_updates(&blob, basis, &mut rx, &mut seed_rx).unwrap();
                prop_assert_eq!(&decoded, &updates, "apply∘encode must be the identity");
                prop_assert_eq!(tx.basis(), rx.basis(), "lockstep");
                reference = image;
            }
            // Whatever the frontier did, both shadows agree byte-for-byte.
            prop_assert_eq!(tx.shadows.get(&object), rx.shadows.get(&object));
        }
    }
}
