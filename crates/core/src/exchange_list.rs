use std::collections::BTreeMap;

use sdso_net::NodeId;

use crate::clock::LogicalTime;

/// The time-ordered list of `(exchange-time, process)` pairs (paper Fig. 2).
///
/// "Only those processes requiring future exchanges appear in the list. The
/// list is ordered earliest exchange-time first and not by process IDs."
/// Each peer appears at most once; rescheduling a peer replaces its entry.
///
/// # Example
///
/// ```
/// use sdso_core::{ExchangeList, LogicalTime};
///
/// let mut list = ExchangeList::new();
/// list.schedule(2, LogicalTime::from_ticks(5));
/// list.schedule(1, LogicalTime::from_ticks(3));
/// assert_eq!(list.due(LogicalTime::from_ticks(3)), vec![1]);
/// assert_eq!(list.due(LogicalTime::from_ticks(5)), vec![1, 2]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExchangeList {
    /// (time, peer) → (), ordered; the peer index below keeps entries unique.
    by_time: BTreeMap<(LogicalTime, NodeId), ()>,
    by_peer: BTreeMap<NodeId, LogicalTime>,
}

impl ExchangeList {
    /// An empty list.
    pub fn new() -> Self {
        ExchangeList::default()
    }

    /// Schedules (or reschedules) an exchange with `peer` at `time`.
    pub fn schedule(&mut self, peer: NodeId, time: LogicalTime) {
        if let Some(old) = self.by_peer.insert(peer, time) {
            self.by_time.remove(&(old, peer));
        }
        self.by_time.insert((time, peer), ());
    }

    /// Schedules an exchange with `peer` at `time`, keeping the *earlier*
    /// of the existing entry and `time` if one is already present.
    ///
    /// This is the merge operation for region-sharded scheduling: when a
    /// boundary-straddling peer appears in several region exchange groups,
    /// each group proposes its own exchange time, and the peer must end up
    /// with exactly one entry — the earliest proposal — rather than one
    /// per group (which would make it rendezvous, and receive diffs, once
    /// per overlapping region).
    pub fn schedule_min(&mut self, peer: NodeId, time: LogicalTime) {
        match self.by_peer.get(&peer) {
            Some(&existing) if existing <= time => {}
            _ => self.schedule(peer, time),
        }
    }

    /// Removes `peer`'s entry, returning its scheduled time if present.
    pub fn remove(&mut self, peer: NodeId) -> Option<LogicalTime> {
        let time = self.by_peer.remove(&peer)?;
        self.by_time.remove(&(time, peer));
        Some(time)
    }

    /// The peers whose exchange time is `<= now`, in id order (without
    /// removing them — the exchange engine removes and reschedules each peer
    /// after a successful rendezvous).
    pub fn due(&self, now: LogicalTime) -> Vec<NodeId> {
        let mut peers: Vec<NodeId> =
            self.by_time.range(..=(now, NodeId::MAX)).map(|(&(_, peer), ())| peer).collect();
        peers.sort_unstable();
        peers
    }

    /// The scheduled time for `peer`, if any.
    pub fn time_for(&self, peer: NodeId) -> Option<LogicalTime> {
        self.by_peer.get(&peer).copied()
    }

    /// The earliest `(time, peer)` entry.
    pub fn peek_next(&self) -> Option<(LogicalTime, NodeId)> {
        self.by_time.keys().next().map(|&(t, p)| (t, p))
    }

    /// Number of scheduled peers.
    pub fn len(&self) -> usize {
        self.by_peer.len()
    }

    /// Whether no exchanges are scheduled.
    pub fn is_empty(&self) -> bool {
        self.by_peer.is_empty()
    }

    /// Iterates entries earliest-first.
    pub fn iter(&self) -> impl Iterator<Item = (LogicalTime, NodeId)> + '_ {
        self.by_time.keys().map(|&(t, p)| (t, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> LogicalTime {
        LogicalTime::from_ticks(n)
    }

    #[test]
    fn ordered_earliest_first_not_by_id() {
        let mut list = ExchangeList::new();
        list.schedule(1, t(9));
        list.schedule(7, t(2));
        list.schedule(3, t(5));
        let order: Vec<_> = list.iter().collect();
        assert_eq!(order, vec![(t(2), 7), (t(5), 3), (t(9), 1)]);
    }

    #[test]
    fn due_includes_past_and_present() {
        let mut list = ExchangeList::new();
        list.schedule(1, t(1));
        list.schedule(2, t(3));
        list.schedule(3, t(3));
        assert_eq!(list.due(t(2)), vec![1]);
        assert_eq!(list.due(t(3)), vec![1, 2, 3]);
        assert!(list.due(t(0)).is_empty());
    }

    #[test]
    fn reschedule_replaces_entry() {
        let mut list = ExchangeList::new();
        list.schedule(4, t(10));
        list.schedule(4, t(2));
        assert_eq!(list.len(), 1);
        assert_eq!(list.time_for(4), Some(t(2)));
        assert_eq!(list.peek_next(), Some((t(2), 4)));
    }

    #[test]
    fn remove_clears_both_indexes() {
        let mut list = ExchangeList::new();
        list.schedule(4, t(10));
        assert_eq!(list.remove(4), Some(t(10)));
        assert!(list.is_empty());
        assert_eq!(list.remove(4), None);
        assert_eq!(list.peek_next(), None);
    }

    #[test]
    fn schedule_min_keeps_the_earliest_proposal() {
        let mut list = ExchangeList::new();
        // Three region groups propose times for the same straddling peer.
        list.schedule_min(4, t(10));
        list.schedule_min(4, t(3));
        list.schedule_min(4, t(7));
        assert_eq!(list.len(), 1, "one entry per peer, not one per group");
        assert_eq!(list.time_for(4), Some(t(3)));
        // A later plain `schedule` still replaces outright.
        list.schedule(4, t(9));
        assert_eq!(list.time_for(4), Some(t(9)));
    }

    #[test]
    fn due_ties_sorted_by_peer_id() {
        let mut list = ExchangeList::new();
        list.schedule(9, t(1));
        list.schedule(2, t(1));
        list.schedule(5, t(1));
        assert_eq!(list.due(t(1)), vec![2, 5, 9]);
    }
}
