use std::collections::{BTreeMap, BTreeSet, VecDeque};

use sdso_member::{leave_change_from_events, Epoch, MembershipView, ViewChange};
use sdso_net::{Endpoint, MsgClass, NetError, NodeId, Payload, PeerEvent, SimSpan};
use sdso_obs::{EventKind, Obs};

use crate::clock::{LogicalClock, LogicalTime};
use crate::codec::{self, ShadowState, CODEC_V2};
use crate::config::{DsoConfig, RetryConfig};
use crate::diff::Diff;
use crate::error::DsoError;
use crate::exchange_list::ExchangeList;
use crate::metrics::{DsoCounters, DsoMetrics};
use crate::object::{ObjectId, Version};
use crate::router::DiffRouter;
use crate::sfunction::SFunction;
use crate::slotted_buffer::SlottedBuffer;
use crate::store::ObjectStore;
use crate::wire::{DsoMessage, WireUpdate};

/// How `exchange` chooses its recipients (the paper's `send_t how`
/// argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMode {
    /// Exchange with the subset of peers the exchange list says are due —
    /// normal operation.
    Multicast,
    /// Force an immediate flush to every remote process, overriding the
    /// exchange list.
    Broadcast,
}

/// What one `exchange` call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeReport {
    /// The logical time of this exchange (post-tick).
    pub time: LogicalTime,
    /// The peers exchanged with.
    pub peers: Vec<NodeId>,
    /// Updates shipped to those peers (after merging).
    pub updates_sent: usize,
    /// Remote updates applied locally during the rendezvous.
    pub updates_applied: usize,
}

/// An event surfaced to code layered above the runtime by the message pump
/// (`Put`/`GetReq` traffic is serviced internally and never surfaces).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An [`DsoMessage::App`] message from a peer protocol layer.
    App {
        /// Sender.
        from: NodeId,
        /// Accounting class the sender declared.
        class: MsgClass,
        /// The embedded encoding.
        bytes: Vec<u8>,
    },
    /// A `GetRep` arrived (and was already applied if newer).
    GetRep {
        /// Replier.
        from: NodeId,
        /// The object it carried.
        object: ObjectId,
    },
    /// An acknowledgement of an earlier `sync_put`.
    Ack {
        /// Acknowledging peer.
        from: NodeId,
    },
}

#[derive(Debug, Default)]
struct EarlyEntry {
    updates: Vec<WireUpdate>,
    sync: bool,
}

/// Per-link ARQ state of the optional reliability layer: sequenced
/// envelopes, cumulative acks, retransmit-on-timeout. Gives in-order
/// exactly-once delivery over transports that drop, duplicate, or reorder.
#[derive(Debug)]
struct ArqState {
    cfg: RetryConfig,
    /// Next sequence number to assign, per destination.
    tx_seq: Vec<u64>,
    /// Sent but unacknowledged messages, per destination, by sequence.
    unacked: Vec<BTreeMap<u64, DsoMessage>>,
    /// Next sequence number expected, per source.
    rx_next: Vec<u64>,
    /// Out-of-order arrivals waiting for their predecessors, per source.
    ooo: Vec<BTreeMap<u64, DsoMessage>>,
    /// In-order messages delivered by the ARQ but not yet consumed.
    ready: VecDeque<(NodeId, DsoMessage)>,
}

impl ArqState {
    fn new(cfg: RetryConfig, n: usize) -> Self {
        ArqState {
            cfg,
            tx_seq: vec![0; n],
            unacked: (0..n).map(|_| BTreeMap::new()).collect(),
            rx_next: vec![0; n],
            ooo: (0..n).map(|_| BTreeMap::new()).collect(),
            ready: VecDeque::new(),
        }
    }

    /// Resets the per-link state for a departed peer: its unacked traffic
    /// is undeliverable, its out-of-order residue must not poison a future
    /// occupant of the slot, and sequencing restarts from zero if the slot
    /// is ever reused by a joiner.
    fn forget_peer(&mut self, peer: NodeId) {
        let p = usize::from(peer);
        self.tx_seq[p] = 0;
        self.unacked[p].clear();
        self.rx_next[p] = 0;
        self.ooo[p].clear();
        self.ready.retain(|(from, _)| *from != peer);
    }
}

/// Per-link wire-codec state, present iff [`crate::WireConfig::codec_v2`]
/// is on: what the peer has negotiated, and the XOR shadows both
/// directions of the link evolve in lockstep (see [`crate::codec`]).
#[derive(Debug, Default)]
struct LinkCodec {
    /// Highest codec version the peer has offered; `None` until its
    /// [`DsoMessage::CodecOffer`] arrives — sends stay v1 until then.
    peer_version: Option<u8>,
    /// Whether this process's own offer has gone out on the link.
    offered: bool,
    /// Sender-side shadows for the `Data2` batches this process emits.
    tx: ShadowState,
    /// Receiver-side shadows for the `Data2` batches the peer emits.
    rx: ShadowState,
}

/// The S-DSO runtime: one per process.
///
/// Owns the process's object replicas, logical clock, exchange list and
/// slotted buffer, and implements the paper's library interface — `share`,
/// `async_put`, `sync_put`, `async_get`, `sync_get` and, centrally,
/// [`SdsoRuntime::exchange`] (Fig. 4).
///
/// The runtime is transport-generic: `E` may be the in-process transport,
/// the TCP mesh, or the virtual-time simulator endpoint.
#[derive(Debug)]
pub struct SdsoRuntime<E: Endpoint> {
    endpoint: E,
    config: DsoConfig,
    store: ObjectStore,
    clock: LogicalClock,
    exchange_list: ExchangeList,
    buffer: SlottedBuffer,
    /// Local modifications since the last `exchange`, per object, with the
    /// Lamport stamp of the newest write folded in.
    current_mods: BTreeMap<ObjectId, (Diff, Version)>,
    /// Lamport clock for version stamps. Distinct from the logical
    /// (rendezvous-tick) clock: ticks count exchanges and are *not*
    /// comparable across processes, while version stamps must order
    /// causally-related writes of different processes — otherwise a
    /// slow-ticking process's fresh write would lose last-writer-wins
    /// against a fast process's stale one.
    lamport: u64,
    /// Rendezvous messages stamped in the logical future, buffered per
    /// (peer, time) until this process's clock reaches them.
    early: BTreeMap<(NodeId, LogicalTime), EarlyEntry>,
    /// App messages received while waiting for something else.
    app_inbox: VecDeque<(NodeId, MsgClass, Vec<u8>)>,
    /// `sync_put` acknowledgements received so far.
    acks_received: u64,
    /// Reliability layer state, present iff `config.reliability` is set.
    arq: Option<ArqState>,
    /// Per-link wire-codec negotiation and shadow state, present iff
    /// `config.wire.codec_v2` is set.
    codec: Option<Vec<LinkCodec>>,
    /// The membership view every exchange is computed under. Starts as the
    /// full static group (the paper's fixed cluster); churn-aware drivers
    /// install an explicit initial view and advance it at view-change
    /// barriers.
    view: MembershipView,
    /// Interest router consulted by live multicast exchanges, when one is
    /// installed (see [`crate::DiffRouter`]). Broadcast exchanges ignore
    /// it, so barriers and the terminal sync always flush every slot.
    router: Option<Box<dyn DiffRouter>>,
    /// This node's observability bundle (recorder + registry).
    obs: Obs,
    /// Live `dso.*` counters in the bundle's registry.
    counters: DsoCounters,
}

impl<E: Endpoint> SdsoRuntime<E> {
    /// Wraps a transport endpoint into an S-DSO runtime with observability
    /// disabled (counters still work; no events are traced).
    pub fn new(endpoint: E, config: DsoConfig) -> Self {
        SdsoRuntime::with_obs(endpoint, config, Obs::disabled())
    }

    /// Wraps a transport endpoint into an S-DSO runtime recording into
    /// `obs`: the runtime's counters register in the bundle's registry and
    /// its flight recorder is attached to the endpoint, so transport-level
    /// send/recv events land in the same per-node ring as the runtime's
    /// exchange and rendezvous events.
    pub fn with_obs(mut endpoint: E, config: DsoConfig, obs: Obs) -> Self {
        let me = endpoint.node_id();
        let n = endpoint.num_nodes();
        endpoint.attach_recorder(obs.recorder().clone());
        // Reset the delta baseline so net_metrics_delta covers this
        // runtime's lifetime even when the endpoint saw earlier traffic.
        let _ = endpoint.metrics_delta();
        let counters = DsoCounters::in_registry(obs.registry());
        SdsoRuntime {
            endpoint,
            config,
            store: ObjectStore::new(),
            clock: LogicalClock::new(),
            exchange_list: ExchangeList::new(),
            buffer: SlottedBuffer::new(n, me, config.merge_diffs),
            current_mods: BTreeMap::new(),
            lamport: 0,
            early: BTreeMap::new(),
            app_inbox: VecDeque::new(),
            acks_received: 0,
            arq: config.reliability.map(|cfg| ArqState::new(cfg, n)),
            codec: config.wire.codec_v2.then(|| (0..n).map(|_| LinkCodec::default()).collect()),
            view: MembershipView::full(n),
            router: None,
            obs,
            counters,
        }
    }

    /// This process's node id.
    pub fn node_id(&self) -> NodeId {
        self.endpoint.node_id()
    }

    /// Cluster size.
    pub fn num_nodes(&self) -> usize {
        self.endpoint.num_nodes()
    }

    /// The logical clock's current time.
    pub fn logical_now(&self) -> LogicalTime {
        self.clock.now()
    }

    /// The Lamport clock's current value (the write-stamp frontier).
    pub fn lamport(&self) -> u64 {
        self.lamport
    }

    /// The transport clock (virtual or wall time).
    pub fn now(&self) -> sdso_net::SimInstant {
        self.endpoint.now()
    }

    /// Models `dt` of local computation (no-op on real transports).
    pub fn advance(&mut self, dt: SimSpan) {
        self.endpoint.advance(dt);
    }

    /// Runtime-level counters (a by-value view over the live `dso.*`
    /// registry counters).
    pub fn metrics(&self) -> DsoMetrics {
        self.counters.view()
    }

    /// Transport-level counters, cumulative for the endpoint's lifetime.
    pub fn net_metrics(&self) -> sdso_net::NetMetricsSnapshot {
        self.endpoint.metrics()
    }

    /// Transport-level counters since the previous delta read (correct for
    /// per-run accounting over a reused transport).
    pub fn net_metrics_delta(&mut self) -> sdso_net::NetMetricsSnapshot {
        self.endpoint.metrics_delta()
    }

    /// This runtime's observability bundle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Direct access to the transport (for protocol layers that manage
    /// their own timing instrumentation).
    pub fn endpoint_mut(&mut self) -> &mut E {
        &mut self.endpoint
    }

    /// Consumes the runtime, returning the transport. A crash-simulating
    /// driver keeps the endpoint's identity (and its virtual clock) across
    /// a restart while every piece of volatile protocol state — clocks,
    /// buffers, reliability windows — is dropped on the floor, exactly as
    /// a process crash would.
    pub fn into_endpoint(self) -> E {
        self.endpoint
    }

    /// Restores the logical-time and Lamport frontiers a restarted process
    /// recovered from stable storage (snapshot + WAL replay), before it
    /// rejoins the group. Both clocks only move forward, so restoring is
    /// idempotent against fresher in-memory state.
    pub fn restore_frontier(&mut self, time: LogicalTime, lamport: u64) {
        self.clock.advance_to(time);
        self.lamport = self.lamport.max(lamport);
    }

    /// Discards crash-era residue sitting in this endpoint's receive
    /// queue, admitting anything already stamped for the current view.
    ///
    /// A restarted process reuses its pre-crash endpoint (a rebooted host
    /// keeps its address), so frames addressed to the dead incarnation —
    /// barrier duplicates, leaver-settling retransmits, acks for sends
    /// that died with it — are still queued when recovery completes. On a
    /// fresh reliability layer their stale sequence numbers would squat in
    /// the out-of-order buffer and shadow live frames at colliding
    /// sequence numbers, so they must never reach the admit path: any
    /// sequenced frame stamped before this view's epoch is dropped
    /// unacked (the sender reset that link when it pruned the crashed
    /// member), and any ack is dropped too (this incarnation has sent
    /// nothing an ack could cover). Fresh traffic that overtook the drain
    /// — a snapshot, or early rendezvous frames from peers already past
    /// the rejoin barrier — is admitted through the regular reliability
    /// path and queued for the next blocking receive.
    ///
    /// Call after [`SdsoRuntime::set_membership`] with the rejoin view and
    /// before [`SdsoRuntime::await_snapshot`]. Without a reliability layer
    /// there is no sequence state to protect (the epoch checks already
    /// drop stale traffic on delivery) and this is a no-op. Returns the
    /// number of residue frames dropped.
    ///
    /// # Errors
    ///
    /// Returns transport and codec errors.
    pub fn drain_crash_residue(&mut self) -> Result<u64, DsoError> {
        if self.arq.is_none() {
            return Ok(0);
        }
        let mut dropped = 0u64;
        while let Some(incoming) = self.endpoint.try_recv().map_err(DsoError::Net)? {
            let msg: DsoMessage =
                sdso_net::wire::decode(&incoming.payload.bytes).map_err(DsoError::Net)?;
            let stale = match &msg {
                DsoMessage::SeqAck { .. } => true,
                other => other.epoch().is_some_and(|e| e < self.view.epoch()),
            };
            if stale {
                dropped += 1;
                self.counters.cross_epoch_dropped.inc();
                reclaim_incoming(incoming.payload);
                continue;
            }
            let admitted = self.admit_raw(incoming.from, &incoming.payload.bytes)?;
            reclaim_incoming(incoming.payload);
            if let (Some(m), Some(arq)) = (admitted, self.arq.as_mut()) {
                // Deliverable already: park it where the blocking
                // receives look first.
                arq.ready.push_back(m);
            }
        }
        Ok(dropped)
    }

    /// The exchange list (for inspection by tests and protocol layers).
    pub fn exchange_list(&self) -> &ExchangeList {
        &self.exchange_list
    }

    /// Installs (or, with `None`, removes) the interest router consulted
    /// by live multicast exchanges. Pending updates the router suppresses
    /// stay buffered (merged) in the destination's slot and flush at the
    /// next broadcast exchange, so convergence is unaffected — only live
    /// traffic shrinks to the interest set.
    pub fn set_diff_router(&mut self, router: Option<Box<dyn DiffRouter>>) {
        self.router = router;
    }

    // ------------------------------------------------------------------
    // Membership (epoch-scoped views, view-change barriers, snapshots)
    // ------------------------------------------------------------------

    /// The membership view exchanges are currently computed under.
    pub fn membership(&self) -> &MembershipView {
        &self.view
    }

    /// The current membership epoch (stamped on all rendezvous traffic).
    pub fn epoch(&self) -> Epoch {
        self.view.epoch()
    }

    /// Installs an explicit membership view, reconciling the slotted
    /// buffer so exactly the view's remote members have active slots.
    /// Called once at startup by churn-aware drivers: initial members
    /// install the plan's initial view; a late joiner installs the view of
    /// the epoch it joins in (then obtains state via
    /// [`SdsoRuntime::await_snapshot`]).
    ///
    /// # Panics
    ///
    /// Panics if the view's capacity differs from the transport's node
    /// count, or if this process is not a member of the view.
    pub fn set_membership(&mut self, view: MembershipView) {
        assert_eq!(
            view.capacity(),
            self.num_nodes(),
            "membership capacity must match the transport"
        );
        assert!(view.contains(self.node_id()), "set_membership: local process not in view");
        self.view = view;
        self.reconcile_buffer_slots();
    }

    /// Applies one view change at a barrier: prunes departed peers from
    /// every data structure (exchange list, slotted buffer, reliability
    /// links, early-arrival buffer, transport), bumps the epoch, activates
    /// slots for joiners and asks the s-function for their first exchange
    /// times, and fires the s-function's membership-delta hook.
    ///
    /// Call this after the barrier exchange of the trigger tick has
    /// completed (every old-view member has flushed and converged) — the
    /// paper's static assumption holds within each epoch, and this method
    /// is the only transition between epochs.
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::ProtocolViolation`] if the change is invalid
    /// against the current view, or if the s-function schedules a
    /// non-future first exchange for a joiner.
    pub fn apply_view_change(
        &mut self,
        change: &ViewChange,
        sfunc: &mut dyn SFunction,
    ) -> Result<(), DsoError> {
        let now = self.clock.now();
        // Validate against an unmodified view before touching anything.
        let mut next_view = self.view.clone();
        next_view
            .apply(change)
            .map_err(|e| DsoError::ProtocolViolation(format!("invalid view change: {e}")))?;

        // A continuer may still hold unacknowledged barrier frames for a
        // leaver (every copy lost in flight). Forgetting them below would
        // strand the leaver in its barrier with nobody left to retransmit,
        // so drain each departing link first, while the leaver is still a
        // member and acks flow normally.
        if self.arq.is_some() {
            for &leaver in &change.left {
                if leaver != self.node_id() {
                    self.settle_link(leaver)?;
                }
            }
        }
        for &leaver in &change.left {
            self.exchange_list.remove(leaver);
            if self.buffer.has_peer(leaver) {
                let orphaned = self.buffer.remove_peer(leaver);
                self.counters.slots_compacted.add(orphaned.len() as u64);
            }
            if let Some(arq) = &mut self.arq {
                arq.forget_peer(leaver);
            }
            self.reset_link_codec(leaver);
            self.early.retain(|&(peer, _), _| peer != leaver);
            self.endpoint.remove_peer(leaver);
        }
        self.view = next_view;
        for &joiner in &change.joined {
            if joiner == self.node_id() {
                continue;
            }
            self.endpoint.add_peer(joiner);
            if !self.buffer.has_peer(joiner) {
                self.buffer.add_peer(joiner);
            }
            if let Some(t) = sfunc.next_exchange(joiner, now, &self.store) {
                if t <= now {
                    return Err(DsoError::ProtocolViolation(
                        "s-function scheduled a non-future exchange for a joiner".into(),
                    ));
                }
                self.exchange_list.schedule(joiner, t);
            }
        }
        let joined: Vec<NodeId> = change.joined.iter().copied().collect();
        let left: Vec<NodeId> = change.left.iter().copied().collect();
        sfunc.on_view_change(&joined, &left);
        if let Some(router) = &mut self.router {
            router.on_view_change(&joined, &left);
        }
        self.counters.view_changes.inc();
        self.obs.record(
            self.endpoint.now().as_micros(),
            EventKind::ViewChange,
            self.view.epoch().0,
            joined.len() as u32,
            left.len() as u32,
        );
        Ok(())
    }

    /// Drains the transport's queued link events and folds them into the
    /// leave-side [`ViewChange`] they imply under the current view: peers
    /// whose link ended the drain down (the reactor's graceful teardown
    /// after a lost connection, or `TcpMesh` exhausting its reconnect
    /// budget) become leavers; reconnect flaps cancel out. Returns `None`
    /// when no live member departed.
    ///
    /// This is a *proposal*, not an applied change: the caller decides when
    /// the barrier happens and feeds the change to
    /// [`SdsoRuntime::apply_view_change`] — typically after the tick's
    /// exchange completes, so every surviving member applies the same
    /// change at the same logical time.
    pub fn drain_departures(&mut self) -> Option<ViewChange> {
        let events = self.endpoint.take_peer_events();
        // Any link flap invalidates codec negotiation with that peer: a
        // reconnected peer may have restarted, losing its XOR shadows and
        // its knowledge of our version offer. Downgrade to v1 and
        // re-negotiate — even when the flap cancels out of the membership
        // change below. The receive direction is deliberately left alive:
        // frames encoded before the flap may still be in flight or be
        // retransmitted, and must decode against the shadows they were
        // built on.
        for event in &events {
            let (PeerEvent::Down(peer) | PeerEvent::Up(peer)) = *event;
            self.downgrade_link_codec(peer);
        }
        let change = leave_change_from_events(&self.view, &events);
        if change.is_empty() {
            None
        } else {
            Some(change)
        }
    }

    /// Pushes a state snapshot to a late joiner: every object modified
    /// since initialisation as a from-zero diff (the joiner shares the
    /// same initial bodies, so pristine objects need no transfer), plus
    /// this donor's logical-time and Lamport frontiers. O(objects) bytes,
    /// never O(history). Returns the encoded snapshot size in bytes.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn send_snapshot(&mut self, to: NodeId) -> Result<usize, DsoError> {
        let updates: Vec<WireUpdate> = self
            .store
            .iter()
            .filter(|(_, replica)| replica.version() != Version::INITIAL)
            .map(|(id, replica)| WireUpdate {
                object: id,
                diff: Diff::single(0, replica.data().to_vec()),
                version: replica.version(),
            })
            .collect();
        let msg = DsoMessage::Snapshot {
            epoch: self.view.epoch(),
            time: self.clock.now(),
            lamport: self.lamport,
            updates,
        };
        let bytes = sdso_net::wire::encode(&msg).len();
        self.counters.snapshots_sent.inc();
        self.counters.snapshot_bytes.add(bytes as u64);
        self.obs.record(
            self.endpoint.now().as_micros(),
            EventKind::SnapshotSend,
            u32::from(to),
            bytes as u32,
            self.view.epoch().0,
        );
        self.send_msg(to, msg)?;
        Ok(bytes)
    }

    /// Blocks until the designated donor's snapshot arrives, then installs
    /// it: object bodies apply under last-writer-wins, the logical clock
    /// jumps to the donor's frontier, and the Lamport clock folds in the
    /// donor's stamp. Rendezvous traffic from other members that overtakes
    /// the snapshot is early-buffered for the joiner's first exchanges;
    /// protocol traffic is queued or serviced as usual.
    ///
    /// Returns the installed snapshot's logical time.
    ///
    /// # Errors
    ///
    /// Returns transport errors, or [`DsoError::ProtocolViolation`] if the
    /// snapshot is stamped with a different epoch than this view's.
    pub fn await_snapshot(&mut self, donor: NodeId) -> Result<LogicalTime, DsoError> {
        loop {
            let (from, msg) = self.next_msg_wait()?;
            match msg {
                DsoMessage::Snapshot { epoch, time, lamport, updates } if from == donor => {
                    if epoch != self.view.epoch() {
                        return Err(DsoError::ProtocolViolation(format!(
                            "snapshot from {from} stamped {epoch}, joiner is at {}",
                            self.view.epoch()
                        )));
                    }
                    self.apply_updates(&updates)?;
                    self.lamport = self.lamport.max(lamport);
                    self.clock.advance_to(time);
                    self.counters.snapshots_installed.inc();
                    self.obs.record(
                        self.endpoint.now().as_micros(),
                        EventKind::SnapshotInstall,
                        u32::from(from),
                        updates.len() as u32,
                        epoch.0,
                    );
                    return Ok(time);
                }
                DsoMessage::Data { epoch, time, updates } if epoch >= self.view.epoch() => {
                    self.counters.early_buffered.inc();
                    self.early.entry((from, time)).or_default().updates.extend(updates);
                }
                DsoMessage::Sync { epoch, time } if epoch >= self.view.epoch() => {
                    self.counters.early_buffered.inc();
                    self.early.entry((from, time)).or_default().sync = true;
                }
                DsoMessage::Data { .. } | DsoMessage::Sync { .. } => {
                    self.counters.cross_epoch_dropped.inc();
                }
                other => {
                    if let Some(Event::App { from, class, bytes }) = self.dispatch(from, other)? {
                        self.app_inbox.push_back((from, class, bytes));
                    }
                }
            }
        }
    }

    /// Deactivates slotted-buffer slots for non-members and activates
    /// slots for members, so buffered diffs accumulate for exactly the
    /// current view's remote peers.
    fn reconcile_buffer_slots(&mut self) {
        let me = self.node_id();
        for peer in 0..self.num_nodes() as NodeId {
            if peer == me {
                continue;
            }
            match (self.view.contains(peer), self.buffer.has_peer(peer)) {
                (false, true) => {
                    let orphaned = self.buffer.remove_peer(peer);
                    self.counters.slots_compacted.add(orphaned.len() as u64);
                }
                (true, false) => self.buffer.add_peer(peer),
                _ => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Object registration and local access
    // ------------------------------------------------------------------

    /// Registers a shared object with its initial contents. All processes
    /// must register the same objects with identical contents during program
    /// initialisation (S-DSO declares everything shared once, up front; it
    /// has no `unshare`).
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::AlreadyShared`] on duplicate registration.
    pub fn share(&mut self, id: ObjectId, initial: Vec<u8>) -> Result<(), DsoError> {
        self.store.share(id, initial)
    }

    /// Reads an object's local replica.
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::UnknownObject`] if `id` was never shared.
    pub fn read(&self, id: ObjectId) -> Result<&[u8], DsoError> {
        let bytes = self.store.read(id)?;
        let version = self.store.replica(id)?.version();
        self.obs.record(
            self.endpoint.now().as_micros(),
            EventKind::ObjectRead,
            id.0,
            version.time.as_ticks() as u32,
            0,
        );
        Ok(bytes)
    }

    /// An object's current version stamp.
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::UnknownObject`] if `id` was never shared.
    pub fn version_of(&self, id: ObjectId) -> Result<Version, DsoError> {
        Ok(self.store.replica(id)?.version())
    }

    /// Every shared object's id, in ascending order.
    pub fn object_ids(&self) -> Vec<ObjectId> {
        self.store.iter().map(|(id, _)| id).collect()
    }

    /// Writes `bytes` at `offset` into the local replica and records the
    /// change for distribution at the next `exchange`.
    ///
    /// The write is stamped with this process's Lamport clock (advanced by
    /// one), so causally later writes always win last-writer-wins at every
    /// replica regardless of how far the processes' rendezvous-tick clocks
    /// have drifted apart.
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::UnknownObject`] or [`DsoError::OutOfBounds`].
    pub fn write(&mut self, id: ObjectId, offset: u32, bytes: &[u8]) -> Result<(), DsoError> {
        self.lamport += 1;
        let stamp = Version::new(LogicalTime::from_ticks(self.lamport), self.node_id());
        self.store.write(id, offset, bytes, stamp)?;
        let diff = Diff::single(offset, bytes.to_vec());
        let merging = self.current_mods.contains_key(&id);
        let entry = self.current_mods.entry(id).or_insert_with(|| (Diff::empty(), stamp));
        entry.0.merge_in_place(&diff);
        entry.1 = entry.1.max(stamp);
        if merging {
            self.obs.record(self.endpoint.now().as_micros(), EventKind::DiffMerge, id.0, 0, 0);
        }
        self.obs.record(
            self.endpoint.now().as_micros(),
            EventKind::ObjectWrite,
            id.0,
            stamp.time.as_ticks() as u32,
            bytes.len() as u32,
        );
        Ok(())
    }

    /// Applies a remote diff if (and only if) `version` is newer than the
    /// replica's current stamp, folding the stamp into this process's
    /// Lamport clock. Returns whether the diff was applied.
    ///
    /// Protocol layers that transport updates themselves (LRC intervals,
    /// causal pushes) must use this — not [`SdsoRuntime::write_local`] —
    /// for *remote* writes, so concurrent writes to one object resolve by
    /// the same last-writer-wins order on every replica.
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::UnknownObject`], or a codec error if the diff
    /// exceeds the object's bounds.
    pub fn apply_remote(
        &mut self,
        id: ObjectId,
        diff: &Diff,
        version: Version,
    ) -> Result<bool, DsoError> {
        self.lamport = self.lamport.max(version.time.as_ticks());
        self.store.apply_remote(id, diff, version)
    }

    /// Writes `bytes` at `offset` with an explicit version stamp, *without*
    /// recording the change for exchange distribution.
    ///
    /// Pull-based protocols (entry consistency) use this: their updates
    /// propagate via `sync_get` pulls guarded by locks, so feeding the
    /// slotted buffer would both leak memory and double-ship state.
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::UnknownObject`] or [`DsoError::OutOfBounds`].
    pub fn write_local(
        &mut self,
        id: ObjectId,
        offset: u32,
        bytes: &[u8],
        version: Version,
    ) -> Result<(), DsoError> {
        self.store.write(id, offset, bytes, version)
    }

    // ------------------------------------------------------------------
    // The exchange engine (paper Fig. 4)
    // ------------------------------------------------------------------

    /// Seeds the exchange list by asking the s-function for an initial
    /// exchange time for every remote peer in the current membership view
    /// (called once after `share`s). The schedule is seeded from the
    /// logical clock's current time — zero at program initialisation, or a
    /// late joiner's snapshot frontier.
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::ProtocolViolation`] if the s-function schedules a
    /// non-future time.
    pub fn init_schedule(&mut self, sfunc: &mut dyn SFunction) -> Result<(), DsoError> {
        let me = self.node_id();
        let now = self.clock.now();
        for peer in self.view.peers_of(me) {
            if let Some(t) = sfunc.next_exchange(peer, now, &self.store) {
                if t <= now {
                    return Err(DsoError::ProtocolViolation(
                        "s-function scheduled a non-future exchange".into(),
                    ));
                }
                self.exchange_list.schedule(peer, t);
            }
        }
        Ok(())
    }

    /// Performs one exchange: advances the logical clock, ships buffered
    /// and current-interval updates to the due peers, optionally blocks
    /// until those peers reciprocate (`resync`), and re-runs the s-function
    /// to reschedule them.
    ///
    /// `resync` selects one of two *cluster-wide* disciplines: either every
    /// process rendezvouses (`true`, the lookahead protocols) or every
    /// process pushes and opportunistically drains (`false`). The two must
    /// not be mixed against one peer — a pusher never replies with the
    /// stamped pair a resync-mode peer waits for, and the engine rejects
    /// the resulting logically-stale traffic loudly rather than hanging.
    ///
    /// This is the paper's
    /// `exchange(shared_obj, resync_flag, how, s_func, arg)`; the Rust
    /// API drops the first argument (the runtime already tracks every
    /// modified object) and carries `arg` inside the s-function closure.
    ///
    /// # Errors
    ///
    /// Returns transport errors, or [`DsoError::ProtocolViolation`] when a
    /// peer's rendezvous traffic contradicts the symmetric schedule (a
    /// message stamped in the logical past, a rendezvous from a peer that
    /// is not due, or a non-rendezvous message during the wait).
    pub fn exchange(
        &mut self,
        resync: bool,
        how: SendMode,
        sfunc: &mut dyn SFunction,
    ) -> Result<ExchangeReport, DsoError> {
        self.exchange_with_budget(resync, how, sfunc, None).map(|(report, _)| report)
    }

    /// [`SdsoRuntime::exchange`] with a bounded rendezvous wait: if the
    /// due peers have not all reciprocated within `budget`, the still-owed
    /// peers are declared unresponsive, the rendezvous completes without
    /// them, and their ids are returned alongside the report.
    ///
    /// This is the crash-detection half of the MSYNC fix: the unbounded
    /// rendezvous parks forever on a vanished peer, while the reliability
    /// layer's retry budget is the wrong tool (it trips on *network*
    /// silence, not on one peer's). The caller — normally a crash-aware
    /// protocol layer — escalates a non-empty unresponsive set to the
    /// membership layer as an abrupt leave rather than stalling the group.
    ///
    /// # Errors
    ///
    /// Exactly [`SdsoRuntime::exchange`]'s errors; budget exhaustion is a
    /// report, not an error.
    pub fn exchange_bounded(
        &mut self,
        resync: bool,
        how: SendMode,
        sfunc: &mut dyn SFunction,
        budget: SimSpan,
    ) -> Result<(ExchangeReport, Vec<NodeId>), DsoError> {
        self.exchange_with_budget(resync, how, sfunc, Some(budget))
    }

    fn exchange_with_budget(
        &mut self,
        resync: bool,
        how: SendMode,
        sfunc: &mut dyn SFunction,
        budget: Option<SimSpan>,
    ) -> Result<(ExchangeReport, Vec<NodeId>), DsoError> {
        let started = self.endpoint.now();
        let t = self.clock.tick();
        let me = self.node_id();

        let due: Vec<NodeId> = match how {
            SendMode::Broadcast => self.view.peers_of(me),
            SendMode::Multicast => self.exchange_list.due(t),
        };
        self.obs.record(
            started.as_micros(),
            EventKind::ExchangeBegin,
            t.as_ticks() as u32,
            due.len() as u32,
            0,
        );

        // An installed interest router filters *live* multicast traffic
        // down to each peer's interest set; broadcast exchanges (epoch
        // barriers, the terminal sync) always flush everything, which is
        // what keeps routing a pure deferral rather than a loss.
        let route_live = matches!(how, SendMode::Multicast) && self.router.is_some();
        if route_live {
            if let Some(router) = &mut self.router {
                router.observe(&self.store, t);
            }
        }

        // Ship (data, SYNC) pairs to every due peer: its slot content plus
        // this interval's modifications (both interest-filtered when a
        // router is active).
        let current: Vec<(ObjectId, (Diff, Version))> =
            std::mem::take(&mut self.current_mods).into_iter().collect();
        let mut updates_sent = 0usize;
        let mut suppressed = 0u64;
        for &peer in &due {
            let mut updates: Vec<WireUpdate> = {
                let buffer = &mut self.buffer;
                match self.router.as_deref().filter(|_| route_live) {
                    Some(router) => buffer.drain_slot_filtered(peer, |o| router.routes(peer, o)),
                    None => buffer.drain_slot(peer),
                }
            }
            .into_iter()
            .map(|p| WireUpdate { object: p.object, diff: p.diff, version: p.version })
            .collect();
            if route_live {
                suppressed += self.buffer.slot_len(peer) as u64;
            }
            for (object, (diff, version)) in &current {
                match self.router.as_deref().filter(|_| route_live) {
                    Some(router) if !router.routes(peer, *object) => suppressed += 1,
                    _ => updates.push(WireUpdate {
                        object: *object,
                        diff: diff.clone(),
                        version: *version,
                    }),
                }
            }
            if self.config.wire.batch_dedup {
                self.dedup_updates(&mut updates);
            }
            updates_sent += updates.len();
            let epoch = self.view.epoch();
            let mut msgs = Vec::with_capacity(3);
            if self.codec_offer_due(peer) {
                msgs.push(DsoMessage::CodecOffer { version: CODEC_V2 });
            }
            if !updates.is_empty() {
                msgs.push(self.encode_data(peer, epoch, t, updates));
            }
            msgs.push(DsoMessage::Sync { epoch, time: t });
            self.send_msgs(peer, msgs)?;
        }
        if suppressed > 0 {
            self.counters.shard_suppressed.add(suppressed);
        }

        // Buffer this interval's modifications for everyone not exchanged
        // with now — including due peers whose interest excluded an object,
        // so the next broadcast (or an interest-covered later exchange)
        // still delivers it.
        for (object, (diff, version)) in &current {
            match self.router.as_deref().filter(|_| route_live) {
                Some(router) => {
                    let recipients: Vec<NodeId> =
                        due.iter().copied().filter(|&p| router.routes(p, *object)).collect();
                    self.buffer.buffer_for_all(*object, diff, *version, &recipients);
                }
                None => self.buffer.buffer_for_all(*object, diff, *version, &due),
            }
        }
        let _ = me;

        let mut updates_applied = 0usize;
        let mut unresponsive = Vec::new();
        if resync && !due.is_empty() {
            (updates_applied, unresponsive) = self.await_rendezvous(t, &due, budget)?;
        } else if !resync {
            // Push mode never blocks, but it must still *drain*: peers'
            // pushed updates would otherwise accumulate unboundedly and
            // never be applied. Application is version-gated, so arrival
            // order does not matter.
            updates_applied = self.drain_pushed()?;
        }

        // Re-run the s-function for the peers just exchanged with.
        for &peer in &due {
            self.exchange_list.remove(peer);
            if let Some(next) = sfunc.next_exchange(peer, t, &self.store) {
                if next <= t {
                    return Err(DsoError::ProtocolViolation(
                        "s-function scheduled a non-future exchange".into(),
                    ));
                }
                self.exchange_list.schedule(peer, next);
            }
        }

        self.counters.exchanges.inc();
        self.counters.rendezvous_peers.add(due.len() as u64);
        self.counters.updates_sent.add(updates_sent as u64);
        let ended = self.endpoint.now();
        let elapsed = ended.saturating_since(started).as_micros();
        self.counters.exchange_time_micros.add(elapsed);
        self.counters.exchange_latency.observe(elapsed);
        self.obs.record(
            ended.as_micros(),
            EventKind::ExchangeEnd,
            t.as_ticks() as u32,
            updates_sent as u32,
            updates_applied as u32,
        );
        Ok((ExchangeReport { time: t, peers: due, updates_sent, updates_applied }, unresponsive))
    }

    /// Non-blocking drain used by push-mode exchanges: applies every
    /// already-arrived `Data` (last-writer-wins handles ordering) and
    /// discards `SYNC` markers (push mode has no rendezvous to complete).
    fn drain_pushed(&mut self) -> Result<usize, DsoError> {
        let mut applied = 0usize;
        while let Some((from, msg)) = self.next_msg_try()? {
            match msg {
                DsoMessage::Data { epoch, updates, .. } => {
                    if epoch < self.view.epoch() {
                        self.counters.cross_epoch_dropped.inc();
                    } else {
                        applied += self.apply_updates(&updates)?;
                    }
                }
                DsoMessage::Sync { .. } => {}
                DsoMessage::SnapshotReq { .. } => {
                    self.send_snapshot(from)?;
                }
                DsoMessage::Snapshot { .. } => {} // duplicate of an installed snapshot
                other => {
                    return Err(DsoError::ProtocolViolation(format!(
                        "unexpected {other:?} from {from} during push-mode drain"
                    )));
                }
            }
        }
        Ok(applied)
    }

    /// Blocks until every due peer's `(data, SYNC)` pair for tick `t` has
    /// arrived, applying updates as they come and buffering early traffic.
    ///
    /// With a `budget`, the whole wait is bounded: peers still owing their
    /// pair when the budget runs out are returned as unresponsive (second
    /// element) and the rendezvous completes without them.
    fn await_rendezvous(
        &mut self,
        t: LogicalTime,
        due: &[NodeId],
        budget: Option<SimSpan>,
    ) -> Result<(usize, Vec<NodeId>), DsoError> {
        let mut applied = 0usize;
        let mut outstanding: BTreeSet<NodeId> = due.iter().copied().collect();

        // Consume rendezvous traffic that arrived before we got here.
        for &peer in due {
            if let Some(entry) = self.early.remove(&(peer, t)) {
                applied += self.apply_updates(&entry.updates)?;
                if entry.sync {
                    outstanding.remove(&peer);
                }
            }
        }

        let wait_start = self.endpoint.now();
        let deadline = budget.map(|b| wait_start + b);
        let mut unresponsive: Vec<NodeId> = Vec::new();
        self.obs.record(
            wait_start.as_micros(),
            EventKind::RendezvousWaitBegin,
            t.as_ticks() as u32,
            outstanding.len() as u32,
            0,
        );
        while !outstanding.is_empty() {
            let (from, msg) = match deadline {
                None => self.next_msg_blocking()?,
                Some(d) => match self.next_msg_deadline(d)? {
                    Some(m) => m,
                    None => {
                        // Budget exhausted: whoever still owes a pair is
                        // declared unresponsive and the rendezvous closes
                        // without them. The caller escalates to the
                        // membership layer (or errors) — the engine itself
                        // must not invent a view change mid-exchange.
                        unresponsive = outstanding.iter().copied().collect();
                        break;
                    }
                },
            };
            // Cross-epoch traffic never errors the engine: residue from a
            // peer that has since left is dropped (and counted), traffic
            // from a peer that is an epoch ahead is buffered by its
            // logical time like any early arrival.
            if msg.epoch().is_some_and(|e| e < self.view.epoch()) {
                self.counters.cross_epoch_dropped.inc();
                continue;
            }
            match msg {
                DsoMessage::Data { time, updates, .. } => {
                    if time == t && due.contains(&from) {
                        applied += self.apply_updates(&updates)?;
                    } else if time > t {
                        self.counters.early_buffered.inc();
                        self.early.entry((from, time)).or_default().updates.extend(updates);
                    } else {
                        return Err(DsoError::ProtocolViolation(format!(
                            "data from {from} stamped {time} during rendezvous at {t}"
                        )));
                    }
                }
                DsoMessage::Sync { time, .. } => {
                    if time == t && outstanding.remove(&from) {
                        // Rendezvous with `from` complete.
                    } else if time > t {
                        self.counters.early_buffered.inc();
                        self.early.entry((from, time)).or_default().sync = true;
                    } else {
                        return Err(DsoError::ProtocolViolation(format!(
                            "SYNC from {from} stamped {time} during rendezvous at {t}"
                        )));
                    }
                }
                DsoMessage::SnapshotReq { .. } => {
                    self.send_snapshot(from)?;
                }
                DsoMessage::Snapshot { .. } => {} // duplicate of an installed snapshot
                other => {
                    return Err(DsoError::ProtocolViolation(format!(
                        "unexpected {other:?} from {from} during rendezvous at {t}"
                    )));
                }
            }
        }
        let wait_end = self.endpoint.now();
        let waited = wait_end.saturating_since(wait_start).as_micros();
        self.counters.exchange_wait_micros.add(waited);
        self.counters.wait_latency.observe(waited);
        self.obs.record(
            wait_end.as_micros(),
            EventKind::RendezvousWaitEnd,
            t.as_ticks() as u32,
            unresponsive.len() as u32,
            0,
        );
        Ok((applied, unresponsive))
    }

    fn apply_updates(&mut self, updates: &[WireUpdate]) -> Result<usize, DsoError> {
        let mut applied = 0usize;
        for u in updates {
            // Lamport receive rule: fold every observed stamp into the
            // local clock so later local writes causally dominate.
            self.lamport = self.lamport.max(u.version.time.as_ticks());
            if self.store.apply_remote(u.object, &u.diff, u.version)? {
                applied += 1;
                self.counters.updates_applied.inc();
            } else {
                self.counters.updates_stale.inc();
            }
        }
        Ok(applied)
    }

    // ------------------------------------------------------------------
    // The wire codec layer (version negotiation, compressed batches)
    // ------------------------------------------------------------------

    /// Coalesces same-object updates in an outgoing batch into one update
    /// each: diffs merged in shipping order (later bytes win overlaps,
    /// exactly as the receiver would have applied them one by one), the
    /// newest version stamp kept. Pure batch shrinkage — receivers see
    /// identical final state.
    fn dedup_updates(&mut self, updates: &mut Vec<WireUpdate>) {
        if updates.len() < 2 {
            return;
        }
        let mut slots: BTreeMap<ObjectId, usize> = BTreeMap::new();
        let mut merged: Vec<WireUpdate> = Vec::with_capacity(updates.len());
        let mut removed = 0u64;
        for u in updates.drain(..) {
            match slots.get(&u.object) {
                Some(&i) => {
                    let kept = &mut merged[i];
                    kept.diff.merge_in_place(&u.diff);
                    kept.version = kept.version.max(u.version);
                    removed += 1;
                }
                None => {
                    slots.insert(u.object, merged.len());
                    merged.push(u);
                }
            }
        }
        *updates = merged;
        if removed > 0 {
            self.counters.batch_deduped.add(removed);
        }
    }

    /// Whether this process still owes `peer` its codec offer; flips the
    /// flag when it does, because the caller is about to send one. Always
    /// `false` with compression off — no offer is ever owed, and peers
    /// keep encoding v1 toward us.
    fn codec_offer_due(&mut self, peer: NodeId) -> bool {
        match &mut self.codec {
            Some(links) => {
                let link = &mut links[usize::from(peer)];
                let due = !link.offered;
                link.offered = true;
                due
            }
            None => false,
        }
    }

    /// Builds the data message for one exchange send: the compressed v2
    /// `Data2` when the peer has negotiated it — falling back to the
    /// absolute v1 `Data` when a run exceeds the decoder's inflation
    /// budget or an XOR shadow cannot be seeded — and plain v1 `Data`
    /// before negotiation completes.
    fn encode_data(
        &mut self,
        peer: NodeId,
        epoch: Epoch,
        time: LogicalTime,
        updates: Vec<WireUpdate>,
    ) -> DsoMessage {
        if let Some(links) = &mut self.codec {
            let link = &mut links[usize::from(peer)];
            if link.peer_version.is_some_and(|v| v >= CODEC_V2) {
                let store = &self.store;
                let mut seed = |object: ObjectId| store.initial_body(object).map(<[u8]>::to_vec);
                if let Some((basis, blob)) = codec::encode_updates(
                    &updates,
                    self.config.wire.xor_delta,
                    &mut link.tx,
                    &mut seed,
                ) {
                    self.counters.codec_v2_sent.inc();
                    return DsoMessage::Data2 { epoch, time, basis, blob };
                }
                self.counters.codec_v2_fallbacks.inc();
            }
        }
        DsoMessage::Data { epoch, time, updates }
    }

    /// Resolves codec-layer messages at their exactly-once delivery point:
    /// consumes a [`DsoMessage::CodecOffer`] (recording the peer's version
    /// and replying with ours if it has not gone out yet), decodes a
    /// [`DsoMessage::Data2`] back into the plain `Data` it compresses
    /// (advancing this link's receive shadows), and passes everything else
    /// through untouched.
    fn deliver(
        &mut self,
        from: NodeId,
        msg: DsoMessage,
    ) -> Result<Option<(NodeId, DsoMessage)>, DsoError> {
        match msg {
            DsoMessage::CodecOffer { version } => {
                self.handle_codec_offer(from, version)?;
                Ok(None)
            }
            DsoMessage::Data2 { epoch, time, basis, blob } => {
                let updates = self.decode_data2(from, basis, &blob)?;
                Ok(Some((from, DsoMessage::Data { epoch, time, updates })))
            }
            other => Ok(Some((from, other))),
        }
    }

    /// Records a peer's codec offer. A *repeat* offer on an already
    /// negotiated link means the peer downgraded its side (link flap, or a
    /// restart without a view change) and no longer knows our version, so
    /// our own offer must cross again before the peer resumes v2 toward
    /// us. No storm: the repeat branch only fires when the sender's
    /// `peer_version` is freshly `None`, which absorbs our reply silently.
    fn handle_codec_offer(&mut self, from: NodeId, version: u8) -> Result<(), DsoError> {
        let Some(links) = &mut self.codec else {
            // Compression is off here: never offer back, so the peer keeps
            // encoding v1 toward us. Interop, not an error.
            return Ok(());
        };
        let link = &mut links[usize::from(from)];
        let repeat = link.peer_version.is_some();
        link.peer_version = Some(version);
        if repeat {
            link.offered = false;
        }
        if link.offered {
            return Ok(());
        }
        link.offered = true;
        self.send_msg(from, DsoMessage::CodecOffer { version: CODEC_V2 })
    }

    /// Decodes a `Data2` blob against this link's receive shadows.
    fn decode_data2(
        &mut self,
        from: NodeId,
        basis: u64,
        blob: &[u8],
    ) -> Result<Vec<WireUpdate>, DsoError> {
        let store = &self.store;
        let Some(links) = &mut self.codec else {
            return Err(DsoError::ProtocolViolation(format!(
                "compressed Data2 from {from} but codec v2 is not enabled here"
            )));
        };
        let link = &mut links[usize::from(from)];
        // Basis 0 announces the first batch of a fresh compressed stream:
        // the peer restarted its transmit shadows (after a link flap or a
        // process restart). Restart ours to match — a sender's basis only
        // returns to 0 by reset, never by wraparound.
        if basis == 0 && link.rx.basis() != 0 {
            link.rx.reset();
        }
        let mut seed = |object: ObjectId| store.initial_body(object).map(<[u8]>::to_vec);
        codec::decode_updates(blob, basis, &mut link.rx, &mut seed).map_err(DsoError::Net)
    }

    /// Forgets everything negotiated with `peer`: its version offer, ours,
    /// and both directions' XOR shadows. Called when the peer leaves the
    /// view — its link state is gone for good, and a joiner reusing the
    /// slot starts from a clean slate.
    fn reset_link_codec(&mut self, peer: NodeId) {
        if let Some(links) = &mut self.codec {
            links[usize::from(peer)] = LinkCodec::default();
        }
    }

    /// Downgrades the link after a reconnect flap: forget the negotiation
    /// (v1 until fresh offers cross) and restart our compressed stream
    /// from scratch, but keep the receive shadows — the peer's pre-flap
    /// frames, reliability-layer retransmits included, must still decode.
    /// If the peer really restarted, its first fresh `Data2` carries
    /// basis 0, which resets the receive side then (see `decode_data2`).
    fn downgrade_link_codec(&mut self, peer: NodeId) {
        if let Some(links) = &mut self.codec {
            let link = &mut links[usize::from(peer)];
            link.peer_version = None;
            link.offered = false;
            link.tx.reset();
        }
    }

    // ------------------------------------------------------------------
    // The reliability layer (sequencing, acks, retransmit-on-timeout)
    // ------------------------------------------------------------------

    /// Decodes one raw transport message and runs it through the
    /// reliability layer, returning the next in-order logical message if
    /// this delivery produced one. Without a reliability config, every
    /// message passes straight through.
    fn admit_raw(
        &mut self,
        from: NodeId,
        bytes: &[u8],
    ) -> Result<Option<(NodeId, DsoMessage)>, DsoError> {
        let msg: DsoMessage = sdso_net::wire::decode(bytes).map_err(DsoError::Net)?;
        // Residue from a departed member (sequenced traffic stamped with a
        // past epoch): pretend-ack it so the leaver's settle converges
        // promptly, but keep its content and sequencing out of the live
        // per-link state — a joiner reusing the slot starts from zero.
        if self.arq.is_some() && !self.view.contains(from) {
            if let DsoMessage::Env { seq, ref inner } = msg {
                if inner.epoch().is_some_and(|e| e < self.view.epoch()) {
                    self.counters.cross_epoch_dropped.inc();
                    self.send_msg(from, DsoMessage::SeqAck { next: seq + 1 })?;
                    return Ok(None);
                }
            }
        }
        let Some(arq) = &mut self.arq else {
            return self.deliver(from, msg);
        };
        let p = usize::from(from);
        match msg {
            DsoMessage::Env { seq, inner } => {
                // In-order arrivals — this frame and any out-of-order
                // successors it unblocks — in delivery order. Codec
                // resolution happens below, after sequencing: this is the
                // exactly-once point the XOR shadows' lockstep relies on.
                let mut chain = Vec::new();
                if seq == arq.rx_next[p] {
                    arq.rx_next[p] += 1;
                    chain.push(*inner);
                    while let Some(next) = arq.ooo[p].remove(&arq.rx_next[p]) {
                        chain.push(next);
                        arq.rx_next[p] += 1;
                    }
                } else if seq > arq.rx_next[p] {
                    arq.ooo[p].entry(seq).or_insert(*inner);
                } else {
                    self.counters.duplicates_dropped.inc();
                }
                // Cumulative ack; doubles as a gap report when `seq` ran
                // ahead of `rx_next`. The sender may have exited between
                // emitting the frame and our ack (its frame sat in our rx
                // queue) — an ack nobody is left to consume is not owed.
                let ack = DsoMessage::SeqAck { next: arq.rx_next[p] };
                match self.send_msg(from, ack) {
                    Err(DsoError::Net(NetError::Disconnected)) => {}
                    other => other?,
                }
                // First resolved message is returned directly (callers
                // consume it before anything queued after it); the rest
                // queue behind whatever `ready` already holds, preserving
                // per-link FIFO.
                let mut delivered = None;
                for m in chain {
                    if let Some(d) = self.deliver(from, m)? {
                        if delivered.is_none() {
                            delivered = Some(d);
                        } else if let Some(arq) = &mut self.arq {
                            arq.ready.push_back(d);
                        }
                    }
                }
                Ok(delivered)
            }
            DsoMessage::SeqAck { next } => {
                arq.unacked[p].retain(|&s, _| s >= next);
                Ok(None)
            }
            // A plain message from a peer running without the layer (or a
            // legacy ack) is delivered as-is, codec resolution included.
            other => self.deliver(from, other),
        }
    }

    /// Blocking receive of the next logical message. With reliability
    /// enabled, waits are bounded by the retransmission timeout: each
    /// timeout resends everything unacknowledged (the `resync` path) until
    /// traffic flows again or the retry budget runs out.
    fn next_msg_blocking(&mut self) -> Result<(NodeId, DsoMessage), DsoError> {
        let Some(arq) = &mut self.arq else {
            // No reliability layer: still admit through the codec layer so
            // offers are consumed and compressed batches resolve.
            loop {
                let incoming = self.endpoint.recv().map_err(DsoError::Net)?;
                let admitted = self.admit_raw(incoming.from, &incoming.payload.bytes)?;
                reclaim_incoming(incoming.payload);
                if let Some(m) = admitted {
                    return Ok(m);
                }
            }
        };
        if let Some(m) = arq.ready.pop_front() {
            return Ok(m);
        }
        let cfg = arq.cfg;
        let mut silent = 0u32;
        loop {
            match self.endpoint.recv_deadline(cfg.rto).map_err(DsoError::Net)? {
                Some(incoming) => {
                    silent = 0;
                    let admitted = self.admit_raw(incoming.from, &incoming.payload.bytes)?;
                    reclaim_incoming(incoming.payload);
                    if let Some(m) = admitted {
                        return Ok(m);
                    }
                }
                None => {
                    if silent >= cfg.max_retries {
                        return Err(DsoError::Timeout { retries: silent });
                    }
                    silent += 1;
                    self.counters.resyncs.inc();
                    self.obs.record(
                        self.endpoint.now().as_micros(),
                        EventKind::Resync,
                        silent,
                        0,
                        0,
                    );
                    self.retransmit_unacked()?;
                }
            }
        }
    }

    /// Receive bounded by a wall/virtual-time `deadline` rather than the
    /// reliability layer's silent-round budget: used by bounded rendezvous
    /// waits, where "how long am I willing to wait" is the caller's
    /// decision, not the link layer's. With reliability enabled the wait
    /// is sliced at the retransmission timeout so unacked traffic keeps
    /// being resynced while the budget drains; `Ok(None)` means the
    /// deadline passed without a deliverable message.
    fn next_msg_deadline(
        &mut self,
        deadline: sdso_net::SimInstant,
    ) -> Result<Option<(NodeId, DsoMessage)>, DsoError> {
        if let Some(arq) = &mut self.arq {
            if let Some(m) = arq.ready.pop_front() {
                return Ok(Some(m));
            }
        }
        let rto = self.arq.as_ref().map(|a| a.cfg.rto);
        loop {
            let remaining = deadline.saturating_since(self.endpoint.now());
            if remaining == SimSpan::ZERO {
                return Ok(None);
            }
            let slice = match rto {
                Some(rto) if rto < remaining => rto,
                _ => remaining,
            };
            match self.endpoint.recv_deadline(slice).map_err(DsoError::Net)? {
                Some(incoming) => {
                    let admitted = self.admit_raw(incoming.from, &incoming.payload.bytes)?;
                    reclaim_incoming(incoming.payload);
                    if let Some(m) = admitted {
                        return Ok(Some(m));
                    }
                }
                None => {
                    // A silent RTO slice: resync unacked traffic exactly
                    // like the unbounded path, but charge the caller's
                    // budget instead of a retry counter.
                    if rto.is_some() {
                        self.counters.resyncs.inc();
                        self.obs.record(
                            self.endpoint.now().as_micros(),
                            EventKind::Resync,
                            0,
                            0,
                            0,
                        );
                        self.retransmit_unacked()?;
                    }
                }
            }
        }
    }

    /// Blocking receive without the silent-round retry budget: for a
    /// joiner waiting to be admitted, where arbitrarily long silence is
    /// expected (its join barrier lies at a far-future trigger tick) and
    /// it holds no unacknowledged traffic whose recovery a timeout would
    /// drive. A genuine group failure parks this process in the
    /// transport and surfaces through the scheduler's stall detection
    /// instead of a spurious retry-budget error.
    fn next_msg_wait(&mut self) -> Result<(NodeId, DsoMessage), DsoError> {
        if let Some(arq) = &mut self.arq {
            if let Some(m) = arq.ready.pop_front() {
                return Ok(m);
            }
        }
        loop {
            let incoming = self.endpoint.recv().map_err(DsoError::Net)?;
            let admitted = self.admit_raw(incoming.from, &incoming.payload.bytes)?;
            reclaim_incoming(incoming.payload);
            if let Some(m) = admitted {
                return Ok(m);
            }
        }
    }

    /// Non-blocking receive of the next logical message.
    fn next_msg_try(&mut self) -> Result<Option<(NodeId, DsoMessage)>, DsoError> {
        if let Some(arq) = &mut self.arq {
            if let Some(m) = arq.ready.pop_front() {
                return Ok(Some(m));
            }
        }
        while let Some(incoming) = self.endpoint.try_recv().map_err(DsoError::Net)? {
            let admitted = self.admit_raw(incoming.from, &incoming.payload.bytes)?;
            reclaim_incoming(incoming.payload);
            if let Some(m) = admitted {
                return Ok(Some(m));
            }
        }
        Ok(None)
    }

    /// Resends every unacknowledged message on every link, oldest first.
    fn retransmit_unacked(&mut self) -> Result<(), DsoError> {
        let Some(arq) = &self.arq else { return Ok(()) };
        let pending: Vec<(NodeId, u64, DsoMessage)> = arq
            .unacked
            .iter()
            .enumerate()
            .filter(|&(p, _)| self.view.contains(p as NodeId))
            .flat_map(|(p, q)| q.iter().map(move |(&s, m)| (p as NodeId, s, m.clone())))
            .collect();
        for (peer, seq, inner) in pending {
            self.counters.retransmits.inc();
            self.obs.record(
                self.endpoint.now().as_micros(),
                EventKind::Retransmit,
                u32::from(peer),
                seq as u32,
                0,
            );
            let payload = DsoMessage::Env { seq, inner: Box::new(inner) }
                .into_payload(self.config.frame_wire_len);
            self.send_retransmit(peer, payload)?;
        }
        Ok(())
    }

    /// One retransmission send. A permanently disconnected peer has
    /// finished its run and torn its endpoint down — every exchange it
    /// owed this process completed, so its unacked queue is residue (acks
    /// lost in the shutdown race), not recoverable traffic. Write the
    /// link off instead of turning every subsequent timeout into a fatal
    /// transport error.
    fn send_retransmit(&mut self, peer: NodeId, payload: Payload) -> Result<(), DsoError> {
        match self.endpoint.send(peer, payload) {
            Ok(()) => Ok(()),
            Err(NetError::Disconnected) => {
                self.counters.links_abandoned.inc();
                if let Some(arq) = &mut self.arq {
                    arq.unacked[usize::from(peer)].clear();
                }
                Ok(())
            }
            Err(e) => Err(DsoError::Net(e)),
        }
    }

    /// Drains the reliability link toward a departing peer: waits
    /// (retransmitting that link on each timeout) until the peer has
    /// acknowledged every frame this process sent it. Messages from other
    /// peers delivered along the way are queued for normal consumption.
    ///
    /// Bounded: returns after `LINK_SETTLE_ROUNDS` timeouts even if
    /// acks never came — the peer then settled and exited already, and
    /// nothing further is owed on the link.
    fn settle_link(&mut self, peer: NodeId) -> Result<(), DsoError> {
        const LINK_SETTLE_ROUNDS: u32 = 32;
        let Some(arq) = &self.arq else { return Ok(()) };
        let cfg = arq.cfg;
        let mut silent = 0u32;
        loop {
            let link_empty =
                self.arq.as_ref().is_none_or(|a| a.unacked[usize::from(peer)].is_empty());
            if link_empty || silent >= LINK_SETTLE_ROUNDS.min(cfg.max_retries) {
                return Ok(());
            }
            match self.endpoint.recv_deadline(cfg.rto).map_err(DsoError::Net)? {
                Some(incoming) => {
                    let queued = self.arq.as_ref().map_or(0, |a| a.ready.len());
                    if let Some(m) = self.admit_raw(incoming.from, &incoming.payload.bytes)? {
                        if let Some(arq) = &mut self.arq {
                            // Per-link FIFO: the head goes in front of the
                            // successors `admit_raw` queued behind it.
                            arq.ready.insert(queued, m);
                        }
                    }
                }
                None => {
                    silent += 1;
                    self.counters.resyncs.inc();
                    self.obs.record(
                        self.endpoint.now().as_micros(),
                        EventKind::Resync,
                        silent,
                        0,
                        0,
                    );
                    self.retransmit_link(peer)?;
                }
            }
        }
    }

    /// Resends every unacknowledged frame on one link, oldest first.
    fn retransmit_link(&mut self, peer: NodeId) -> Result<(), DsoError> {
        let Some(arq) = &self.arq else { return Ok(()) };
        let pending: Vec<(u64, DsoMessage)> =
            arq.unacked[usize::from(peer)].iter().map(|(&s, m)| (s, m.clone())).collect();
        for (seq, inner) in pending {
            self.counters.retransmits.inc();
            self.obs.record(
                self.endpoint.now().as_micros(),
                EventKind::Retransmit,
                u32::from(peer),
                seq as u32,
                0,
            );
            let payload = DsoMessage::Env { seq, inner: Box::new(inner) }
                .into_payload(self.config.frame_wire_len);
            self.send_retransmit(peer, payload)?;
        }
        Ok(())
    }

    /// Best-effort tail flush of the reliability layer: keeps receiving
    /// (and retransmitting on timeout) until every peer has acknowledged
    /// everything this process sent, then returns `true`. Returns `false`
    /// when the retry budget runs out or all peers have already exited —
    /// whatever was still unacknowledged is then undeliverable.
    ///
    /// Call this at the end of a run so that peers still waiting on lost
    /// traffic can recover; a no-op without a reliability config.
    ///
    /// # Errors
    ///
    /// Returns transport errors other than end-of-run conditions.
    pub fn settle(&mut self) -> Result<bool, DsoError> {
        let Some(arq) = &self.arq else {
            return Ok(true);
        };
        let cfg = arq.cfg;
        let mut silent = 0u32;
        loop {
            let all_acked =
                self.arq.as_ref().is_none_or(|a| a.unacked.iter().all(|q| q.is_empty()));
            if all_acked {
                return Ok(true);
            }
            if silent >= cfg.max_retries {
                return Ok(false);
            }
            match self.endpoint.recv_deadline(cfg.rto) {
                Ok(Some(incoming)) => {
                    silent = 0;
                    let (from, bytes) = (incoming.from, incoming.payload.bytes);
                    let admitted = self.admit_raw(from, &bytes)?;
                    sdso_net::pool::global().reclaim(bytes);
                    if let Some((from, msg)) = admitted {
                        self.absorb_settled(from, msg)?;
                    }
                    while let Some((from, msg)) =
                        self.arq.as_mut().and_then(|a| a.ready.pop_front())
                    {
                        self.absorb_settled(from, msg)?;
                    }
                }
                Ok(None) => {
                    silent += 1;
                    self.counters.resyncs.inc();
                    self.obs.record(
                        self.endpoint.now().as_micros(),
                        EventKind::Resync,
                        silent,
                        0,
                        0,
                    );
                    self.retransmit_unacked()?;
                }
                // Every other node finished: nobody is left to ack.
                Err(NetError::Deadlock(_)) | Err(NetError::Disconnected) => return Ok(false),
                Err(e) => return Err(DsoError::Net(e)),
            }
        }
    }

    /// Files a logical message that arrived during [`SdsoRuntime::settle`]:
    /// object traffic is serviced, app messages are queued, late rendezvous
    /// traffic is buffered (future) or ignored (already satisfied).
    fn absorb_settled(&mut self, from: NodeId, msg: DsoMessage) -> Result<(), DsoError> {
        if msg.epoch().is_some_and(|e| e < self.view.epoch()) {
            self.counters.cross_epoch_dropped.inc();
            return Ok(());
        }
        match msg {
            DsoMessage::Data { time, updates, .. } if time > self.clock.now() => {
                self.counters.early_buffered.inc();
                self.early.entry((from, time)).or_default().updates.extend(updates);
            }
            DsoMessage::Sync { time, .. } if time > self.clock.now() => {
                self.counters.early_buffered.inc();
                self.early.entry((from, time)).or_default().sync = true;
            }
            DsoMessage::Data { .. } | DsoMessage::Sync { .. } => {}
            other => {
                if let Some(Event::App { from, class, bytes }) = self.dispatch(from, other)? {
                    self.app_inbox.push_back((from, class, bytes));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Put/get/app plumbing (used by pull-based protocols such as EC)
    // ------------------------------------------------------------------

    /// Pushes an object's full body to `peer` without waiting (`async_put`).
    ///
    /// # Errors
    ///
    /// Returns transport errors or [`DsoError::UnknownObject`].
    pub fn async_put(&mut self, peer: NodeId, id: ObjectId) -> Result<(), DsoError> {
        let replica = self.store.replica(id)?;
        let msg = DsoMessage::Put {
            object: id,
            version: replica.version(),
            body: replica.data().to_vec(),
            wants_ack: false,
        };
        self.send_msg(peer, msg)
    }

    /// Pushes an object's full body to `peer` and blocks until the peer
    /// acknowledges receipt (`sync_put`).
    ///
    /// # Errors
    ///
    /// Returns transport errors or [`DsoError::UnknownObject`].
    pub fn sync_put(&mut self, peer: NodeId, id: ObjectId) -> Result<(), DsoError> {
        let replica = self.store.replica(id)?;
        let msg = DsoMessage::Put {
            object: id,
            version: replica.version(),
            body: replica.data().to_vec(),
            wants_ack: true,
        };
        self.send_msg(peer, msg)?;
        let target = self.acks_received + 1;
        while self.acks_received < target {
            match self.recv_event()? {
                Event::App { from, class, bytes } => {
                    self.app_inbox.push_back((from, class, bytes));
                }
                Event::Ack { .. } | Event::GetRep { .. } => {}
            }
        }
        Ok(())
    }

    /// Requests an object's current body from `peer` without blocking
    /// (`async_get`); the reply is applied whenever the message pump next
    /// runs.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn async_get(&mut self, peer: NodeId, id: ObjectId) -> Result<(), DsoError> {
        self.send_msg(peer, DsoMessage::GetReq { object: id })
    }

    /// Pulls an object's current body from `peer`, blocking until it
    /// arrives and has been applied (`sync_get`) — the call entry
    /// consistency uses "to pull the up-to-date copy of an object from the
    /// owner".
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn sync_get(&mut self, peer: NodeId, id: ObjectId) -> Result<(), DsoError> {
        self.send_msg(peer, DsoMessage::GetReq { object: id })?;
        loop {
            match self.recv_event()? {
                Event::GetRep { from, object } if from == peer && object == id => return Ok(()),
                Event::App { from, class, bytes } => {
                    self.app_inbox.push_back((from, class, bytes));
                }
                Event::GetRep { .. } | Event::Ack { .. } => {}
            }
        }
    }

    /// Sends protocol-layer bytes to `peer` with an explicit accounting
    /// class.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn send_app(
        &mut self,
        peer: NodeId,
        class: MsgClass,
        bytes: Vec<u8>,
    ) -> Result<(), DsoError> {
        self.send_msg(peer, DsoMessage::App { class, bytes })
    }

    /// Blocks until the next protocol-layer message arrives, servicing
    /// object traffic (`Put`, `GetReq`, `GetRep`, `Ack`) internally along
    /// the way.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a protocol violation if rendezvous
    /// traffic shows up (exchange- and pull-based protocols must not be
    /// mixed on one runtime).
    pub fn recv_app(&mut self) -> Result<(NodeId, Vec<u8>), DsoError> {
        if let Some((from, _class, bytes)) = self.app_inbox.pop_front() {
            return Ok((from, bytes));
        }
        loop {
            match self.recv_event()? {
                Event::App { from, bytes, .. } => return Ok((from, bytes)),
                Event::GetRep { .. } | Event::Ack { .. } => {}
            }
        }
    }

    /// Non-blocking variant of [`SdsoRuntime::recv_app`]: drains whatever
    /// already arrived.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a protocol violation on rendezvous
    /// traffic.
    pub fn try_recv_app(&mut self) -> Result<Option<(NodeId, Vec<u8>)>, DsoError> {
        if let Some((from, _class, bytes)) = self.app_inbox.pop_front() {
            return Ok(Some((from, bytes)));
        }
        while let Some(event) = self.try_recv_event()? {
            if let Event::App { from, bytes, .. } = event {
                return Ok(Some((from, bytes)));
            }
        }
        Ok(None)
    }

    /// Blocking message pump: receives one message, services object traffic
    /// internally, and surfaces everything else as an [`Event`].
    ///
    /// # Errors
    ///
    /// Returns transport errors or a protocol violation on rendezvous
    /// traffic.
    pub fn recv_event(&mut self) -> Result<Event, DsoError> {
        loop {
            let (from, msg) = self.next_msg_blocking()?;
            if let Some(event) = self.dispatch(from, msg)? {
                return Ok(event);
            }
        }
    }

    /// Non-blocking message pump.
    ///
    /// # Errors
    ///
    /// Returns transport errors or a protocol violation on rendezvous
    /// traffic.
    pub fn try_recv_event(&mut self) -> Result<Option<Event>, DsoError> {
        while let Some((from, msg)) = self.next_msg_try()? {
            if let Some(event) = self.dispatch(from, msg)? {
                return Ok(Some(event));
            }
        }
        Ok(None)
    }

    /// Services one logical message; returns an event if it must surface
    /// to the caller.
    fn dispatch(&mut self, from: NodeId, msg: DsoMessage) -> Result<Option<Event>, DsoError> {
        match msg {
            DsoMessage::Put { object, version, body, wants_ack } => {
                self.lamport = self.lamport.max(version.time.as_ticks());
                self.store.replace_if_newer(object, &body, version)?;
                if wants_ack {
                    self.send_msg(from, DsoMessage::Ack)?;
                }
                Ok(None)
            }
            DsoMessage::GetReq { object } => {
                let replica = self.store.replica(object)?;
                let rep = DsoMessage::GetRep {
                    object,
                    version: replica.version(),
                    body: replica.data().to_vec(),
                };
                self.send_msg(from, rep)?;
                Ok(None)
            }
            DsoMessage::GetRep { object, version, body } => {
                self.lamport = self.lamport.max(version.time.as_ticks());
                self.store.replace_if_newer(object, &body, version)?;
                Ok(Some(Event::GetRep { from, object }))
            }
            DsoMessage::Ack => {
                self.acks_received += 1;
                Ok(Some(Event::Ack { from }))
            }
            DsoMessage::App { class, bytes } => Ok(Some(Event::App { from, class, bytes })),
            DsoMessage::SnapshotReq { .. } => {
                self.send_snapshot(from)?;
                Ok(None)
            }
            // A duplicate of a snapshot this process already installed.
            DsoMessage::Snapshot { .. } => Ok(None),
            DsoMessage::Data { .. } | DsoMessage::Sync { .. } => Err(DsoError::ProtocolViolation(
                format!("rendezvous message from {from} outside an exchange"),
            )),
            DsoMessage::Env { .. } | DsoMessage::SeqAck { .. } => Err(DsoError::ProtocolViolation(
                format!("reliability-layer message from {from} reached dispatch"),
            )),
            // Consumed (offer) or resolved into plain `Data` (compressed
            // batch) by `deliver` at admission; reaching dispatch means a
            // receive path skipped the codec layer.
            DsoMessage::CodecOffer { .. } | DsoMessage::Data2 { .. } => {
                Err(DsoError::ProtocolViolation(format!(
                    "codec-layer message from {from} reached dispatch"
                )))
            }
        }
    }

    fn send_msg(&mut self, peer: NodeId, msg: DsoMessage) -> Result<(), DsoError> {
        // Suppress protocol traffic to non-members: a departed peer will
        // never consume it, and queueing it on the reliability layer would
        // leave permanently-unackable state. Sequence acks are exempt —
        // they are what lets a leaver's final settle converge.
        if !self.view.contains(peer) && !matches!(msg, DsoMessage::SeqAck { .. }) {
            self.counters.non_member_dropped.inc();
            return Ok(());
        }
        let payload = self.wrap_for_send(peer, msg);
        self.endpoint.send(peer, payload).map_err(DsoError::Net)
    }

    /// Sends several messages to `peer`, flushing them as one batched
    /// transport write when [`DsoConfig::batch_frames`] is on. Message
    /// content, order, and per-message accounting are identical to sending
    /// each with [`SdsoRuntime::send_msg`]; only the number of underlying
    /// transport writes changes.
    fn send_msgs(&mut self, peer: NodeId, msgs: Vec<DsoMessage>) -> Result<(), DsoError> {
        if !self.config.batch_frames || msgs.len() < 2 {
            for msg in msgs {
                self.send_msg(peer, msg)?;
            }
            return Ok(());
        }
        // Exchange batches never carry SeqAck, so suppression is all-or-none.
        if !self.view.contains(peer) {
            self.counters.non_member_dropped.add(msgs.len() as u64);
            return Ok(());
        }
        let mut payloads = Vec::with_capacity(msgs.len());
        for msg in msgs {
            payloads.push(self.wrap_for_send(peer, msg));
        }
        self.endpoint.send_batch(peer, payloads).map_err(DsoError::Net)
    }

    /// Wraps `msg` in the reliability envelope (when configured) and encodes
    /// it for the wire. Callers must have done non-member suppression.
    fn wrap_for_send(&mut self, peer: NodeId, msg: DsoMessage) -> Payload {
        let msg = match &mut self.arq {
            // Acks police the sequenced stream and must not join it.
            Some(arq) if !matches!(msg, DsoMessage::SeqAck { .. }) => {
                let p = usize::from(peer);
                let seq = arq.tx_seq[p];
                arq.tx_seq[p] += 1;
                arq.unacked[p].insert(seq, msg.clone());
                DsoMessage::Env { seq, inner: Box::new(msg) }
            }
            _ => msg,
        };
        msg.into_payload(self.config.frame_wire_len)
    }
}

/// Hands a fully-consumed incoming payload's storage back to the global
/// buffer pool, closing the pooled-encode recycle loop. A no-op when the
/// bytes are still shared (e.g. a fault layer kept a duplicate) or the
/// pool is full.
fn reclaim_incoming(payload: Payload) {
    sdso_net::pool::global().reclaim(payload.bytes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sfunction::EveryTick;
    use sdso_net::memory::{MemoryEndpoint, MemoryHub};

    fn pair_with(config: DsoConfig) -> Vec<SdsoRuntime<MemoryEndpoint>> {
        MemoryHub::new(2)
            .into_endpoints()
            .into_iter()
            .map(|ep| {
                let mut rt = SdsoRuntime::new(ep, config);
                rt.share(ObjectId(1), vec![0u8; 8]).unwrap();
                rt.share(ObjectId(2), vec![0u8; 8]).unwrap();
                rt.init_schedule(&mut EveryTick).unwrap();
                rt
            })
            .collect()
    }

    fn pair() -> Vec<SdsoRuntime<MemoryEndpoint>> {
        pair_with(DsoConfig::compact())
    }

    /// Runs both runtimes' closures on separate threads (exchange blocks).
    fn run_pair<E, F>(mut runtimes: Vec<SdsoRuntime<E>>, f: F) -> Vec<SdsoRuntime<E>>
    where
        E: Endpoint + 'static,
        F: Fn(&mut SdsoRuntime<E>) + Send + Sync + 'static + Copy,
    {
        let handles: Vec<_> = runtimes
            .drain(..)
            .map(|mut rt| {
                std::thread::spawn(move || {
                    f(&mut rt);
                    rt
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn compressed_exchange_negotiates_lazily_and_converges() {
        use crate::config::WireConfig;
        let runtimes = pair_with(DsoConfig::compact().with_wire(WireConfig::compressed()));
        let done = run_pair(runtimes, |rt| {
            let me = rt.node_id();
            let obj = if me == 0 { ObjectId(1) } else { ObjectId(2) };
            for round in 0..4u8 {
                rt.write(obj, usize::from(round) as u32, &[me as u8 + 1]).unwrap();
                rt.exchange(true, SendMode::Multicast, &mut EveryTick).unwrap();
                if round == 0 {
                    // Offers cross during the first exchange, so its data
                    // had to go out v1 absolute.
                    assert_eq!(rt.metrics().codec_v2_sent, 0);
                }
            }
            // Every post-negotiation batch went out compressed.
            assert_eq!(rt.metrics().codec_v2_sent, 3);
            assert_eq!(rt.metrics().codec_v2_fallbacks, 0);
        });
        // Bit-identical convergence: same final bytes as an uncompressed
        // pair applying the same writes would produce.
        for rt in &done {
            assert_eq!(rt.read(ObjectId(1)).unwrap(), &[1, 1, 1, 1, 0, 0, 0, 0]);
            assert_eq!(rt.read(ObjectId(2)).unwrap(), &[2, 2, 2, 2, 0, 0, 0, 0]);
        }
    }

    #[test]
    fn compressed_node_interops_with_uncompressed_peer() {
        use crate::config::WireConfig;
        let runtimes: Vec<_> = MemoryHub::new(2)
            .into_endpoints()
            .into_iter()
            .map(|ep| {
                // Node 0 wants compression; node 1 has it off and must
                // simply ignore the offer.
                let wire =
                    if ep.node_id() == 0 { WireConfig::compressed() } else { WireConfig::v1() };
                let mut rt = SdsoRuntime::new(ep, DsoConfig::compact().with_wire(wire));
                rt.share(ObjectId(1), vec![0u8; 8]).unwrap();
                rt.share(ObjectId(2), vec![0u8; 8]).unwrap();
                rt.init_schedule(&mut EveryTick).unwrap();
                rt
            })
            .collect();
        let done = run_pair(runtimes, |rt| {
            let me = rt.node_id();
            let obj = if me == 0 { ObjectId(1) } else { ObjectId(2) };
            for _ in 0..3 {
                rt.write(obj, 0, &[me as u8 + 1; 4]).unwrap();
                rt.exchange(true, SendMode::Multicast, &mut EveryTick).unwrap();
            }
            // The peer never offers back, so node 0 stays on v1 forever.
            assert_eq!(rt.metrics().codec_v2_sent, 0);
        });
        for rt in &done {
            assert_eq!(&rt.read(ObjectId(1)).unwrap()[..4], &[1; 4]);
            assert_eq!(&rt.read(ObjectId(2)).unwrap()[..4], &[2; 4]);
        }
    }

    #[test]
    fn codec_version_downgrades_after_reconnect() {
        use crate::config::WireConfig;
        let runtimes = pair_with(DsoConfig::compact().with_wire(WireConfig::compressed()));
        let done = run_pair(runtimes, |rt| {
            let me = rt.node_id();
            let obj = if me == 0 { ObjectId(1) } else { ObjectId(2) };
            let mut round = 0u8;
            let mut step = |rt: &mut SdsoRuntime<MemoryEndpoint>| {
                rt.write(obj, u32::from(round % 8), &[me as u8 + 1]).unwrap();
                rt.exchange(true, SendMode::Multicast, &mut EveryTick).unwrap();
                round += 1;
            };
            step(rt);
            step(rt); // Negotiated: this batch went out v2.
            assert_eq!(rt.metrics().codec_v2_sent, 1);
            if me == 0 {
                // What drain_departures does when node 1's link flaps:
                // forget the negotiation, restart the compressed stream.
                rt.downgrade_link_codec(1);
            }
            let before = rt.metrics().codec_v2_sent;
            step(rt); // Node 0 re-offers; its data goes v1 this round.
            if me == 0 {
                assert_eq!(
                    rt.metrics().codec_v2_sent,
                    before,
                    "a downgraded link must not send compressed batches"
                );
            }
            // The repeat offer makes the peer re-offer; within two more
            // rounds both replies have crossed and v2 resumes.
            step(rt);
            step(rt);
            assert!(
                rt.metrics().codec_v2_sent > before,
                "renegotiation must restore the compressed encoding"
            );
        });
        // The downgrade round, the v1 rounds, and the restored-v2 rounds
        // must all have applied: full bit-identical convergence.
        for rt in &done {
            assert_eq!(rt.read(ObjectId(1)).unwrap(), &[1, 1, 1, 1, 1, 0, 0, 0]);
            assert_eq!(rt.read(ObjectId(2)).unwrap(), &[2, 2, 2, 2, 2, 0, 0, 0]);
        }
    }

    #[test]
    fn dedup_updates_coalesces_same_object_batches() {
        let mut rt = pair().remove(0);
        let v = |t: u64, w: u16| Version::new(LogicalTime::from_ticks(t), w);
        let mut updates = vec![
            WireUpdate { object: ObjectId(1), diff: Diff::single(0, vec![1, 1]), version: v(1, 0) },
            WireUpdate { object: ObjectId(2), diff: Diff::single(4, vec![9]), version: v(2, 0) },
            WireUpdate { object: ObjectId(1), diff: Diff::single(1, vec![2, 2]), version: v(3, 0) },
        ];
        rt.dedup_updates(&mut updates);
        assert_eq!(updates.len(), 2);
        assert_eq!(updates[0].object, ObjectId(1));
        assert_eq!(updates[0].version, v(3, 0), "merged update keeps the newest stamp");
        let mut body = [0u8; 4];
        updates[0].diff.apply(&mut body).unwrap();
        assert_eq!(body, [1, 2, 2, 0], "later bytes win overlaps, as one-by-one application");
        assert_eq!(updates[1].object, ObjectId(2));
        assert_eq!(rt.metrics().batch_deduped, 1);
    }

    #[test]
    fn drain_departures_proposes_leave_for_dead_links() {
        let mut eps = MemoryHub::new(3).into_endpoints();
        drop(eps.pop().unwrap()); // Node 2 dies: its channels close.
        let mut rt = SdsoRuntime::new(eps.remove(0), DsoConfig::compact());
        assert!(rt.drain_departures().is_none(), "no link events before any traffic");
        // Sending into the closed channel surfaces the dead link.
        assert!(rt.endpoint_mut().send(2, Payload::control(vec![0u8])).is_err());
        assert_eq!(rt.drain_departures(), Some(ViewChange::leave([2])));
        assert!(rt.drain_departures().is_none(), "the drain consumes its events");
    }

    #[test]
    fn exchange_propagates_writes_both_ways() {
        let runtimes = pair();
        let done = run_pair(runtimes, |rt| {
            let me = rt.node_id();
            let obj = if me == 0 { ObjectId(1) } else { ObjectId(2) };
            rt.write(obj, 0, &[me as u8 + 1; 4]).unwrap();
            let report = rt.exchange(true, SendMode::Multicast, &mut EveryTick).unwrap();
            assert_eq!(report.time, LogicalTime::from_ticks(1));
            assert_eq!(report.peers.len(), 1);
        });
        for rt in &done {
            assert_eq!(&rt.read(ObjectId(1)).unwrap()[..4], &[1, 1, 1, 1]);
            assert_eq!(&rt.read(ObjectId(2)).unwrap()[..4], &[2, 2, 2, 2]);
        }
    }

    #[test]
    fn concurrent_writes_to_one_object_converge_lww() {
        let runtimes = pair();
        let done = run_pair(runtimes, |rt| {
            let me = rt.node_id();
            // Both write the same object in the same interval.
            rt.write(ObjectId(1), 0, &[me as u8 + 10; 8]).unwrap();
            rt.exchange(true, SendMode::Multicast, &mut EveryTick).unwrap();
        });
        // Same tick, higher writer id wins everywhere.
        for rt in &done {
            assert_eq!(rt.read(ObjectId(1)).unwrap(), &[11u8; 8]);
        }
    }

    #[test]
    fn repeated_exchanges_tick_the_clock() {
        let runtimes = pair();
        let done = run_pair(runtimes, |rt| {
            for i in 0..5u8 {
                rt.write(ObjectId(1), 0, &[i]).unwrap();
                rt.exchange(true, SendMode::Multicast, &mut EveryTick).unwrap();
            }
        });
        for rt in &done {
            assert_eq!(rt.logical_now(), LogicalTime::from_ticks(5));
            assert_eq!(rt.metrics().exchanges, 5);
        }
    }

    #[test]
    fn sync_put_transfers_and_acknowledges() {
        let mut runtimes = pair();
        let mut b = runtimes.pop().unwrap();
        let mut a = runtimes.pop().unwrap();
        let t = std::thread::spawn(move || {
            // B services the put via its pump (waits for an app message that
            // A sends afterwards as a completion signal).
            let (_, bytes) = b.recv_app().unwrap();
            assert_eq!(bytes, b"done");
            assert_eq!(b.read(ObjectId(1)).unwrap(), &[9u8; 8]);
            b
        });
        a.write(ObjectId(1), 0, &[9u8; 8]).unwrap();
        a.sync_put(1, ObjectId(1)).unwrap();
        a.send_app(1, MsgClass::Control, b"done".to_vec()).unwrap();
        t.join().unwrap();
    }

    #[test]
    fn sync_get_pulls_remote_state() {
        let mut runtimes = pair();
        let mut b = runtimes.pop().unwrap();
        let mut a = runtimes.pop().unwrap();
        let t = std::thread::spawn(move || {
            // B answers A's GetReq inside its pump, then returns.
            let (_, bytes) = b.recv_app().unwrap();
            assert_eq!(bytes, b"bye");
            b
        });
        // Make B's copy the newer one first.
        a.sync_get(1, ObjectId(1)).unwrap(); // pulls (identical) state
        a.send_app(1, MsgClass::Control, b"bye".to_vec()).unwrap();
        t.join().unwrap();
    }

    #[test]
    fn stale_version_dropped_on_apply() {
        let mut runtimes = pair();
        let mut b = runtimes.pop().unwrap();
        let mut a = runtimes.pop().unwrap();
        // A writes at tick 1 (clock 0 → stamp 1).
        a.write(ObjectId(1), 0, &[5; 8]).unwrap();
        let t = std::thread::spawn(move || {
            // B writes the same object at stamp 1 too but with higher id.
            b.write(ObjectId(1), 0, &[7; 8]).unwrap();
            b.exchange(true, SendMode::Multicast, &mut EveryTick).unwrap();
            b
        });
        a.exchange(true, SendMode::Multicast, &mut EveryTick).unwrap();
        let b = t.join().unwrap();
        assert_eq!(a.read(ObjectId(1)).unwrap(), &[7; 8]);
        assert_eq!(b.read(ObjectId(1)).unwrap(), &[7; 8]);
        assert_eq!(b.metrics().updates_stale, 1, "A's tied-but-lower write dropped at B");
    }

    #[test]
    fn frame_padding_applies_to_all_runtime_traffic() {
        let eps = MemoryHub::new(2).into_endpoints();
        let mut runtimes: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                let mut rt = SdsoRuntime::new(ep, DsoConfig::paper());
                rt.share(ObjectId(1), vec![0u8; 8]).unwrap();
                rt
            })
            .collect();
        runtimes[0].async_put(1, ObjectId(1)).unwrap();
        let sent = runtimes[0].net_metrics();
        assert_eq!(sent.data_sent.bytes, 2048);
    }

    #[test]
    fn broadcast_mode_ignores_schedule() {
        // Without init_schedule, multicast exchanges with nobody; broadcast
        // must still reach the peer.
        let eps = MemoryHub::new(2).into_endpoints();
        let runtimes: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
                rt.share(ObjectId(1), vec![0u8; 8]).unwrap();
                rt
            })
            .collect();
        let done = run_pair(runtimes, |rt| {
            rt.write(ObjectId(1), 0, &[rt.node_id() as u8 + 1]).unwrap();
            let report = rt.exchange(true, SendMode::Broadcast, &mut EveryTick).unwrap();
            assert_eq!(report.peers.len(), 1);
        });
        for rt in &done {
            assert_eq!(rt.read(ObjectId(1)).unwrap()[0], 2);
        }
    }

    #[test]
    fn push_mode_does_not_block() {
        // resync = false: the sender pushes and proceeds without replies.
        let mut runtimes = pair();
        let mut b = runtimes.pop().unwrap();
        let mut a = runtimes.pop().unwrap();
        a.write(ObjectId(1), 0, &[3]).unwrap();
        let report = a.exchange(false, SendMode::Multicast, &mut EveryTick).unwrap();
        assert_eq!(report.updates_applied, 0);
        // B's own (resync) exchange consumes A's pushed pair — A's push
        // already satisfied B's wait, so B completes without A blocking.
        let t = std::thread::spawn(move || {
            b.exchange(true, SendMode::Multicast, &mut EveryTick).unwrap();
            assert_eq!(b.read(ObjectId(1)).unwrap()[0], 3);
            b
        });
        t.join().unwrap();
        let _ = a;
    }

    #[test]
    fn lossy_exchange_recovers_via_resync() {
        use sdso_net::{FaultPlan, FaultyEndpoint};
        let plan = FaultPlan::new(7).with_drop(0.3).with_dup(0.1);
        let retry = RetryConfig { rto: SimSpan::from_millis(5), max_retries: 400 };
        let cfg = DsoConfig::compact().with_reliability(Some(retry));
        let runtimes: Vec<_> = MemoryHub::new(2)
            .into_endpoints()
            .into_iter()
            .map(|ep| {
                let mut rt = SdsoRuntime::new(FaultyEndpoint::new(ep, plan.clone()), cfg);
                rt.share(ObjectId(1), vec![0u8; 8]).unwrap();
                rt.init_schedule(&mut EveryTick).unwrap();
                rt
            })
            .collect();
        let done = run_pair(runtimes, |rt| {
            for i in 0..10u8 {
                rt.write(ObjectId(1), 0, &[(rt.node_id() as u8 + 1) * 10 + i]).unwrap();
                rt.exchange(true, SendMode::Multicast, &mut EveryTick).unwrap();
            }
            rt.settle().unwrap();
        });
        assert_eq!(
            done[0].read(ObjectId(1)).unwrap(),
            done[1].read(ObjectId(1)).unwrap(),
            "replicas converge despite a 30% drop / 10% dup link"
        );
        let m = done[0].metrics().merged(&done[1].metrics());
        let faults = done[0].net_metrics().merged(&done[1].net_metrics());
        assert!(faults.drops_injected > 0, "the plan really dropped traffic");
        assert!(
            m.resyncs > 0 && m.retransmits > 0,
            "lost rendezvous messages were recovered by timeout resync, got {m:?}"
        );
    }

    #[test]
    fn reliability_off_adds_no_wire_overhead() {
        // The EC fast path and the paper-fidelity metrics depend on plain
        // (unenveloped) traffic when reliability is off.
        let mut eps = MemoryHub::new(2).into_endpoints();
        let b = eps.pop().unwrap();
        let mut a = SdsoRuntime::new(eps.pop().unwrap(), DsoConfig::compact());
        a.share(ObjectId(1), vec![0u8; 8]).unwrap();
        a.async_put(1, ObjectId(1)).unwrap();
        let sent = a.net_metrics();
        assert_eq!(sent.data_sent.msgs, 1);
        drop(b);
    }

    #[test]
    fn unknown_object_write_rejected() {
        let mut runtimes = pair();
        let a = &mut runtimes[0];
        assert!(matches!(a.write(ObjectId(99), 0, &[1]), Err(DsoError::UnknownObject(_))));
    }
}
