//! Dirty-range tracking for object replicas.
//!
//! Every mutation of a replica records the `(offset, len)` span it touched so
//! diff construction can scan only the bytes that may have changed instead of
//! the whole object image ([`crate::Diff::between_ranges`]). Tracking is an
//! optimization, never a correctness dependency: once the span list grows past
//! [`MAX_SPANS`] (or a caller declares an untracked mutation) the set degrades
//! to [`untracked`](DirtyRanges::is_untracked) and diff builders fall back to
//! the full scan.

/// Span-list capacity before tracking collapses to the untracked fallback.
///
/// Past this many disjoint spans the bookkeeping costs more than the full
/// scan it avoids, and real write patterns (a handful of fields per tick)
/// never get close.
pub const MAX_SPANS: usize = 64;

/// A sorted, coalesced set of `(offset, len)` byte spans touched since the
/// last [`clear`](DirtyRanges::clear).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyRanges {
    /// Sorted by offset; no two spans overlap or touch.
    spans: Vec<(u32, u32)>,
    untracked: bool,
}

impl Default for DirtyRanges {
    fn default() -> Self {
        DirtyRanges::new()
    }
}

impl DirtyRanges {
    /// An empty (fully clean, tracked) set.
    pub fn new() -> Self {
        DirtyRanges { spans: Vec::new(), untracked: false }
    }

    /// Records that `len` bytes starting at `offset` may have changed.
    ///
    /// Overlapping and touching spans coalesce. Recording more than
    /// [`MAX_SPANS`] disjoint spans (or a span overflowing the `u32` address
    /// space) collapses the set to untracked.
    pub fn record(&mut self, offset: u32, len: u32) {
        if self.untracked || len == 0 {
            return;
        }
        let Some(end) = offset.checked_add(len) else {
            self.mark_untracked();
            return;
        };
        // Merge window: every span that overlaps or touches [offset, end).
        let lo = self.spans.partition_point(|&(o, l)| o + l < offset);
        let hi = self.spans.partition_point(|&(o, _)| o <= end);
        if lo == hi {
            self.spans.insert(lo, (offset, len));
        } else {
            let merged_off = self.spans[lo].0.min(offset);
            let (last_off, last_len) = self.spans[hi - 1];
            let merged_end = (last_off + last_len).max(end);
            self.spans[lo] = (merged_off, merged_end - merged_off);
            self.spans.drain(lo + 1..hi);
        }
        if self.spans.len() > MAX_SPANS {
            self.mark_untracked();
        }
    }

    /// Declares that bytes changed without saying which: from here on only a
    /// full scan is sound, until the next [`clear`](DirtyRanges::clear).
    pub fn mark_untracked(&mut self) {
        self.untracked = true;
        self.spans.clear();
    }

    /// Whether span information was lost and a full scan is required.
    pub fn is_untracked(&self) -> bool {
        self.untracked
    }

    /// Whether nothing has been recorded (and tracking never degraded).
    pub fn is_clean(&self) -> bool {
        !self.untracked && self.spans.is_empty()
    }

    /// Resets to fully clean and tracked (a new baseline was captured).
    pub fn clear(&mut self) {
        self.spans.clear();
        self.untracked = false;
    }

    /// The recorded spans in ascending offset order (empty when untracked).
    pub fn spans(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.spans.iter().copied()
    }

    /// Number of recorded spans.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Total bytes covered by recorded spans.
    pub fn dirty_bytes(&self) -> usize {
        self.spans.iter().map(|&(_, l)| l as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans(d: &DirtyRanges) -> Vec<(u32, u32)> {
        d.spans().collect()
    }

    #[test]
    fn starts_clean_and_tracked() {
        let d = DirtyRanges::new();
        assert!(d.is_clean());
        assert!(!d.is_untracked());
        assert_eq!(d.span_count(), 0);
    }

    #[test]
    fn disjoint_spans_stay_sorted() {
        let mut d = DirtyRanges::new();
        d.record(40, 4);
        d.record(0, 4);
        d.record(20, 4);
        assert_eq!(spans(&d), vec![(0, 4), (20, 4), (40, 4)]);
        assert_eq!(d.dirty_bytes(), 12);
    }

    #[test]
    fn overlapping_and_touching_spans_coalesce() {
        let mut d = DirtyRanges::new();
        d.record(10, 10);
        d.record(15, 10); // overlaps
        assert_eq!(spans(&d), vec![(10, 15)]);
        d.record(25, 5); // touches end
        assert_eq!(spans(&d), vec![(10, 20)]);
        d.record(5, 5); // touches start
        assert_eq!(spans(&d), vec![(5, 25)]);
    }

    #[test]
    fn bridging_span_swallows_neighbors() {
        let mut d = DirtyRanges::new();
        d.record(0, 2);
        d.record(10, 2);
        d.record(20, 2);
        d.record(1, 15); // bridges the first two, not the third
        assert_eq!(spans(&d), vec![(0, 16), (20, 2)]);
    }

    #[test]
    fn zero_len_is_noop() {
        let mut d = DirtyRanges::new();
        d.record(7, 0);
        assert!(d.is_clean());
    }

    #[test]
    fn overflow_degrades_to_untracked() {
        let mut d = DirtyRanges::new();
        d.record(u32::MAX - 1, 4);
        assert!(d.is_untracked());
        // Once untracked, record is a no-op until cleared.
        d.record(0, 4);
        assert_eq!(d.span_count(), 0);
        d.clear();
        assert!(d.is_clean());
        d.record(0, 4);
        assert_eq!(spans(&d), vec![(0, 4)]);
    }

    #[test]
    fn span_cap_degrades_to_untracked() {
        let mut d = DirtyRanges::new();
        for i in 0..MAX_SPANS as u32 {
            d.record(i * 10, 2);
        }
        assert!(!d.is_untracked());
        assert_eq!(d.span_count(), MAX_SPANS);
        d.record(u32::MAX - 8, 2); // one disjoint span too many
        assert!(d.is_untracked());
    }
}
