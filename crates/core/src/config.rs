/// Tunables of the S-DSO runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsoConfig {
    /// When set, every message's *modelled* wire size is padded up to this
    /// many bytes. The paper's system exchanged fixed-size frames: "the
    /// average data size is the same as the average control message size;
    /// both are 2048 bytes". `None` models variable-size frames.
    pub frame_wire_len: Option<u32>,
    /// Merge multiple diffs to one object into a single diff per slot (the
    /// paper's optimisation). Disable only for the ablation study.
    pub merge_diffs: bool,
}

impl DsoConfig {
    /// The paper's configuration: 2048-byte frames, diff merging on.
    pub fn paper() -> Self {
        DsoConfig { frame_wire_len: Some(2048), merge_diffs: true }
    }

    /// Compact frames (wire size = encoded size), diff merging on.
    pub fn compact() -> Self {
        DsoConfig { frame_wire_len: None, merge_diffs: true }
    }

    /// Returns a copy with a different frame size.
    pub fn with_frame_wire_len(mut self, len: Option<u32>) -> Self {
        self.frame_wire_len = len;
        self
    }

    /// Returns a copy with diff merging switched.
    pub fn with_merge_diffs(mut self, merge: bool) -> Self {
        self.merge_diffs = merge;
        self
    }
}

impl Default for DsoConfig {
    fn default() -> Self {
        DsoConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_reported_frame_size() {
        let c = DsoConfig::paper();
        assert_eq!(c.frame_wire_len, Some(2048));
        assert!(c.merge_diffs);
        assert_eq!(DsoConfig::default(), c);
    }

    #[test]
    fn builders_modify_single_fields() {
        let c = DsoConfig::paper().with_frame_wire_len(None).with_merge_diffs(false);
        assert_eq!(c.frame_wire_len, None);
        assert!(!c.merge_diffs);
    }
}
