use sdso_net::{SimSpan, TransportKind};

/// Retransmission tuning for the runtime's optional reliability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// How long a blocking wait lasts before unacknowledged traffic is
    /// retransmitted (the paper's `resync` path, triggered by a timeout
    /// instead of hanging on a lost rendezvous message).
    pub rto: SimSpan,
    /// Consecutive silent timeout rounds tolerated before a blocking wait
    /// fails with [`crate::DsoError::Timeout`].
    pub max_retries: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig { rto: SimSpan::from_millis(20), max_retries: 50 }
    }
}

/// Wire-compression tunables (codec v2; see `ARCHITECTURE.md` §14).
///
/// Everything here defaults to **off**: the committed perf baselines and
/// the bit-identical replay suites were recorded against the v1 wire
/// format, and compression only switches on for peers that negotiated it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireConfig {
    /// Offer codec v2 (varint/run-length diff encoding) to peers and use
    /// it on links where the peer offered it back. Peers that never offer
    /// (or older builds) keep receiving the v1 format.
    pub codec_v2: bool,
    /// On negotiated v2 links, XOR each diff against the link's shadow of
    /// the peer's last-delivered state before run-length encoding, so
    /// unchanged bytes inside rewritten ranges collapse to zero runs.
    /// Requires in-order exactly-once delivery on the link (the ARQ
    /// reliability layer, or a lossless FIFO transport); falls back to
    /// absolute encoding per update whenever no shadow exists. Implies
    /// nothing unless `codec_v2` is also set.
    pub xor_delta: bool,
    /// Coalesce overlapping/duplicate ranges to the same object inside one
    /// outgoing batch before framing (a buffered slot update and a
    /// current-interval update to the same object become one update).
    pub batch_dedup: bool,
}

impl WireConfig {
    /// Everything off — the v1 wire format, byte-for-byte.
    pub fn v1() -> Self {
        WireConfig::default()
    }

    /// The full bandwidth diet: v2 codec, XOR-delta, batch dedup.
    pub fn compressed() -> Self {
        WireConfig { codec_v2: true, xor_delta: true, batch_dedup: true }
    }
}

/// Tunables of the S-DSO runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsoConfig {
    /// When set, every message's *modelled* wire size is padded up to this
    /// many bytes. The paper's system exchanged fixed-size frames: "the
    /// average data size is the same as the average control message size;
    /// both are 2048 bytes". `None` models variable-size frames.
    pub frame_wire_len: Option<u32>,
    /// Merge multiple diffs to one object into a single diff per slot (the
    /// paper's optimisation). Disable only for the ablation study.
    pub merge_diffs: bool,
    /// When set, every message is sequenced per link and retransmitted on
    /// timeout until acknowledged, giving in-order exactly-once delivery
    /// over lossy transports. `None` (the paper's configuration — its
    /// testbed network did not lose messages) adds zero wire or metric
    /// overhead.
    pub reliability: Option<RetryConfig>,
    /// Flush each exchange's messages to a peer (its `Data` + `SYNC` pair)
    /// as one batched transport write instead of one write per message.
    /// Message content, ordering, and per-message metrics are identical
    /// either way — batching only collapses the number of syscalls/locks on
    /// transports that support it.
    pub batch_frames: bool,
    /// Which real-socket transport cluster builders should construct when a
    /// deployment runs over actual TCP. Purely advisory for the runtime
    /// itself (it accepts any [`Endpoint`](sdso_net::Endpoint)); harness and
    /// deployment code consult it. Simulated and in-memory transports ignore
    /// this knob entirely, so deterministic replays are unaffected.
    pub transport: TransportKind,
    /// Wire-compression layer (codec v2 negotiation, XOR-delta, batch
    /// dedup). Defaults to all-off, which reproduces the v1 wire format
    /// byte-for-byte.
    pub wire: WireConfig,
}

impl DsoConfig {
    /// The paper's configuration: 2048-byte frames, diff merging on.
    pub fn paper() -> Self {
        DsoConfig {
            frame_wire_len: Some(2048),
            merge_diffs: true,
            reliability: None,
            batch_frames: true,
            transport: TransportKind::default(),
            wire: WireConfig::default(),
        }
    }

    /// Compact frames (wire size = encoded size), diff merging on.
    pub fn compact() -> Self {
        DsoConfig {
            frame_wire_len: None,
            merge_diffs: true,
            reliability: None,
            batch_frames: true,
            transport: TransportKind::default(),
            wire: WireConfig::default(),
        }
    }

    /// Returns a copy with a different frame size.
    pub fn with_frame_wire_len(mut self, len: Option<u32>) -> Self {
        self.frame_wire_len = len;
        self
    }

    /// Returns a copy with diff merging switched.
    pub fn with_merge_diffs(mut self, merge: bool) -> Self {
        self.merge_diffs = merge;
        self
    }

    /// Returns a copy with the reliability layer switched.
    pub fn with_reliability(mut self, reliability: Option<RetryConfig>) -> Self {
        self.reliability = reliability;
        self
    }

    /// Returns a copy with per-peer frame batching switched.
    pub fn with_batch_frames(mut self, batch: bool) -> Self {
        self.batch_frames = batch;
        self
    }

    /// Returns a copy selecting a real-socket transport implementation.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Returns a copy with the wire-compression layer configured.
    pub fn with_wire(mut self, wire: WireConfig) -> Self {
        self.wire = wire;
        self
    }
}

impl Default for DsoConfig {
    fn default() -> Self {
        DsoConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_reported_frame_size() {
        let c = DsoConfig::paper();
        assert_eq!(c.frame_wire_len, Some(2048));
        assert!(c.merge_diffs);
        assert_eq!(DsoConfig::default(), c);
    }

    #[test]
    fn builders_modify_single_fields() {
        let c = DsoConfig::paper().with_frame_wire_len(None).with_merge_diffs(false);
        assert_eq!(c.frame_wire_len, None);
        assert!(!c.merge_diffs);
        assert_eq!(c.reliability, None);
        let r = c.with_reliability(Some(RetryConfig::default()));
        assert_eq!(r.reliability.unwrap().max_retries, 50);
    }

    #[test]
    fn batching_defaults_on_and_toggles() {
        assert!(DsoConfig::paper().batch_frames);
        assert!(DsoConfig::compact().batch_frames);
        assert!(!DsoConfig::paper().with_batch_frames(false).batch_frames);
    }

    #[test]
    fn wire_compression_defaults_off_and_toggles() {
        assert_eq!(DsoConfig::paper().wire, WireConfig::v1());
        assert_eq!(DsoConfig::compact().wire, WireConfig::default());
        let c = DsoConfig::compact().with_wire(WireConfig::compressed());
        assert!(c.wire.codec_v2 && c.wire.xor_delta && c.wire.batch_dedup);
        assert!(!WireConfig::v1().codec_v2);
    }

    #[test]
    fn transport_defaults_to_platform_and_toggles() {
        assert_eq!(DsoConfig::paper().transport, TransportKind::default());
        let c = DsoConfig::paper().with_transport(TransportKind::Tcp);
        assert_eq!(c.transport, TransportKind::Tcp);
    }
}
