use std::fmt;

use sdso_net::wire::{Wire, WireReader, WireWriter};
use sdso_net::{NetError, NodeId};

use crate::clock::LogicalTime;

/// Identifies a shared object within an S-DSO application.
///
/// Applications choose their own id space; the distributed tank game, for
/// instance, uses one object per block of its 32×24 grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

impl Wire for ObjectId {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.0);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(ObjectId(r.get_u32()?))
    }
}

/// The version stamp of an object replica: the *Lamport time* of its latest
/// applied write, plus the writer's id.
///
/// Versions order writes totally — by Lamport time, ties broken by writer
/// id — which gives every replica the same deterministic last-writer-wins
/// outcome for concurrent modifications of one object. Because the runtime
/// advances its Lamport clock past every stamp it observes, causally later
/// writes always carry larger stamps, even between processes whose
/// rendezvous-tick clocks have drifted arbitrarily far apart. Fresh-enough
/// delivery for objects that *matter* is the s-function's job; versions
/// only guarantee convergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version {
    /// Lamport time of the latest write.
    pub time: LogicalTime,
    /// The process that performed it.
    pub writer: NodeId,
}

impl Version {
    /// The version of a never-written object.
    pub const INITIAL: Version = Version { time: LogicalTime::ZERO, writer: 0 };

    /// Creates a version stamp.
    pub fn new(time: LogicalTime, writer: NodeId) -> Self {
        Version { time, writer }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}@p{}", self.time, self.writer)
    }
}

impl Wire for Version {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.time.as_ticks());
        w.put_u16(self.writer);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        let time = LogicalTime::from_ticks(r.get_u64()?);
        let writer = r.get_u16()?;
        Ok(Version { time, writer })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdso_net::wire;

    #[test]
    fn versions_order_by_time_then_writer() {
        let a = Version::new(LogicalTime::from_ticks(1), 5);
        let b = Version::new(LogicalTime::from_ticks(2), 0);
        let c = Version::new(LogicalTime::from_ticks(2), 1);
        assert!(a < b && b < c);
    }

    #[test]
    fn wire_roundtrips() {
        let v = Version::new(LogicalTime::from_ticks(77), 3);
        let decoded: Version = wire::decode(&wire::encode(&v)).unwrap();
        assert_eq!(decoded, v);
        let id = ObjectId(1234);
        let decoded: ObjectId = wire::decode(&wire::encode(&id)).unwrap();
        assert_eq!(decoded, id);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ObjectId(7).to_string(), "obj#7");
        assert_eq!(Version::new(LogicalTime::from_ticks(3), 2).to_string(), "v3@p2");
    }
}
