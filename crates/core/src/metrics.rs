use sdso_net::SimSpan;

/// Counters the S-DSO runtime maintains about its own behaviour.
///
/// These complement the transport-level counters in
/// [`sdso_net::NetMetrics`]: together they feed the paper's Figure 8
/// (protocol overhead as a fraction of execution time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DsoMetrics {
    /// `exchange` calls performed.
    pub exchanges: u64,
    /// Rendezvous partners summed over all exchanges.
    pub rendezvous_peers: u64,
    /// Object updates shipped (after merging).
    pub updates_sent: u64,
    /// Remote updates applied to local replicas.
    pub updates_applied: u64,
    /// Remote updates dropped because a newer version was already applied
    /// (the last-writer-wins convergence rule).
    pub updates_stale: u64,
    /// Messages that arrived stamped in the logical future and were
    /// buffered until their tick.
    pub early_buffered: u64,
    /// Blocking waits that timed out and triggered the resync path
    /// (retransmission of all unacknowledged traffic).
    pub resyncs: u64,
    /// Individual messages retransmitted by the reliability layer.
    pub retransmits: u64,
    /// Received messages discarded as duplicates by the reliability
    /// layer's per-link sequencing.
    pub duplicates_dropped: u64,
    /// Virtual/wall time spent inside `exchange` (sending, waiting and
    /// applying) — the lookahead protocols' entire overhead.
    pub exchange_time: SimSpan,
    /// The portion of [`DsoMetrics::exchange_time`] spent blocked waiting
    /// for rendezvous partners.
    pub exchange_wait: SimSpan,
}

impl DsoMetrics {
    /// Element-wise sum (for aggregating across processes).
    pub fn merged(&self, other: &DsoMetrics) -> DsoMetrics {
        DsoMetrics {
            exchanges: self.exchanges + other.exchanges,
            rendezvous_peers: self.rendezvous_peers + other.rendezvous_peers,
            updates_sent: self.updates_sent + other.updates_sent,
            updates_applied: self.updates_applied + other.updates_applied,
            updates_stale: self.updates_stale + other.updates_stale,
            early_buffered: self.early_buffered + other.early_buffered,
            resyncs: self.resyncs + other.resyncs,
            retransmits: self.retransmits + other.retransmits,
            duplicates_dropped: self.duplicates_dropped + other.duplicates_dropped,
            exchange_time: self.exchange_time + other.exchange_time,
            exchange_wait: self.exchange_wait + other.exchange_wait,
        }
    }

    /// Average rendezvous group size per exchange.
    pub fn avg_rendezvous_size(&self) -> f64 {
        if self.exchanges == 0 {
            0.0
        } else {
            self.rendezvous_peers as f64 / self.exchanges as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_sums_everything() {
        let a = DsoMetrics { exchanges: 2, updates_sent: 3, ..DsoMetrics::default() };
        let b = DsoMetrics {
            exchanges: 1,
            exchange_wait: SimSpan::from_micros(5),
            ..DsoMetrics::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.exchanges, 3);
        assert_eq!(m.updates_sent, 3);
        assert_eq!(m.exchange_wait.as_micros(), 5);
    }

    #[test]
    fn avg_rendezvous_size_handles_zero() {
        assert_eq!(DsoMetrics::default().avg_rendezvous_size(), 0.0);
        let m = DsoMetrics { exchanges: 4, rendezvous_peers: 6, ..DsoMetrics::default() };
        assert!((m.avg_rendezvous_size() - 1.5).abs() < 1e-9);
    }
}
