use sdso_net::SimSpan;
use sdso_obs::{Counter, Histogram, MetricsRegistry};

/// Counters the S-DSO runtime maintains about its own behaviour.
///
/// These complement the transport-level counters in
/// [`sdso_net::NetMetrics`]: together they feed the paper's Figure 8
/// (protocol overhead as a fraction of execution time).
///
/// Since the `sdso-obs` migration this is a *view*: the live counters are
/// registered under `dso.*` in the node's unified
/// [`MetricsRegistry`], and the runtime materializes this struct from them
/// on demand so Figure 5–8 harness code keeps compiling unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DsoMetrics {
    /// `exchange` calls performed.
    pub exchanges: u64,
    /// Rendezvous partners summed over all exchanges.
    pub rendezvous_peers: u64,
    /// Object updates shipped (after merging).
    pub updates_sent: u64,
    /// Remote updates applied to local replicas.
    pub updates_applied: u64,
    /// Remote updates dropped because a newer version was already applied
    /// (the last-writer-wins convergence rule).
    pub updates_stale: u64,
    /// Messages that arrived stamped in the logical future and were
    /// buffered until their tick.
    pub early_buffered: u64,
    /// Blocking waits that timed out and triggered the resync path
    /// (retransmission of all unacknowledged traffic).
    pub resyncs: u64,
    /// Individual messages retransmitted by the reliability layer.
    pub retransmits: u64,
    /// Received messages discarded as duplicates by the reliability
    /// layer's per-link sequencing.
    pub duplicates_dropped: u64,
    /// Reliability links written off because the transport reported the
    /// peer permanently disconnected mid-retransmit: the peer finished
    /// and tore its endpoint down, so its unacked queue is undeliverable.
    pub links_abandoned: u64,
    /// View changes applied (join/leave barriers crossed).
    pub view_changes: u64,
    /// Rendezvous messages dropped because they were stamped with a stale
    /// membership epoch (residue from a departed peer).
    pub cross_epoch_dropped: u64,
    /// Pending slot updates compacted away when their peer left the group
    /// (the would-be leak, made visible).
    pub slots_compacted: u64,
    /// Sends suppressed because the destination is not a member of the
    /// current view.
    pub non_member_dropped: u64,
    /// Pending updates withheld from a live multicast exchange because the
    /// destination's interest set does not cover the object's region (they
    /// stay buffered and flush at the next broadcast exchange).
    pub shard_suppressed: u64,
    /// Update batches shipped in the compressed v2 wire encoding
    /// (varint/run-length, optionally XOR-delta'd against the link shadow).
    pub codec_v2_sent: u64,
    /// Update batches that fell back to the absolute v1 encoding after v2
    /// was negotiated (oversized run, or no seedable XOR shadow).
    pub codec_v2_fallbacks: u64,
    /// Updates coalesced away by batch-level dedup before framing
    /// (overlapping same-object diffs merged into one update).
    pub batch_deduped: u64,
    /// State snapshots pushed to late joiners.
    pub snapshots_sent: u64,
    /// Encoded bytes of snapshot payloads pushed (O(objects), never
    /// O(history) — asserted by the churn integration tests).
    pub snapshot_bytes: u64,
    /// Snapshots installed by this process as a late joiner.
    pub snapshots_installed: u64,
    /// Virtual/wall time spent inside `exchange` (sending, waiting and
    /// applying) — the lookahead protocols' entire overhead.
    pub exchange_time: SimSpan,
    /// The portion of [`DsoMetrics::exchange_time`] spent blocked waiting
    /// for rendezvous partners.
    pub exchange_wait: SimSpan,
}

impl DsoMetrics {
    /// Element-wise sum (for aggregating across processes).
    pub fn merged(&self, other: &DsoMetrics) -> DsoMetrics {
        DsoMetrics {
            exchanges: self.exchanges + other.exchanges,
            rendezvous_peers: self.rendezvous_peers + other.rendezvous_peers,
            updates_sent: self.updates_sent + other.updates_sent,
            updates_applied: self.updates_applied + other.updates_applied,
            updates_stale: self.updates_stale + other.updates_stale,
            early_buffered: self.early_buffered + other.early_buffered,
            resyncs: self.resyncs + other.resyncs,
            retransmits: self.retransmits + other.retransmits,
            duplicates_dropped: self.duplicates_dropped + other.duplicates_dropped,
            links_abandoned: self.links_abandoned + other.links_abandoned,
            view_changes: self.view_changes + other.view_changes,
            cross_epoch_dropped: self.cross_epoch_dropped + other.cross_epoch_dropped,
            slots_compacted: self.slots_compacted + other.slots_compacted,
            non_member_dropped: self.non_member_dropped + other.non_member_dropped,
            shard_suppressed: self.shard_suppressed + other.shard_suppressed,
            codec_v2_sent: self.codec_v2_sent + other.codec_v2_sent,
            codec_v2_fallbacks: self.codec_v2_fallbacks + other.codec_v2_fallbacks,
            batch_deduped: self.batch_deduped + other.batch_deduped,
            snapshots_sent: self.snapshots_sent + other.snapshots_sent,
            snapshot_bytes: self.snapshot_bytes + other.snapshot_bytes,
            snapshots_installed: self.snapshots_installed + other.snapshots_installed,
            exchange_time: self.exchange_time + other.exchange_time,
            exchange_wait: self.exchange_wait + other.exchange_wait,
        }
    }

    /// Average rendezvous group size per exchange.
    pub fn avg_rendezvous_size(&self) -> f64 {
        if self.exchanges == 0 {
            0.0
        } else {
            self.rendezvous_peers as f64 / self.exchanges as f64
        }
    }
}

/// The runtime's live counters, registered under `dso.*` in the node's
/// unified metrics registry. [`DsoCounters::view`] materializes the
/// classic [`DsoMetrics`] struct from them.
#[derive(Debug, Clone)]
pub(crate) struct DsoCounters {
    pub(crate) exchanges: Counter,
    pub(crate) rendezvous_peers: Counter,
    pub(crate) updates_sent: Counter,
    pub(crate) updates_applied: Counter,
    pub(crate) updates_stale: Counter,
    pub(crate) early_buffered: Counter,
    pub(crate) resyncs: Counter,
    pub(crate) retransmits: Counter,
    pub(crate) duplicates_dropped: Counter,
    pub(crate) links_abandoned: Counter,
    pub(crate) view_changes: Counter,
    pub(crate) cross_epoch_dropped: Counter,
    pub(crate) slots_compacted: Counter,
    pub(crate) non_member_dropped: Counter,
    pub(crate) shard_suppressed: Counter,
    pub(crate) codec_v2_sent: Counter,
    pub(crate) codec_v2_fallbacks: Counter,
    pub(crate) batch_deduped: Counter,
    pub(crate) snapshots_sent: Counter,
    pub(crate) snapshot_bytes: Counter,
    pub(crate) snapshots_installed: Counter,
    pub(crate) exchange_time_micros: Counter,
    pub(crate) exchange_wait_micros: Counter,
    /// Per-exchange latency distribution (microseconds).
    pub(crate) exchange_latency: Histogram,
    /// Per-exchange rendezvous wait distribution (microseconds).
    pub(crate) wait_latency: Histogram,
}

impl DsoCounters {
    pub(crate) fn in_registry(registry: &MetricsRegistry) -> Self {
        DsoCounters {
            exchanges: registry.counter("dso.exchanges"),
            rendezvous_peers: registry.counter("dso.rendezvous_peers"),
            updates_sent: registry.counter("dso.updates.sent"),
            updates_applied: registry.counter("dso.updates.applied"),
            updates_stale: registry.counter("dso.updates.stale"),
            early_buffered: registry.counter("dso.early_buffered"),
            resyncs: registry.counter("dso.resyncs"),
            retransmits: registry.counter("dso.retransmits"),
            duplicates_dropped: registry.counter("dso.duplicates_dropped"),
            links_abandoned: registry.counter("dso.links_abandoned"),
            view_changes: registry.counter("dso.member.view_changes"),
            cross_epoch_dropped: registry.counter("dso.member.cross_epoch_dropped"),
            slots_compacted: registry.counter("dso.member.slots_compacted"),
            non_member_dropped: registry.counter("dso.member.non_member_dropped"),
            shard_suppressed: registry.counter("dso.shard.suppressed"),
            codec_v2_sent: registry.counter("dso.codec.v2_sent"),
            codec_v2_fallbacks: registry.counter("dso.codec.v2_fallbacks"),
            batch_deduped: registry.counter("dso.codec.batch_deduped"),
            snapshots_sent: registry.counter("dso.member.snapshots_sent"),
            snapshot_bytes: registry.counter("dso.member.snapshot_bytes"),
            snapshots_installed: registry.counter("dso.member.snapshots_installed"),
            exchange_time_micros: registry.counter("dso.exchange_time_micros"),
            exchange_wait_micros: registry.counter("dso.exchange_wait_micros"),
            exchange_latency: registry.histogram("dso.exchange_micros"),
            wait_latency: registry.histogram("dso.wait_micros"),
        }
    }

    /// The classic by-value metrics struct, read from the live counters.
    pub(crate) fn view(&self) -> DsoMetrics {
        DsoMetrics {
            exchanges: self.exchanges.get(),
            rendezvous_peers: self.rendezvous_peers.get(),
            updates_sent: self.updates_sent.get(),
            updates_applied: self.updates_applied.get(),
            updates_stale: self.updates_stale.get(),
            early_buffered: self.early_buffered.get(),
            resyncs: self.resyncs.get(),
            retransmits: self.retransmits.get(),
            duplicates_dropped: self.duplicates_dropped.get(),
            links_abandoned: self.links_abandoned.get(),
            view_changes: self.view_changes.get(),
            cross_epoch_dropped: self.cross_epoch_dropped.get(),
            slots_compacted: self.slots_compacted.get(),
            non_member_dropped: self.non_member_dropped.get(),
            shard_suppressed: self.shard_suppressed.get(),
            codec_v2_sent: self.codec_v2_sent.get(),
            codec_v2_fallbacks: self.codec_v2_fallbacks.get(),
            batch_deduped: self.batch_deduped.get(),
            snapshots_sent: self.snapshots_sent.get(),
            snapshot_bytes: self.snapshot_bytes.get(),
            snapshots_installed: self.snapshots_installed.get(),
            exchange_time: SimSpan::from_micros(self.exchange_time_micros.get()),
            exchange_wait: SimSpan::from_micros(self.exchange_wait_micros.get()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_view_round_trips_through_the_registry() {
        let registry = MetricsRegistry::new();
        let c = DsoCounters::in_registry(&registry);
        c.exchanges.inc();
        c.rendezvous_peers.add(3);
        c.exchange_time_micros.add(250);
        let view = c.view();
        assert_eq!(view.exchanges, 1);
        assert_eq!(view.rendezvous_peers, 3);
        assert_eq!(view.exchange_time.as_micros(), 250);
        assert_eq!(registry.snapshot().counter("dso.exchanges"), 1);
    }

    #[test]
    fn merged_sums_everything() {
        let a = DsoMetrics { exchanges: 2, updates_sent: 3, ..DsoMetrics::default() };
        let b = DsoMetrics {
            exchanges: 1,
            exchange_wait: SimSpan::from_micros(5),
            ..DsoMetrics::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.exchanges, 3);
        assert_eq!(m.updates_sent, 3);
        assert_eq!(m.exchange_wait.as_micros(), 5);
    }

    #[test]
    fn avg_rendezvous_size_handles_zero() {
        assert_eq!(DsoMetrics::default().avg_rendezvous_size(), 0.0);
        let m = DsoMetrics { exchanges: 4, rendezvous_peers: 6, ..DsoMetrics::default() };
        assert!((m.avg_rendezvous_size() - 1.5).abs() < 1e-9);
    }
}
