use std::fmt;

use sdso_net::{NetError, NodeId, SimSpan};

use crate::object::ObjectId;

/// Errors produced by the S-DSO runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum DsoError {
    /// A transport-level failure.
    Net(NetError),
    /// An operation referenced an object never registered with `share`.
    UnknownObject(ObjectId),
    /// An object id was registered with `share` twice.
    AlreadyShared(ObjectId),
    /// A write fell outside an object's bounds.
    OutOfBounds {
        /// The object written.
        object: ObjectId,
        /// Write start offset.
        offset: u32,
        /// Write length.
        len: usize,
        /// The object's size.
        size: usize,
    },
    /// A peer violated the exchange protocol (e.g. a message stamped in the
    /// logical past, or an unexpected message kind during a rendezvous).
    ProtocolViolation(String),
    /// A reliability-layer blocking wait exhausted its retry budget without
    /// hearing anything from the network.
    Timeout {
        /// Retransmission rounds performed before giving up.
        retries: u32,
    },
    /// A bounded rendezvous wait ran out of budget with peers still owing
    /// their `(data, SYNC)` pair, and the caller had no membership-level
    /// escalation left (e.g. removing them would empty the group). The
    /// crash-tolerant protocols normally convert this condition into a
    /// view change instead of surfacing it.
    PeerUnresponsive {
        /// The peers that never completed the rendezvous.
        peers: Vec<NodeId>,
        /// How long the bounded wait was willing to wait.
        waited: SimSpan,
    },
}

impl fmt::Display for DsoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsoError::Net(e) => write!(f, "transport error: {e}"),
            DsoError::UnknownObject(id) => write!(f, "object {id} was never shared"),
            DsoError::AlreadyShared(id) => write!(f, "object {id} already shared"),
            DsoError::OutOfBounds { object, offset, len, size } => write!(
                f,
                "write of {len} bytes at offset {offset} exceeds object {object} of {size} bytes"
            ),
            DsoError::ProtocolViolation(msg) => write!(f, "protocol violation: {msg}"),
            DsoError::Timeout { retries } => {
                write!(f, "gave up after {retries} retransmission rounds with no incoming traffic")
            }
            DsoError::PeerUnresponsive { peers, waited } => {
                write!(f, "peers {peers:?} unresponsive after a {waited:?} bounded rendezvous")
            }
        }
    }
}

impl std::error::Error for DsoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DsoError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for DsoError {
    fn from(e: NetError) -> Self {
        DsoError::Net(e)
    }
}

impl From<DsoError> for NetError {
    /// Lowers a runtime error onto the transport error type (protocol
    /// details flatten into a codec-error message). Exists so cluster
    /// closures whose signature is `Result<T, NetError>` can use `?` on
    /// runtime calls instead of hand-rolling this match at every site.
    fn from(e: DsoError) -> Self {
        match e {
            DsoError::Net(net) => net,
            other => NetError::Codec(format!("protocol failure: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        let e = DsoError::OutOfBounds { object: ObjectId(3), offset: 10, len: 4, size: 8 };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains('4') && s.contains('8'));
        assert!(DsoError::UnknownObject(ObjectId(9)).to_string().contains('9'));
    }
}
