use std::collections::BTreeMap;

use crate::diff::Diff;
use crate::dirty::DirtyRanges;
use crate::error::DsoError;
use crate::object::{ObjectId, Version};

/// One local replica of a shared object.
#[derive(Debug, Clone)]
pub struct Replica {
    data: Vec<u8>,
    /// The bytes the object was registered with. Every process registers
    /// the same initial contents (the `share` contract), which makes this a
    /// deterministic seed both ends of a link can derive independently —
    /// the wire codec's XOR shadows start from it.
    initial: Vec<u8>,
    version: Version,
    /// Spans touched since the last [`ObjectStore::clear_dirty`]; lets diff
    /// builders scan only changed regions ([`Diff::between_ranges`]).
    dirty: DirtyRanges,
}

impl Replica {
    /// The replica's current bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The bytes the object was registered with (identical on every
    /// process by the `share` contract).
    pub fn initial_body(&self) -> &[u8] {
        &self.initial
    }

    /// The replica's version stamp.
    pub fn version(&self) -> Version {
        self.version
    }

    /// Object size in bytes (fixed at `share` time).
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Byte spans mutated since the last baseline
    /// ([`ObjectStore::clear_dirty`]); untracked means "assume anything
    /// changed" and forces a full scan.
    pub fn dirty_ranges(&self) -> &DirtyRanges {
        &self.dirty
    }

    /// Diff from `baseline` to the replica's current bytes, scanning only
    /// dirty spans (full scan when tracking degraded).
    ///
    /// `baseline` must be a snapshot of this replica taken when the dirty set
    /// was last cleared, so the spans cover every byte that differs.
    ///
    /// # Panics
    ///
    /// Panics if `baseline` has a different length than the replica.
    pub fn diff_since(&self, baseline: &[u8]) -> Diff {
        Diff::between_ranges(baseline, &self.data, &self.dirty)
    }
}

/// A process's local table of object replicas.
///
/// Objects are registered once with [`ObjectStore::share`] ("all objects are
/// declared shared at the initialization phase of a program"; S-DSO has no
/// `unshare`). Every process registers the same objects with the same
/// initial contents, so replicas start identical.
#[derive(Debug, Default)]
pub struct ObjectStore {
    objects: BTreeMap<ObjectId, Replica>,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Registers `id` with its initial contents.
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::AlreadyShared`] if `id` was registered before.
    pub fn share(&mut self, id: ObjectId, initial: Vec<u8>) -> Result<(), DsoError> {
        if self.objects.contains_key(&id) {
            return Err(DsoError::AlreadyShared(id));
        }
        self.objects.insert(
            id,
            Replica {
                data: initial.clone(),
                initial,
                version: Version::INITIAL,
                dirty: DirtyRanges::new(),
            },
        );
        Ok(())
    }

    /// Looks up a replica.
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::UnknownObject`] if `id` was never shared.
    pub fn replica(&self, id: ObjectId) -> Result<&Replica, DsoError> {
        self.objects.get(&id).ok_or(DsoError::UnknownObject(id))
    }

    /// Reads an object's bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::UnknownObject`] if `id` was never shared.
    pub fn read(&self, id: ObjectId) -> Result<&[u8], DsoError> {
        Ok(self.replica(id)?.data())
    }

    /// Writes `bytes` at `offset`, stamping the replica with `version`.
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::UnknownObject`] or [`DsoError::OutOfBounds`].
    pub fn write(
        &mut self,
        id: ObjectId,
        offset: u32,
        bytes: &[u8],
        version: Version,
    ) -> Result<(), DsoError> {
        let replica = self.objects.get_mut(&id).ok_or(DsoError::UnknownObject(id))?;
        let end = offset as usize + bytes.len();
        if end > replica.data.len() {
            return Err(DsoError::OutOfBounds {
                object: id,
                offset,
                len: bytes.len(),
                size: replica.data.len(),
            });
        }
        replica.data[offset as usize..end].copy_from_slice(bytes);
        replica.version = replica.version.max(version);
        replica.dirty.record(offset, bytes.len() as u32);
        Ok(())
    }

    /// Replaces an object's entire contents (used by pull-based protocols
    /// that ship whole bodies rather than diffs).
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::UnknownObject`], or [`DsoError::OutOfBounds`] if
    /// the body size does not match the registered size.
    pub fn replace(&mut self, id: ObjectId, body: &[u8], version: Version) -> Result<(), DsoError> {
        let replica = self.objects.get_mut(&id).ok_or(DsoError::UnknownObject(id))?;
        if body.len() != replica.data.len() {
            return Err(DsoError::OutOfBounds {
                object: id,
                offset: 0,
                len: body.len(),
                size: replica.data.len(),
            });
        }
        replica.data.copy_from_slice(body);
        replica.version = version;
        replica.dirty.record(0, body.len() as u32);
        Ok(())
    }

    /// Replaces an object's contents only if `version` is newer than the
    /// replica's current version, returning whether it was applied.
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::UnknownObject`], or [`DsoError::OutOfBounds`] if
    /// the body size does not match the registered size.
    pub fn replace_if_newer(
        &mut self,
        id: ObjectId,
        body: &[u8],
        version: Version,
    ) -> Result<bool, DsoError> {
        let current = self.replica(id)?.version();
        if version <= current {
            return Ok(false);
        }
        self.replace(id, body, version)?;
        Ok(true)
    }

    /// Applies a remote diff stamped `version` if (and only if) it is newer
    /// than the replica's version, returning whether it was applied.
    ///
    /// This is the convergence rule: each object's replicas resolve
    /// same-interval concurrent writes by last-writer-wins on
    /// [`Version`]'s total order, deterministically on every process.
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::UnknownObject`], or a codec error if the diff
    /// exceeds the object's bounds.
    pub fn apply_remote(
        &mut self,
        id: ObjectId,
        diff: &Diff,
        version: Version,
    ) -> Result<bool, DsoError> {
        let replica = self.objects.get_mut(&id).ok_or(DsoError::UnknownObject(id))?;
        if version <= replica.version {
            return Ok(false);
        }
        diff.apply(&mut replica.data).map_err(DsoError::Net)?;
        replica.version = version;
        for (offset, bytes) in diff.runs() {
            replica.dirty.record(offset, bytes.len() as u32);
        }
        Ok(true)
    }

    /// Resets `id`'s dirty tracking — call after capturing a baseline
    /// snapshot so subsequent [`Replica::diff_since`] calls scan only what
    /// changed from that snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::UnknownObject`] if `id` was never shared.
    pub fn clear_dirty(&mut self, id: ObjectId) -> Result<(), DsoError> {
        let replica = self.objects.get_mut(&id).ok_or(DsoError::UnknownObject(id))?;
        replica.dirty.clear();
        Ok(())
    }

    /// Number of shared objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether no objects are shared.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterates over `(id, replica)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &Replica)> {
        self.objects.iter().map(|(&id, r)| (id, r))
    }

    /// The bytes `id` was registered with, or `None` if it was never
    /// shared. See [`Replica::initial_body`].
    pub fn initial_body(&self, id: ObjectId) -> Option<&[u8]> {
        self.objects.get(&id).map(|r| r.initial_body())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LogicalTime;

    fn v(t: u64, w: u16) -> Version {
        Version::new(LogicalTime::from_ticks(t), w)
    }

    #[test]
    fn share_then_read_back() {
        let mut s = ObjectStore::new();
        s.share(ObjectId(1), vec![1, 2, 3]).unwrap();
        assert_eq!(s.read(ObjectId(1)).unwrap(), &[1, 2, 3]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn double_share_rejected() {
        let mut s = ObjectStore::new();
        s.share(ObjectId(1), vec![0]).unwrap();
        assert!(matches!(s.share(ObjectId(1), vec![0]), Err(DsoError::AlreadyShared(_))));
    }

    #[test]
    fn unknown_object_rejected_everywhere() {
        let mut s = ObjectStore::new();
        assert!(s.read(ObjectId(9)).is_err());
        assert!(s.write(ObjectId(9), 0, &[1], v(1, 0)).is_err());
        assert!(s.apply_remote(ObjectId(9), &Diff::empty(), v(1, 0)).is_err());
    }

    #[test]
    fn write_bounds_checked() {
        let mut s = ObjectStore::new();
        s.share(ObjectId(1), vec![0; 4]).unwrap();
        assert!(matches!(
            s.write(ObjectId(1), 2, &[1, 2, 3], v(1, 0)),
            Err(DsoError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn apply_remote_respects_version_order() {
        let mut s = ObjectStore::new();
        s.share(ObjectId(1), vec![0; 4]).unwrap();
        let newer = Diff::single(0, vec![9; 4]);
        assert!(s.apply_remote(ObjectId(1), &newer, v(2, 1)).unwrap());
        assert_eq!(s.read(ObjectId(1)).unwrap(), &[9; 4]);

        // An older write must be discarded.
        let older = Diff::single(0, vec![7; 4]);
        assert!(!s.apply_remote(ObjectId(1), &older, v(1, 0)).unwrap());
        assert_eq!(s.read(ObjectId(1)).unwrap(), &[9; 4]);

        // Same tick, higher writer id wins.
        let tie = Diff::single(0, vec![5; 4]);
        assert!(s.apply_remote(ObjectId(1), &tie, v(2, 3)).unwrap());
        assert_eq!(s.read(ObjectId(1)).unwrap(), &[5; 4]);
    }

    #[test]
    fn replace_requires_matching_size() {
        let mut s = ObjectStore::new();
        s.share(ObjectId(1), vec![0; 4]).unwrap();
        assert!(s.replace(ObjectId(1), &[1; 3], v(1, 0)).is_err());
        s.replace(ObjectId(1), &[1; 4], v(1, 0)).unwrap();
        assert_eq!(s.replica(ObjectId(1)).unwrap().version(), v(1, 0));
    }

    #[test]
    fn writes_record_dirty_spans_and_diff_since_matches_full_scan() {
        let mut s = ObjectStore::new();
        s.share(ObjectId(1), vec![0u8; 128]).unwrap();
        let baseline = s.read(ObjectId(1)).unwrap().to_vec();

        s.write(ObjectId(1), 8, &[1, 2, 3], v(1, 0)).unwrap();
        s.write(ObjectId(1), 100, &[4; 10], v(2, 0)).unwrap();
        let replica = s.replica(ObjectId(1)).unwrap();
        assert_eq!(replica.dirty_ranges().span_count(), 2);
        assert_eq!(replica.dirty_ranges().dirty_bytes(), 13);

        let tracked = replica.diff_since(&baseline);
        assert_eq!(tracked, Diff::between(&baseline, replica.data()));
        assert_eq!(tracked.byte_count(), 13);
    }

    #[test]
    fn clear_dirty_starts_a_new_baseline() {
        let mut s = ObjectStore::new();
        s.share(ObjectId(1), vec![0u8; 32]).unwrap();
        s.write(ObjectId(1), 0, &[1; 4], v(1, 0)).unwrap();
        s.clear_dirty(ObjectId(1)).unwrap();
        assert!(s.replica(ObjectId(1)).unwrap().dirty_ranges().is_clean());

        let baseline = s.read(ObjectId(1)).unwrap().to_vec();
        s.write(ObjectId(1), 10, &[2; 2], v(2, 0)).unwrap();
        let replica = s.replica(ObjectId(1)).unwrap();
        let tracked = replica.diff_since(&baseline);
        assert_eq!(tracked, Diff::between(&baseline, replica.data()));
        assert_eq!(tracked.byte_count(), 2);

        assert!(s.clear_dirty(ObjectId(9)).is_err());
    }

    #[test]
    fn replace_and_apply_remote_record_dirty() {
        let mut s = ObjectStore::new();
        s.share(ObjectId(1), vec![0u8; 16]).unwrap();
        s.replace(ObjectId(1), &[1; 16], v(1, 0)).unwrap();
        assert_eq!(s.replica(ObjectId(1)).unwrap().dirty_ranges().dirty_bytes(), 16);

        s.clear_dirty(ObjectId(1)).unwrap();
        let remote = Diff::single(4, vec![9; 4]);
        assert!(s.apply_remote(ObjectId(1), &remote, v(2, 1)).unwrap());
        let replica = s.replica(ObjectId(1)).unwrap();
        assert_eq!(replica.dirty_ranges().span_count(), 1);
        assert_eq!(replica.dirty_ranges().dirty_bytes(), 4);

        // A stale remote diff is discarded and must not dirty anything.
        s.clear_dirty(ObjectId(1)).unwrap();
        assert!(!s.apply_remote(ObjectId(1), &remote, v(1, 0)).unwrap());
        assert!(s.replica(ObjectId(1)).unwrap().dirty_ranges().is_clean());
    }

    #[test]
    fn initial_body_survives_writes() {
        let mut s = ObjectStore::new();
        s.share(ObjectId(1), vec![7; 4]).unwrap();
        s.write(ObjectId(1), 0, &[1, 2], v(1, 0)).unwrap();
        assert_eq!(s.initial_body(ObjectId(1)).unwrap(), &[7; 4]);
        assert_eq!(s.read(ObjectId(1)).unwrap(), &[1, 2, 7, 7]);
        assert!(s.initial_body(ObjectId(9)).is_none());
    }

    #[test]
    fn local_write_bumps_version_monotonically() {
        let mut s = ObjectStore::new();
        s.share(ObjectId(1), vec![0; 4]).unwrap();
        s.write(ObjectId(1), 0, &[1], v(5, 2)).unwrap();
        // A later write with an *older* stamp must not roll the version back.
        s.write(ObjectId(1), 1, &[1], v(3, 1)).unwrap();
        assert_eq!(s.replica(ObjectId(1)).unwrap().version(), v(5, 2));
    }
}
