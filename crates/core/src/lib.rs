//! # S-DSO — semantic distributed shared objects
//!
//! A reproduction of the S(emantic)-DSO system from *"Exploiting Temporal
//! and Spatial Constraints on Distributed Shared Objects"* (West, Schwan,
//! Tacic, Ahamad; ICDCS 1997).
//!
//! S-DSO is a distributed-shared-object runtime in which the *application*
//! tells the consistency layer, via a user-written semantic function
//! ([`SFunction`]), **when** it must next exchange updates and **with whom**
//! — the paper's *temporal* and *spatial* consistency constraints. The
//! runtime maintains, per process:
//!
//! * a replicated [`ObjectStore`] of byte-array objects registered once with
//!   [`SdsoRuntime::share`];
//! * a [`LogicalClock`] advanced one tick per object modification;
//! * an [`ExchangeList`] of `(exchange-time, process)` pairs (paper Fig. 2);
//! * a [`SlottedBuffer`] of per-peer outstanding [`Diff`]s (paper Fig. 3).
//!
//! [`SdsoRuntime::exchange`] implements the paper's Fig. 4 pseudo-code: it
//! ships `(data, SYNC)` pairs to the peers that are due, blocks until they
//! reciprocate, applies their updates, and re-runs the s-function to
//! schedule the next rendezvous. The lookahead protocols BSYNC, MSYNC and
//! MSYNC2 of the paper are all instantiations of this engine with different
//! s-functions (see the `sdso-protocols` and `sdso-game` crates).
//!
//! # Conflict granularity
//!
//! When two processes write the *same object* in the same logical interval,
//! every replica resolves the race identically by whole-object
//! last-writer-wins on [`Version`]'s total order (time, then writer id).
//! The convergence unit is therefore the object: model each independently
//! written unit as its own object — exactly as the paper's game does with
//! one object per grid block — and races stay well-defined. The paper
//! itself leaves data races to "application-specific methods"; the tank
//! game additionally *avoids* them with its lowest-ID-blocks arbitration
//! rule.
//!
//! # Example
//!
//! Two processes, each writing its own object, rendezvousing once
//! (BSYNC-style every-tick schedule):
//!
//! ```
//! use sdso_core::{DsoConfig, EveryTick, ObjectId, SdsoRuntime, SendMode};
//! use sdso_net::memory::MemoryHub;
//!
//! # fn main() -> Result<(), sdso_core::DsoError> {
//! let mut handles = Vec::new();
//! for ep in MemoryHub::new(2).into_endpoints() {
//!     handles.push(std::thread::spawn(move || -> Result<(u8, u8), sdso_core::DsoError> {
//!         let mut rt = SdsoRuntime::new(ep, DsoConfig::paper());
//!         rt.share(ObjectId(0), vec![0u8; 1])?;
//!         rt.share(ObjectId(1), vec![0u8; 1])?;
//!         rt.init_schedule(&mut EveryTick)?;
//!         let me = rt.node_id();
//!         rt.write(ObjectId(u32::from(me)), 0, &[me as u8 + 1])?;
//!         rt.exchange(true, SendMode::Multicast, &mut EveryTick)?;
//!         Ok((rt.read(ObjectId(0))?[0], rt.read(ObjectId(1))?[0]))
//!     }));
//! }
//! for h in handles {
//!     assert_eq!(h.join().unwrap()?, (1, 2)); // both writes visible
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod clock;
mod codec;
mod config;
mod diff;
mod dirty;
mod error;
mod exchange_list;
mod metrics;
mod object;
mod router;
mod runtime;
mod sfunction;
mod slotted_buffer;
mod store;
pub mod wire;

pub use clock::{LogicalClock, LogicalTime};
pub use codec::{CODEC_V1, CODEC_V2};
pub use config::{DsoConfig, RetryConfig, WireConfig};
pub use diff::Diff;
pub use dirty::DirtyRanges;
pub use error::DsoError;
pub use exchange_list::ExchangeList;
pub use metrics::DsoMetrics;
pub use object::{ObjectId, Version};
pub use router::{DiffRouter, RouteAll};
pub use runtime::{Event, ExchangeReport, SdsoRuntime, SendMode};
pub use sdso_member::{
    leave_change_from_events, Epoch, MemberError, MembershipPlan, MembershipView, ViewChange,
};
pub use sdso_obs::{text_histogram_dump, Obs, ObsSet};
pub use sfunction::{EveryTick, Never, SFunction};
pub use slotted_buffer::{PendingUpdate, SlottedBuffer};
pub use store::{ObjectStore, Replica};
