use std::collections::BTreeMap;

use sdso_net::NodeId;

use crate::diff::Diff;
use crate::object::{ObjectId, Version};

/// A pending update for one object in one peer's slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingUpdate {
    /// The object modified.
    pub object: ObjectId,
    /// The (possibly merged) diff to ship.
    pub diff: Diff,
    /// Stamp of the newest local write folded into `diff`.
    pub version: Version,
}

/// The per-process slotted buffer of outstanding modifications (paper
/// Fig. 3).
///
/// "S-DSO maintains a slotted buffer at each process for outstanding
/// modifications to be exchanged with remote processes. There is one slot in
/// the buffer for each remote process. [...] the buffered changes are diffs
/// of the state of each object since their previous modification", and
/// "S-DSO can be tuned to merge multiple diffs to the same object into one
/// diff since the last exchange with a given process." With merging disabled
/// (the ablation configuration) every modification stays a separate pending
/// update and is shipped separately.
///
/// # Example
///
/// ```
/// use sdso_core::{Diff, LogicalTime, ObjectId, SlottedBuffer, Version};
///
/// let mut buf = SlottedBuffer::new(3, 0, true);
/// let stamp = Version::new(LogicalTime::from_ticks(1), 0);
/// buf.buffer_for_all(ObjectId(7), &Diff::single(0, vec![1]), stamp, &[2]);
/// assert_eq!(buf.slot_len(1), 1); // peer 1 got the update buffered
/// assert_eq!(buf.slot_len(2), 0); // peer 2 was exchanged with directly
/// ```
#[derive(Debug)]
pub struct SlottedBuffer {
    /// slot\[peer\] — `None` at the local process's own index. Each object
    /// maps to one or more pending updates (more than one only when merging
    /// is disabled).
    slots: Vec<Option<BTreeMap<ObjectId, Vec<PendingUpdate>>>>,
    me: usize,
    merge: bool,
    merged_count: u64,
}

impl SlottedBuffer {
    /// Creates a buffer for a cluster of `num_nodes`, local process `me`.
    /// `merge` enables per-object diff merging (the paper's optimisation;
    /// disable it only for the ablation study).
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range.
    pub fn new(num_nodes: usize, me: NodeId, merge: bool) -> Self {
        assert!(usize::from(me) < num_nodes, "local id out of range");
        let slots = (0..num_nodes)
            .map(|i| if i == usize::from(me) { None } else { Some(BTreeMap::new()) })
            .collect();
        SlottedBuffer { slots, me: usize::from(me), merge, merged_count: 0 }
    }

    /// Buffers a local modification for every remote peer except those in
    /// `exclude` (the peers the update was just sent to directly).
    pub fn buffer_for_all(
        &mut self,
        object: ObjectId,
        diff: &Diff,
        version: Version,
        exclude: &[NodeId],
    ) {
        if diff.is_empty() {
            return;
        }
        for (peer, slot) in self.slots.iter_mut().enumerate() {
            let Some(slot) = slot else { continue };
            if exclude.contains(&(peer as NodeId)) {
                continue;
            }
            let entries = slot.entry(object).or_default();
            match entries.last_mut() {
                Some(pending) if self.merge => {
                    pending.diff.merge_in_place(diff);
                    pending.version = pending.version.max(version);
                    self.merged_count += 1;
                }
                _ => {
                    entries.push(PendingUpdate { object, diff: diff.clone(), version });
                }
            }
        }
    }

    /// Drains `peer`'s slot, returning the pending updates in object order
    /// (oldest-first within one object when merging is disabled).
    ///
    /// # Panics
    ///
    /// Panics if `peer` is the local process or out of range.
    pub fn drain_slot(&mut self, peer: NodeId) -> Vec<PendingUpdate> {
        let slot = self.slots[usize::from(peer)].as_mut().expect("drain_slot: peer must be remote");
        std::mem::take(slot).into_values().flatten().collect()
    }

    /// Drains only the pending updates for `peer` whose object satisfies
    /// `ship`, returning them in object order and *retaining* the rest in
    /// the slot (still merged, so the retained tail stays bounded by the
    /// object count when merging is on).
    ///
    /// This is the interest-routing drain: a live multicast exchange ships
    /// only the objects inside the peer's interest set; everything else
    /// stays buffered and is flushed by the next broadcast exchange (epoch
    /// barriers and the terminal sync), which uses the unfiltered
    /// [`SlottedBuffer::drain_slot`]. No update is ever dropped — routing
    /// only defers delivery, so final worlds stay bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is the local process or out of range.
    pub fn drain_slot_filtered(
        &mut self,
        peer: NodeId,
        mut ship: impl FnMut(ObjectId) -> bool,
    ) -> Vec<PendingUpdate> {
        let slot = self.slots[usize::from(peer)]
            .as_mut()
            .expect("drain_slot_filtered: peer must be remote");
        let mut shipped = Vec::new();
        let retained = std::mem::take(slot);
        for (object, updates) in retained {
            if ship(object) {
                shipped.extend(updates);
            } else {
                slot.insert(object, updates);
            }
        }
        shipped
    }

    /// Number of pending updates for `peer`.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is the local process or out of range.
    pub fn slot_len(&self, peer: NodeId) -> usize {
        self.slots[usize::from(peer)]
            .as_ref()
            .expect("slot_len: peer must be remote")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Compacts away a departed peer's slot, returning whatever pending
    /// updates it still held so the caller can account for (rather than
    /// silently leak) undelivered work. Subsequent `buffer_for_all` calls
    /// skip the peer; `drain_slot`/`slot_len` panic on it like they do for
    /// the local process.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is the local process, out of range, or already
    /// removed.
    pub fn remove_peer(&mut self, peer: NodeId) -> Vec<PendingUpdate> {
        let slot = self.slots[usize::from(peer)]
            .take()
            .expect("remove_peer: peer must be an active remote");
        slot.into_values().flatten().collect()
    }

    /// (Re-)activates a slot for a peer that joined the group, starting
    /// empty: a joiner is brought up to date by snapshot transfer, not by
    /// replaying history, so no back-fill of past diffs is required.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is the local process or already active.
    pub fn add_peer(&mut self, peer: NodeId) {
        let idx = usize::from(peer);
        assert!(idx != self.me, "add_peer: peer must be remote");
        if idx == self.slots.len() {
            self.slots.push(Some(BTreeMap::new()));
            return;
        }
        let slot = &mut self.slots[idx];
        assert!(slot.is_none(), "add_peer: slot already active");
        *slot = Some(BTreeMap::new());
    }

    /// Whether `peer` currently has an active slot.
    pub fn has_peer(&self, peer: NodeId) -> bool {
        self.slots.get(usize::from(peer)).is_some_and(Option::is_some)
    }

    /// How many per-object merges have occurred (for the diff-merging
    /// ablation metric).
    pub fn merged_count(&self) -> u64 {
        self.merged_count
    }

    /// Total updates pending across all slots.
    pub fn total_pending(&self) -> usize {
        self.slots.iter().flatten().flat_map(BTreeMap::values).map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LogicalTime;

    fn v(t: u64, w: u16) -> Version {
        Version::new(LogicalTime::from_ticks(t), w)
    }

    fn buf() -> SlottedBuffer {
        SlottedBuffer::new(4, 1, true)
    }

    #[test]
    fn buffers_for_every_remote_peer() {
        let mut b = buf();
        b.buffer_for_all(ObjectId(1), &Diff::single(0, vec![1]), v(1, 1), &[]);
        for peer in [0u16, 2, 3] {
            assert_eq!(b.slot_len(peer), 1);
        }
        assert_eq!(b.total_pending(), 3);
    }

    #[test]
    fn excluded_peers_skip_buffering() {
        let mut b = buf();
        b.buffer_for_all(ObjectId(1), &Diff::single(0, vec![1]), v(1, 1), &[0, 3]);
        assert_eq!(b.slot_len(0), 0);
        assert_eq!(b.slot_len(2), 1);
        assert_eq!(b.slot_len(3), 0);
    }

    #[test]
    fn merges_diffs_per_object() {
        let mut b = buf();
        b.buffer_for_all(ObjectId(1), &Diff::single(0, vec![1, 1]), v(1, 1), &[]);
        b.buffer_for_all(ObjectId(1), &Diff::single(1, vec![2, 2]), v(2, 1), &[]);
        assert_eq!(b.slot_len(0), 1, "same object merged into one entry");
        let drained = b.drain_slot(0);
        assert_eq!(drained.len(), 1);
        let mut target = vec![0u8; 3];
        drained[0].diff.apply(&mut target).unwrap();
        assert_eq!(target, vec![1, 2, 2]);
        assert_eq!(drained[0].version, v(2, 1));
        assert!(b.merged_count() > 0);
    }

    #[test]
    fn merging_disabled_keeps_updates_separate() {
        let mut b = SlottedBuffer::new(2, 0, false);
        b.buffer_for_all(ObjectId(1), &Diff::single(0, vec![1]), v(1, 0), &[]);
        b.buffer_for_all(ObjectId(1), &Diff::single(0, vec![2]), v(2, 0), &[]);
        assert_eq!(b.slot_len(1), 2);
        assert_eq!(b.merged_count(), 0);
        let drained = b.drain_slot(1);
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].version, v(1, 0), "oldest first");
    }

    #[test]
    fn drain_empties_only_that_slot() {
        let mut b = buf();
        b.buffer_for_all(ObjectId(1), &Diff::single(0, vec![1]), v(1, 1), &[]);
        let drained = b.drain_slot(2);
        assert_eq!(drained.len(), 1);
        assert_eq!(b.slot_len(2), 0);
        assert_eq!(b.slot_len(0), 1, "other slots untouched");
    }

    #[test]
    fn empty_diff_not_buffered() {
        let mut b = buf();
        b.buffer_for_all(ObjectId(1), &Diff::empty(), v(1, 1), &[]);
        assert_eq!(b.total_pending(), 0);
    }

    #[test]
    #[should_panic(expected = "remote")]
    fn draining_own_slot_panics() {
        let mut b = buf();
        let _ = b.drain_slot(1);
    }

    #[test]
    fn remove_peer_compacts_pending_updates_instead_of_leaking() {
        // The leak scenario: a peer departs while its slot still holds
        // merged diffs that were never delivered. Removal must surface
        // those updates to the caller and drop the slot from all
        // accounting, so `total_pending` cannot count phantom work for a
        // peer that will never rendezvous again.
        let mut b = buf();
        b.buffer_for_all(ObjectId(1), &Diff::single(0, vec![1, 1]), v(1, 1), &[]);
        b.buffer_for_all(ObjectId(1), &Diff::single(1, vec![2, 2]), v(2, 1), &[]);
        b.buffer_for_all(ObjectId(5), &Diff::single(0, vec![9]), v(3, 1), &[]);
        assert_eq!(b.total_pending(), 6, "2 objects x 3 remote peers, merged");

        let orphaned = b.remove_peer(3);
        assert_eq!(orphaned.len(), 2, "both merged objects surfaced");
        assert_eq!(orphaned[0].object, ObjectId(1));
        assert_eq!(orphaned[0].version, v(2, 1), "merge preserved up to removal");
        assert_eq!(orphaned[1].object, ObjectId(5));
        assert_eq!(b.total_pending(), 4, "departed peer's slot no longer counted");
        assert!(!b.has_peer(3));

        // New modifications must not accumulate for the departed peer.
        b.buffer_for_all(ObjectId(7), &Diff::single(2, vec![7]), v(4, 1), &[]);
        assert_eq!(b.total_pending(), 6, "only the two live remotes buffered");
        assert_eq!(b.slot_len(0), 3);
        assert_eq!(b.slot_len(2), 3);
    }

    #[test]
    fn add_peer_reactivates_an_empty_slot() {
        let mut b = buf();
        b.buffer_for_all(ObjectId(1), &Diff::single(0, vec![1]), v(1, 1), &[]);
        let _ = b.remove_peer(2);
        b.add_peer(2);
        assert!(b.has_peer(2));
        assert_eq!(b.slot_len(2), 0, "joiner starts with an empty slot");
        b.buffer_for_all(ObjectId(1), &Diff::single(0, vec![2]), v(2, 1), &[]);
        assert_eq!(b.slot_len(2), 1);
    }

    #[test]
    fn add_peer_can_grow_capacity() {
        let mut b = SlottedBuffer::new(2, 0, true);
        b.add_peer(2);
        assert!(b.has_peer(2));
        b.buffer_for_all(ObjectId(1), &Diff::single(0, vec![1]), v(1, 0), &[]);
        assert_eq!(b.slot_len(2), 1);
    }

    #[test]
    #[should_panic(expected = "active remote")]
    fn removing_own_slot_panics() {
        let mut b = buf();
        let _ = b.remove_peer(1);
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn adding_an_active_peer_panics() {
        let mut b = buf();
        b.add_peer(0);
    }

    #[test]
    fn filtered_drain_ships_matching_and_retains_the_rest() {
        let mut b = buf();
        b.buffer_for_all(ObjectId(1), &Diff::single(0, vec![1]), v(1, 1), &[]);
        b.buffer_for_all(ObjectId(2), &Diff::single(0, vec![2]), v(2, 1), &[]);
        b.buffer_for_all(ObjectId(3), &Diff::single(0, vec![3]), v(3, 1), &[]);
        let shipped = b.drain_slot_filtered(0, |o| o.0 != 2);
        assert_eq!(
            shipped.iter().map(|u| u.object).collect::<Vec<_>>(),
            vec![ObjectId(1), ObjectId(3)]
        );
        assert_eq!(b.slot_len(0), 1, "out-of-interest object retained");
        // The retained entry keeps merging with later writes.
        b.buffer_for_all(ObjectId(2), &Diff::single(1, vec![9]), v(4, 1), &[]);
        assert_eq!(b.slot_len(0), 1, "retained entry merged, not duplicated");
        // A later unfiltered drain (a broadcast flush) ships it.
        let flushed = b.drain_slot(0);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].object, ObjectId(2));
        assert_eq!(flushed[0].version, v(4, 1));
    }

    #[test]
    fn filtered_drain_split_recombines_to_the_full_drain() {
        // Handoff invariant: splitting a slot by any predicate and applying
        // both halves is equivalent to the unfiltered drain.
        let mk = || {
            let mut b = buf();
            for i in 0..6u32 {
                b.buffer_for_all(ObjectId(i), &Diff::single(i, vec![i as u8]), v(1, 1), &[]);
                b.buffer_for_all(ObjectId(i), &Diff::single(i + 1, vec![9]), v(2, 1), &[]);
            }
            b
        };
        let full = mk().drain_slot(0);
        let mut split = mk();
        let mut both = split.drain_slot_filtered(0, |o| o.0 % 2 == 0);
        both.extend(split.drain_slot_filtered(0, |o| o.0 % 2 != 0));
        both.sort_by_key(|u| u.object);
        assert_eq!(both, full);
        assert_eq!(split.slot_len(0), 0);
    }

    #[test]
    fn updates_drain_in_object_order() {
        let mut b = buf();
        b.buffer_for_all(ObjectId(9), &Diff::single(0, vec![1]), v(1, 1), &[]);
        b.buffer_for_all(ObjectId(3), &Diff::single(0, vec![1]), v(1, 1), &[]);
        let ids: Vec<_> = b.drain_slot(0).into_iter().map(|u| u.object).collect();
        assert_eq!(ids, vec![ObjectId(3), ObjectId(9)]);
    }
}
