//! Binary diffs of object state.
//!
//! S-DSO buffers "diffs of the state of each object since their previous
//! modification" in per-peer slots and "can be tuned to merge multiple diffs
//! to the same object into one diff since the last exchange with a given
//! process" (paper §3.1). [`Diff`] is that representation: a sorted,
//! non-overlapping run-list of `(offset, bytes)` pairs.

use crate::dirty::DirtyRanges;
use sdso_net::wire::{Wire, WireReader, WireWriter};
use sdso_net::NetError;

/// How close two dirty byte ranges may be before [`Diff::between`] joins
/// them into one run (run headers cost 8 bytes on the wire, so tiny gaps are
/// cheaper to ship than to split).
const COALESCE_GAP: usize = 4;

/// A sparse binary patch: a sorted list of non-overlapping byte runs.
///
/// # Example
///
/// ```
/// use sdso_core::Diff;
///
/// let old = vec![0u8; 8];
/// let mut new = old.clone();
/// new[2] = 7;
/// new[6] = 9;
/// let diff = Diff::between(&old, &new);
/// let mut patched = old.clone();
/// diff.apply(&mut patched).unwrap();
/// assert_eq!(patched, new);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diff {
    runs: Vec<Run>,
}

/// One contiguous dirty range.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Run {
    offset: u32,
    bytes: Vec<u8>,
}

impl Run {
    fn end(&self) -> u32 {
        self.offset + self.bytes.len() as u32
    }

    /// The run's bytes from absolute offset `from` to its end.
    fn slice_from(&self, from: u32) -> &[u8] {
        &self.bytes[(from - self.offset) as usize..]
    }

    /// The run's bytes between absolute offsets `from` and `to`.
    fn slice_between(&self, from: u32, to: u32) -> &[u8] {
        &self.bytes[(from - self.offset) as usize..(to - self.offset) as usize]
    }
}

/// Appends `bytes` at `offset` to a normalized run list, extending the last
/// run when exactly adjacent — the same normalization [`Diff::merge`]'s
/// overlay rebuild produces.
fn push_run(out: &mut Vec<Run>, offset: u32, bytes: &[u8]) {
    if bytes.is_empty() {
        return;
    }
    match out.last_mut() {
        Some(last) if last.end() == offset => last.bytes.extend_from_slice(bytes),
        _ => out.push(Run { offset, bytes: bytes.to_vec() }),
    }
}

/// Debug check: every byte a run carries at a position where `old == new`
/// (a coalesced gap) must equal the source image, so applying the diff to
/// the image it was computed from can never smuggle in stale bytes.
#[cfg(debug_assertions)]
fn gap_bytes_match_source(runs: &[Run], old: &[u8], new: &[u8]) -> bool {
    runs.iter().all(|run| {
        run.bytes.iter().enumerate().all(|(k, &b)| {
            let pos = run.offset as usize + k;
            old[pos] != new[pos] || b == old[pos]
        })
    })
}

#[cfg(not(debug_assertions))]
fn gap_bytes_match_source(_runs: &[Run], _old: &[u8], _new: &[u8]) -> bool {
    true
}

impl Diff {
    /// The empty diff.
    pub fn empty() -> Self {
        Diff::default()
    }

    /// Builds a diff containing exactly one run.
    ///
    /// # Panics
    ///
    /// Panics if `offset + bytes.len()` exceeds `u32::MAX`.
    pub fn single(offset: u32, bytes: Vec<u8>) -> Self {
        assert!(
            u32::try_from(bytes.len()).is_ok_and(|l| offset.checked_add(l).is_some()),
            "diff run exceeds u32 address space"
        );
        if bytes.is_empty() {
            return Diff::empty();
        }
        Diff { runs: vec![Run { offset, bytes }] }
    }

    /// Computes the diff that transforms `old` into `new`.
    ///
    /// Runs separated by fewer than a few unchanged bytes are coalesced,
    /// trading a handful of redundant bytes for fewer run headers.
    ///
    /// # Panics
    ///
    /// Panics if the buffers have different lengths (objects never change
    /// size in S-DSO).
    pub fn between(old: &[u8], new: &[u8]) -> Self {
        assert_eq!(old.len(), new.len(), "objects never change size");
        let mut runs: Vec<Run> = Vec::new();
        let mut i = 0usize;
        while i < new.len() {
            if old[i] == new[i] {
                i += 1;
                continue;
            }
            let start = i;
            let mut last_dirty = i;
            i += 1;
            while i < new.len() {
                if old[i] != new[i] {
                    last_dirty = i;
                    i += 1;
                } else if i - last_dirty <= COALESCE_GAP {
                    i += 1;
                } else {
                    break;
                }
            }
            runs.push(Run { offset: start as u32, bytes: new[start..=last_dirty].to_vec() });
            i = last_dirty + 1;
        }
        debug_assert!(
            gap_bytes_match_source(&runs, old, new),
            "coalesced gap bytes must be byte-identical to the source image"
        );
        Diff { runs }
    }

    /// Like [`Diff::between`], but scans only the spans recorded in `dirty`
    /// instead of the whole image. Falls back to the full scan when tracking
    /// degraded ([`DirtyRanges::is_untracked`]).
    ///
    /// The result is byte-identical to the full scan **provided** `dirty`
    /// covers every byte where `old` and `new` differ — which holds whenever
    /// the spans were recorded by the same mutations that produced `new`.
    ///
    /// # Panics
    ///
    /// Panics if the buffers have different lengths.
    pub fn between_ranges(old: &[u8], new: &[u8], dirty: &DirtyRanges) -> Self {
        assert_eq!(old.len(), new.len(), "objects never change size");
        if dirty.is_untracked() {
            return Diff::between(old, new);
        }
        let mut runs: Vec<Run> = Vec::new();
        // First byte not yet consumed: a run started in one span may extend
        // across the gap into the next (COALESCE_GAP joining), so later spans
        // must not rescan bytes an earlier run already swallowed.
        let mut consumed = 0usize;
        for (off, len) in dirty.spans() {
            let lo = (off as usize).max(consumed);
            let hi = (off as usize).saturating_add(len as usize).min(new.len());
            let mut i = lo;
            while i < hi {
                if old[i] == new[i] {
                    i += 1;
                    continue;
                }
                // Identical inner loop to `between`: the extension scan runs
                // over the full image so runs coalesce across span
                // boundaries exactly as the full scan would.
                let start = i;
                let mut last_dirty = i;
                i += 1;
                while i < new.len() {
                    if old[i] != new[i] {
                        last_dirty = i;
                        i += 1;
                    } else if i - last_dirty <= COALESCE_GAP {
                        i += 1;
                    } else {
                        break;
                    }
                }
                runs.push(Run { offset: start as u32, bytes: new[start..=last_dirty].to_vec() });
                i = last_dirty + 1;
            }
            consumed = consumed.max(i);
        }
        debug_assert!(
            gap_bytes_match_source(&runs, old, new),
            "coalesced gap bytes must be byte-identical to the source image"
        );
        Diff { runs }
    }

    /// Applies the diff to `target` in place.
    ///
    /// # Errors
    ///
    /// Returns an error (leaving `target` unmodified) if any run falls
    /// outside the target.
    pub fn apply(&self, target: &mut [u8]) -> Result<(), NetError> {
        for run in &self.runs {
            if run.end() as usize > target.len() {
                return Err(NetError::Codec(format!(
                    "diff run [{}, {}) exceeds object size {}",
                    run.offset,
                    run.end(),
                    target.len()
                )));
            }
        }
        for run in &self.runs {
            target[run.offset as usize..run.end() as usize].copy_from_slice(&run.bytes);
        }
        Ok(())
    }

    /// Overlays `newer` onto `self`: the result applied to any buffer equals
    /// applying `self` then `newer`.
    pub fn merge(&self, newer: &Diff) -> Diff {
        if self.runs.is_empty() {
            return newer.clone();
        }
        if newer.runs.is_empty() {
            return self.clone();
        }
        // Paint both diffs (newer last) into a byte overlay, then rebuild
        // runs. Diffs in S-DSO cover small objects, so the O(dirty bytes)
        // cost is negligible and the semantics are trivially right.
        let mut overlay: std::collections::BTreeMap<u32, u8> = std::collections::BTreeMap::new();
        for diff in [self, newer] {
            for run in &diff.runs {
                for (i, &b) in run.bytes.iter().enumerate() {
                    overlay.insert(run.offset + i as u32, b);
                }
            }
        }
        let mut runs: Vec<Run> = Vec::new();
        for (offset, byte) in overlay {
            match runs.last_mut() {
                Some(last) if last.end() == offset => last.bytes.push(byte),
                _ => runs.push(Run { offset, bytes: vec![byte] }),
            }
        }
        Diff { runs }
    }

    /// In-place [`Diff::merge`]: overlays `newer` onto `self` with a single
    /// two-pointer pass over the run lists, producing the same normalized
    /// result without the per-byte overlay map or the output clone.
    ///
    /// This is the exchange hot path — every buffered update merge and every
    /// `write` on an already-modified object lands here.
    pub fn merge_in_place(&mut self, newer: &Diff) {
        if newer.runs.is_empty() {
            return;
        }
        if self.runs.is_empty() {
            self.runs = newer.runs.clone();
            return;
        }
        let old_runs = std::mem::take(&mut self.runs);
        let mut out: Vec<Run> = Vec::with_capacity(old_runs.len() + newer.runs.len());
        let mut old_iter = old_runs.iter();
        let mut cur_old = old_iter.next();
        // Everything below this offset is already emitted or overwritten by a
        // newer run; surviving old fragments start at or after it.
        let mut floor: u32 = 0;

        for nrun in &newer.runs {
            // Zero-length runs (legal on the wire) paint nothing.
            if nrun.bytes.is_empty() {
                continue;
            }
            // Emit the parts of older runs that end before this newer run,
            // and the head fragment of one that overlaps it.
            while let Some(orun) = cur_old {
                let frag_start = floor.max(orun.offset);
                if orun.end() <= frag_start {
                    cur_old = old_iter.next();
                    continue;
                }
                if orun.end() <= nrun.offset {
                    push_run(&mut out, frag_start, orun.slice_from(frag_start));
                    cur_old = old_iter.next();
                    continue;
                }
                if frag_start < nrun.offset {
                    push_run(&mut out, frag_start, orun.slice_between(frag_start, nrun.offset));
                }
                break;
            }
            push_run(&mut out, nrun.offset, &nrun.bytes);
            floor = floor.max(nrun.end());
        }
        // Tails of older runs past the last newer run.
        while let Some(orun) = cur_old {
            let frag_start = floor.max(orun.offset);
            if frag_start < orun.end() {
                push_run(&mut out, frag_start, orun.slice_from(frag_start));
            }
            cur_old = old_iter.next();
        }
        self.runs = out;
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total dirty bytes carried.
    pub fn byte_count(&self) -> usize {
        self.runs.iter().map(|r| r.bytes.len()).sum()
    }

    /// Whether the diff changes nothing.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Iterates over `(offset, bytes)` runs in ascending offset order.
    pub fn runs(&self) -> impl Iterator<Item = (u32, &[u8])> {
        self.runs.iter().map(|r| (r.offset, r.bytes.as_slice()))
    }

    /// Encoded size on the wire, in bytes.
    pub fn encoded_len(&self) -> usize {
        4 + self.runs.iter().map(|r| 8 + r.bytes.len()).sum::<usize>()
    }

    /// Rebuilds a diff from `(offset, bytes)` runs, enforcing the same
    /// sorted/non-overlapping/no-wraparound invariants as the wire decode.
    /// Used by the v2 codec, whose delta-offset headers reconstruct the
    /// sender's run list exactly.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Codec`] when a run wraps the u32 address space
    /// or the list is unsorted/overlapping.
    pub(crate) fn from_sorted_runs(raw: Vec<(u32, Vec<u8>)>) -> Result<Self, NetError> {
        let runs: Vec<Run> = raw.into_iter().map(|(offset, bytes)| Run { offset, bytes }).collect();
        if runs.iter().any(|r| {
            u32::try_from(r.bytes.len()).ok().and_then(|l| r.offset.checked_add(l)).is_none()
        }) {
            return Err(NetError::Codec("diff run exceeds u32 address space".into()));
        }
        for pair in runs.windows(2) {
            if pair[1].offset < pair[0].end() {
                return Err(NetError::Codec("diff runs overlap or are unsorted".into()));
            }
        }
        Ok(Diff { runs })
    }
}

impl Wire for Diff {
    fn encode(&self, w: &mut WireWriter) {
        w.put_seq(&self.runs, |w, run| {
            w.put_u32(run.offset);
            w.put_bytes(&run.bytes);
        });
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        let runs = r.get_seq(|r| {
            let offset = r.get_u32()?;
            let bytes = r.get_bytes()?.to_vec();
            Ok(Run { offset, bytes })
        })?;
        // Reject address-space overflow FIRST: the overlap check below
        // computes offset + len, which must not wrap on untrusted input.
        if runs.iter().any(|r| {
            u32::try_from(r.bytes.len()).ok().and_then(|l| r.offset.checked_add(l)).is_none()
        }) {
            return Err(NetError::Codec("diff run exceeds u32 address space".into()));
        }
        // Enforce the sorted/non-overlapping invariant.
        for pair in runs.windows(2) {
            if pair[1].offset < pair[0].end() {
                return Err(NetError::Codec("diff runs overlap or are unsorted".into()));
            }
        }
        Ok(Diff { runs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdso_net::wire;

    #[test]
    fn between_and_apply_roundtrip() {
        let old = b"the quick brown fox jumps over the lazy dog".to_vec();
        let mut new = old.clone();
        new[4] = b'Q';
        new[20] = b'X';
        new[21] = b'Y';
        let diff = Diff::between(&old, &new);
        let mut patched = old.clone();
        diff.apply(&mut patched).unwrap();
        assert_eq!(patched, new);
    }

    #[test]
    fn identical_buffers_give_empty_diff() {
        let buf = vec![42u8; 128];
        let diff = Diff::between(&buf, &buf);
        assert!(diff.is_empty());
        assert_eq!(diff.byte_count(), 0);
    }

    #[test]
    fn nearby_changes_coalesce_into_one_run() {
        let old = vec![0u8; 32];
        let mut new = old.clone();
        new[10] = 1;
        new[13] = 1; // gap of 2 ≤ COALESCE_GAP
        let diff = Diff::between(&old, &new);
        assert_eq!(diff.run_count(), 1);
    }

    #[test]
    fn distant_changes_stay_separate_runs() {
        let old = vec![0u8; 64];
        let mut new = old.clone();
        new[0] = 1;
        new[40] = 1;
        let diff = Diff::between(&old, &new);
        assert_eq!(diff.run_count(), 2);
    }

    #[test]
    fn apply_out_of_bounds_is_error_and_leaves_target_untouched() {
        let diff = Diff::single(10, vec![1, 2, 3]);
        let mut target = vec![0u8; 8];
        let before = target.clone();
        assert!(diff.apply(&mut target).is_err());
        assert_eq!(target, before);
    }

    #[test]
    fn merge_equals_sequential_application() {
        let base = vec![0u8; 16];
        let a = Diff::single(2, vec![1, 1, 1, 1]);
        let b = Diff::single(4, vec![2, 2, 2, 2]);

        let mut sequential = base.clone();
        a.apply(&mut sequential).unwrap();
        b.apply(&mut sequential).unwrap();

        let merged = a.merge(&b);
        let mut at_once = base.clone();
        merged.apply(&mut at_once).unwrap();
        assert_eq!(at_once, sequential);
    }

    #[test]
    fn merge_newer_fully_covers_older() {
        let a = Diff::single(4, vec![1; 8]);
        let b = Diff::single(0, vec![2; 16]);
        let merged = a.merge(&b);
        assert_eq!(merged, b);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = Diff::single(3, vec![9, 9]);
        assert_eq!(a.merge(&Diff::empty()), a);
        assert_eq!(Diff::empty().merge(&a), a);
    }

    #[test]
    fn merge_disjoint_keeps_both() {
        let a = Diff::single(0, vec![1, 1]);
        let b = Diff::single(10, vec![2, 2]);
        let merged = a.merge(&b);
        assert_eq!(merged.run_count(), 2);
        assert_eq!(merged.byte_count(), 4);
    }

    #[test]
    fn merge_adjacent_runs_normalize() {
        let a = Diff::single(0, vec![1, 1]);
        let b = Diff::single(2, vec![2, 2]);
        let merged = a.merge(&b);
        assert_eq!(merged.run_count(), 1);
        let mut buf = vec![0u8; 4];
        merged.apply(&mut buf).unwrap();
        assert_eq!(buf, vec![1, 1, 2, 2]);
    }

    #[test]
    fn wire_roundtrip() {
        let old = vec![0u8; 40];
        let mut new = old.clone();
        new[3] = 1;
        new[20] = 2;
        new[39] = 3;
        let diff = Diff::between(&old, &new);
        let encoded = wire::encode(&diff);
        assert_eq!(encoded.len(), diff.encoded_len());
        let decoded: Diff = wire::decode(&encoded).unwrap();
        assert_eq!(decoded, diff);
    }

    #[test]
    fn decode_rejects_overlapping_runs() {
        let mut w = WireWriter::new();
        // Two runs: [0,4) and [2,6) — overlapping.
        w.put_u32(2);
        w.put_u32(0);
        w.put_bytes(&[1, 1, 1, 1]);
        w.put_u32(2);
        w.put_bytes(&[2, 2, 2, 2]);
        let res: Result<Diff, _> = wire::decode(&w.into_bytes());
        assert!(res.is_err());
    }

    #[test]
    fn single_empty_bytes_is_empty_diff() {
        assert!(Diff::single(5, Vec::new()).is_empty());
    }

    #[test]
    fn coalesced_gap_bytes_match_source_image() {
        // Dirty bytes at 10 and 13 with distinctive clean bytes in between:
        // the joined run must carry the *source* gap bytes, so applying it to
        // the image it was computed from changes nothing in the gap.
        let mut old = vec![0u8; 32];
        old[11] = 0xAA;
        old[12] = 0xBB;
        let mut new = old.clone();
        new[10] = 1;
        new[13] = 1;
        let diff = Diff::between(&old, &new);
        assert_eq!(diff.run_count(), 1);
        let mut patched = old.clone();
        diff.apply(&mut patched).unwrap();
        assert_eq!(patched, new);
        assert_eq!(patched[11], 0xAA);
        assert_eq!(patched[12], 0xBB);
    }

    #[test]
    fn merge_in_place_matches_overlay_merge() {
        let cases: &[(Diff, Diff)] = &[
            (Diff::single(2, vec![1; 4]), Diff::single(4, vec![2; 4])),
            (Diff::single(4, vec![1; 8]), Diff::single(0, vec![2; 16])),
            (Diff::single(0, vec![1; 16]), Diff::single(4, vec![2; 4])),
            (Diff::single(0, vec![1, 1]), Diff::single(10, vec![2, 2])),
            (Diff::single(0, vec![1, 1]), Diff::single(2, vec![2, 2])),
            (Diff::single(8, vec![1, 1]), Diff::single(0, vec![2, 2])),
            (Diff::empty(), Diff::single(3, vec![9])),
            (Diff::single(3, vec![9]), Diff::empty()),
        ];
        for (a, b) in cases {
            let expected = a.merge(b);
            let mut got = a.clone();
            got.merge_in_place(b);
            assert_eq!(got, expected, "merge_in_place({a:?}, {b:?})");
        }
    }

    #[test]
    fn merge_in_place_splits_old_run_around_newer() {
        // Old covers [0,10); newer overwrites [3,6). The old run must split
        // into head + tail with the newer bytes between, fully normalized.
        let old_diff = Diff::single(0, (0u8..10).collect());
        let newer = Diff::single(3, vec![99; 3]);
        let mut merged = old_diff.clone();
        merged.merge_in_place(&newer);
        assert_eq!(merged, old_diff.merge(&newer));
        assert_eq!(merged.run_count(), 1); // contiguous coverage stays one run
        let mut buf = vec![0u8; 10];
        merged.apply(&mut buf).unwrap();
        assert_eq!(buf, vec![0, 1, 2, 99, 99, 99, 6, 7, 8, 9]);
    }

    #[test]
    fn merge_in_place_newer_spans_multiple_old_runs() {
        let mut a = Diff::single(0, vec![1, 1]);
        a.merge_in_place(&Diff::single(10, vec![1, 1]));
        a.merge_in_place(&Diff::single(20, vec![1, 1]));
        let bridge = Diff::single(1, vec![2; 15]); // covers tail of run 0 through run 1
        let expected = a.merge(&bridge);
        a.merge_in_place(&bridge);
        assert_eq!(a, expected);
    }

    #[test]
    fn between_ranges_matches_full_scan_when_spans_cover_writes() {
        let old = vec![0u8; 256];
        let mut new = old.clone();
        let mut dirty = crate::dirty::DirtyRanges::new();
        for &(off, len) in &[(3u32, 5u32), (40, 1), (43, 2), (250, 6)] {
            for i in off..off + len {
                new[i as usize] = 7;
            }
            dirty.record(off, len);
        }
        let tracked = Diff::between_ranges(&old, &new, &dirty);
        assert_eq!(tracked, Diff::between(&old, &new));
    }

    #[test]
    fn between_ranges_coalesces_across_span_boundary() {
        // Two spans whose dirty bytes sit COALESCE_GAP apart must join into
        // one run exactly as the full scan joins them.
        let old = vec![0u8; 64];
        let mut new = old.clone();
        new[10] = 1;
        new[13] = 1;
        let mut dirty = crate::dirty::DirtyRanges::new();
        dirty.record(10, 1);
        dirty.record(13, 1);
        assert_eq!(dirty.span_count(), 2);
        let tracked = Diff::between_ranges(&old, &new, &dirty);
        let full = Diff::between(&old, &new);
        assert_eq!(full.run_count(), 1);
        assert_eq!(tracked, full);
    }

    #[test]
    fn between_ranges_with_overwritten_clean_span_is_empty() {
        // A span was recorded but the bytes ended up identical (write of the
        // same value): tracked scan finds nothing, like the full scan.
        let old = vec![9u8; 32];
        let new = old.clone();
        let mut dirty = crate::dirty::DirtyRanges::new();
        dirty.record(4, 8);
        assert!(Diff::between_ranges(&old, &new, &dirty).is_empty());
    }

    #[test]
    fn between_ranges_untracked_falls_back_to_full_scan() {
        let old = vec![0u8; 32];
        let mut new = old.clone();
        new[5] = 1;
        let mut dirty = crate::dirty::DirtyRanges::new();
        dirty.mark_untracked();
        assert_eq!(Diff::between_ranges(&old, &new, &dirty), Diff::between(&old, &new));
    }

    #[test]
    fn between_ranges_clean_is_empty() {
        let buf = vec![1u8; 64];
        let dirty = crate::dirty::DirtyRanges::new();
        assert!(Diff::between_ranges(&buf, &buf, &dirty).is_empty());
    }
}
