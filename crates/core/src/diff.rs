//! Binary diffs of object state.
//!
//! S-DSO buffers "diffs of the state of each object since their previous
//! modification" in per-peer slots and "can be tuned to merge multiple diffs
//! to the same object into one diff since the last exchange with a given
//! process" (paper §3.1). [`Diff`] is that representation: a sorted,
//! non-overlapping run-list of `(offset, bytes)` pairs.

use sdso_net::wire::{Wire, WireReader, WireWriter};
use sdso_net::NetError;

/// How close two dirty byte ranges may be before [`Diff::between`] joins
/// them into one run (run headers cost 8 bytes on the wire, so tiny gaps are
/// cheaper to ship than to split).
const COALESCE_GAP: usize = 4;

/// A sparse binary patch: a sorted list of non-overlapping byte runs.
///
/// # Example
///
/// ```
/// use sdso_core::Diff;
///
/// let old = vec![0u8; 8];
/// let mut new = old.clone();
/// new[2] = 7;
/// new[6] = 9;
/// let diff = Diff::between(&old, &new);
/// let mut patched = old.clone();
/// diff.apply(&mut patched).unwrap();
/// assert_eq!(patched, new);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diff {
    runs: Vec<Run>,
}

/// One contiguous dirty range.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Run {
    offset: u32,
    bytes: Vec<u8>,
}

impl Run {
    fn end(&self) -> u32 {
        self.offset + self.bytes.len() as u32
    }
}

impl Diff {
    /// The empty diff.
    pub fn empty() -> Self {
        Diff::default()
    }

    /// Builds a diff containing exactly one run.
    ///
    /// # Panics
    ///
    /// Panics if `offset + bytes.len()` exceeds `u32::MAX`.
    pub fn single(offset: u32, bytes: Vec<u8>) -> Self {
        assert!(
            u32::try_from(bytes.len()).is_ok_and(|l| offset.checked_add(l).is_some()),
            "diff run exceeds u32 address space"
        );
        if bytes.is_empty() {
            return Diff::empty();
        }
        Diff { runs: vec![Run { offset, bytes }] }
    }

    /// Computes the diff that transforms `old` into `new`.
    ///
    /// Runs separated by fewer than a few unchanged bytes are coalesced,
    /// trading a handful of redundant bytes for fewer run headers.
    ///
    /// # Panics
    ///
    /// Panics if the buffers have different lengths (objects never change
    /// size in S-DSO).
    pub fn between(old: &[u8], new: &[u8]) -> Self {
        assert_eq!(old.len(), new.len(), "objects never change size");
        let mut runs: Vec<Run> = Vec::new();
        let mut i = 0usize;
        while i < new.len() {
            if old[i] == new[i] {
                i += 1;
                continue;
            }
            let start = i;
            let mut last_dirty = i;
            i += 1;
            while i < new.len() {
                if old[i] != new[i] {
                    last_dirty = i;
                    i += 1;
                } else if i - last_dirty <= COALESCE_GAP {
                    i += 1;
                } else {
                    break;
                }
            }
            runs.push(Run { offset: start as u32, bytes: new[start..=last_dirty].to_vec() });
            i = last_dirty + 1;
        }
        Diff { runs }
    }

    /// Applies the diff to `target` in place.
    ///
    /// # Errors
    ///
    /// Returns an error (leaving `target` unmodified) if any run falls
    /// outside the target.
    pub fn apply(&self, target: &mut [u8]) -> Result<(), NetError> {
        for run in &self.runs {
            if run.end() as usize > target.len() {
                return Err(NetError::Codec(format!(
                    "diff run [{}, {}) exceeds object size {}",
                    run.offset,
                    run.end(),
                    target.len()
                )));
            }
        }
        for run in &self.runs {
            target[run.offset as usize..run.end() as usize].copy_from_slice(&run.bytes);
        }
        Ok(())
    }

    /// Overlays `newer` onto `self`: the result applied to any buffer equals
    /// applying `self` then `newer`.
    pub fn merge(&self, newer: &Diff) -> Diff {
        if self.runs.is_empty() {
            return newer.clone();
        }
        if newer.runs.is_empty() {
            return self.clone();
        }
        // Paint both diffs (newer last) into a byte overlay, then rebuild
        // runs. Diffs in S-DSO cover small objects, so the O(dirty bytes)
        // cost is negligible and the semantics are trivially right.
        let mut overlay: std::collections::BTreeMap<u32, u8> = std::collections::BTreeMap::new();
        for diff in [self, newer] {
            for run in &diff.runs {
                for (i, &b) in run.bytes.iter().enumerate() {
                    overlay.insert(run.offset + i as u32, b);
                }
            }
        }
        let mut runs: Vec<Run> = Vec::new();
        for (offset, byte) in overlay {
            match runs.last_mut() {
                Some(last) if last.end() == offset => last.bytes.push(byte),
                _ => runs.push(Run { offset, bytes: vec![byte] }),
            }
        }
        Diff { runs }
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total dirty bytes carried.
    pub fn byte_count(&self) -> usize {
        self.runs.iter().map(|r| r.bytes.len()).sum()
    }

    /// Whether the diff changes nothing.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Iterates over `(offset, bytes)` runs in ascending offset order.
    pub fn runs(&self) -> impl Iterator<Item = (u32, &[u8])> {
        self.runs.iter().map(|r| (r.offset, r.bytes.as_slice()))
    }

    /// Encoded size on the wire, in bytes.
    pub fn encoded_len(&self) -> usize {
        4 + self.runs.iter().map(|r| 8 + r.bytes.len()).sum::<usize>()
    }
}

impl Wire for Diff {
    fn encode(&self, w: &mut WireWriter) {
        w.put_seq(&self.runs, |w, run| {
            w.put_u32(run.offset);
            w.put_bytes(&run.bytes);
        });
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        let runs = r.get_seq(|r| {
            let offset = r.get_u32()?;
            let bytes = r.get_bytes()?.to_vec();
            Ok(Run { offset, bytes })
        })?;
        // Reject address-space overflow FIRST: the overlap check below
        // computes offset + len, which must not wrap on untrusted input.
        if runs.iter().any(|r| {
            u32::try_from(r.bytes.len()).ok().and_then(|l| r.offset.checked_add(l)).is_none()
        }) {
            return Err(NetError::Codec("diff run exceeds u32 address space".into()));
        }
        // Enforce the sorted/non-overlapping invariant.
        for pair in runs.windows(2) {
            if pair[1].offset < pair[0].end() {
                return Err(NetError::Codec("diff runs overlap or are unsorted".into()));
            }
        }
        Ok(Diff { runs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdso_net::wire;

    #[test]
    fn between_and_apply_roundtrip() {
        let old = b"the quick brown fox jumps over the lazy dog".to_vec();
        let mut new = old.clone();
        new[4] = b'Q';
        new[20] = b'X';
        new[21] = b'Y';
        let diff = Diff::between(&old, &new);
        let mut patched = old.clone();
        diff.apply(&mut patched).unwrap();
        assert_eq!(patched, new);
    }

    #[test]
    fn identical_buffers_give_empty_diff() {
        let buf = vec![42u8; 128];
        let diff = Diff::between(&buf, &buf);
        assert!(diff.is_empty());
        assert_eq!(diff.byte_count(), 0);
    }

    #[test]
    fn nearby_changes_coalesce_into_one_run() {
        let old = vec![0u8; 32];
        let mut new = old.clone();
        new[10] = 1;
        new[13] = 1; // gap of 2 ≤ COALESCE_GAP
        let diff = Diff::between(&old, &new);
        assert_eq!(diff.run_count(), 1);
    }

    #[test]
    fn distant_changes_stay_separate_runs() {
        let old = vec![0u8; 64];
        let mut new = old.clone();
        new[0] = 1;
        new[40] = 1;
        let diff = Diff::between(&old, &new);
        assert_eq!(diff.run_count(), 2);
    }

    #[test]
    fn apply_out_of_bounds_is_error_and_leaves_target_untouched() {
        let diff = Diff::single(10, vec![1, 2, 3]);
        let mut target = vec![0u8; 8];
        let before = target.clone();
        assert!(diff.apply(&mut target).is_err());
        assert_eq!(target, before);
    }

    #[test]
    fn merge_equals_sequential_application() {
        let base = vec![0u8; 16];
        let a = Diff::single(2, vec![1, 1, 1, 1]);
        let b = Diff::single(4, vec![2, 2, 2, 2]);

        let mut sequential = base.clone();
        a.apply(&mut sequential).unwrap();
        b.apply(&mut sequential).unwrap();

        let merged = a.merge(&b);
        let mut at_once = base.clone();
        merged.apply(&mut at_once).unwrap();
        assert_eq!(at_once, sequential);
    }

    #[test]
    fn merge_newer_fully_covers_older() {
        let a = Diff::single(4, vec![1; 8]);
        let b = Diff::single(0, vec![2; 16]);
        let merged = a.merge(&b);
        assert_eq!(merged, b);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = Diff::single(3, vec![9, 9]);
        assert_eq!(a.merge(&Diff::empty()), a);
        assert_eq!(Diff::empty().merge(&a), a);
    }

    #[test]
    fn merge_disjoint_keeps_both() {
        let a = Diff::single(0, vec![1, 1]);
        let b = Diff::single(10, vec![2, 2]);
        let merged = a.merge(&b);
        assert_eq!(merged.run_count(), 2);
        assert_eq!(merged.byte_count(), 4);
    }

    #[test]
    fn merge_adjacent_runs_normalize() {
        let a = Diff::single(0, vec![1, 1]);
        let b = Diff::single(2, vec![2, 2]);
        let merged = a.merge(&b);
        assert_eq!(merged.run_count(), 1);
        let mut buf = vec![0u8; 4];
        merged.apply(&mut buf).unwrap();
        assert_eq!(buf, vec![1, 1, 2, 2]);
    }

    #[test]
    fn wire_roundtrip() {
        let old = vec![0u8; 40];
        let mut new = old.clone();
        new[3] = 1;
        new[20] = 2;
        new[39] = 3;
        let diff = Diff::between(&old, &new);
        let encoded = wire::encode(&diff);
        assert_eq!(encoded.len(), diff.encoded_len());
        let decoded: Diff = wire::decode(&encoded).unwrap();
        assert_eq!(decoded, diff);
    }

    #[test]
    fn decode_rejects_overlapping_runs() {
        let mut w = WireWriter::new();
        // Two runs: [0,4) and [2,6) — overlapping.
        w.put_u32(2);
        w.put_u32(0);
        w.put_bytes(&[1, 1, 1, 1]);
        w.put_u32(2);
        w.put_bytes(&[2, 2, 2, 2]);
        let res: Result<Diff, _> = wire::decode(&w.into_bytes());
        assert!(res.is_err());
    }

    #[test]
    fn single_empty_bytes_is_empty_diff() {
        assert!(Diff::single(5, Vec::new()).is_empty());
    }
}
