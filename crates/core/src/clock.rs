use std::fmt;

/// A logical timestamp: the number of `exchange` calls (equivalently, object
/// modifications) a process has performed.
///
/// "Every time an application process modifies a shared object, it calls
/// `exchange()`, and a logical system clock is advanced one time-tick"
/// (paper §3.1). Under BSYNC any two processes' clocks differ by at most one
/// tick; under the MSYNC family they drift freely between rendezvous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LogicalTime(u64);

impl LogicalTime {
    /// Time zero (program initialisation).
    pub const ZERO: LogicalTime = LogicalTime(0);

    /// Creates a timestamp from a raw tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        LogicalTime(ticks)
    }

    /// Raw tick count.
    pub const fn as_ticks(self) -> u64 {
        self.0
    }

    /// The timestamp `n` ticks later.
    pub const fn plus(self, n: u64) -> LogicalTime {
        LogicalTime(self.0 + n)
    }

    /// Ticks from `earlier` to `self`, saturating at zero.
    pub fn ticks_since(self, earlier: LogicalTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for LogicalTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The per-process logical clock.
#[derive(Debug, Clone, Default)]
pub struct LogicalClock {
    now: LogicalTime,
}

impl LogicalClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        LogicalClock::default()
    }

    /// The current time.
    pub fn now(&self) -> LogicalTime {
        self.now
    }

    /// Advances one tick and returns the new time.
    pub fn tick(&mut self) -> LogicalTime {
        self.now = self.now.plus(1);
        self.now
    }

    /// Jumps forward to `t` if it is ahead of the current time (never
    /// moves backwards). A late joiner uses this to adopt its snapshot
    /// donor's logical-clock frontier instead of replaying history tick by
    /// tick.
    pub fn advance_to(&mut self, t: LogicalTime) {
        self.now = self.now.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_advances_by_one() {
        let mut c = LogicalClock::new();
        assert_eq!(c.now(), LogicalTime::ZERO);
        assert_eq!(c.tick(), LogicalTime::from_ticks(1));
        assert_eq!(c.tick(), LogicalTime::from_ticks(2));
        assert_eq!(c.now(), LogicalTime::from_ticks(2));
    }

    #[test]
    fn advance_to_never_rewinds() {
        let mut c = LogicalClock::new();
        c.advance_to(LogicalTime::from_ticks(5));
        assert_eq!(c.now(), LogicalTime::from_ticks(5));
        c.advance_to(LogicalTime::from_ticks(3));
        assert_eq!(c.now(), LogicalTime::from_ticks(5), "no rewind");
        assert_eq!(c.tick(), LogicalTime::from_ticks(6));
    }

    #[test]
    fn ticks_since_saturates() {
        let a = LogicalTime::from_ticks(3);
        let b = LogicalTime::from_ticks(10);
        assert_eq!(b.ticks_since(a), 7);
        assert_eq!(a.ticks_since(b), 0);
    }
}
