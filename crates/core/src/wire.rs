//! S-DSO's wire protocol.
//!
//! Every S-DSO message is one [`DsoMessage`] encoded with the workspace
//! codec. Consistency protocols built on top of the runtime (entry
//! consistency's lock traffic, LRC's write notices, …) travel inside the
//! [`DsoMessage::App`] escape hatch so that one framing layer serves all.

use sdso_member::Epoch;
use sdso_net::wire::{Wire, WireReader, WireWriter};
use sdso_net::{MsgClass, NetError, Payload};

use crate::clock::LogicalTime;
use crate::diff::Diff;
use crate::object::{ObjectId, Version};

/// One object update inside a rendezvous data message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireUpdate {
    /// The object modified.
    pub object: ObjectId,
    /// Byte-level changes.
    pub diff: Diff,
    /// Stamp of the newest write folded into `diff`.
    pub version: Version,
}

impl Wire for WireUpdate {
    fn encode(&self, w: &mut WireWriter) {
        self.object.encode(w);
        self.version.encode(w);
        self.diff.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        let object = ObjectId::decode(r)?;
        let version = Version::decode(r)?;
        let diff = Diff::decode(r)?;
        Ok(WireUpdate { object, diff, version })
    }
}

/// The messages exchanged by the S-DSO runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsoMessage {
    /// The data half of a rendezvous `(data, SYNC)` pair: buffered plus
    /// current-interval updates, stamped with the sender's logical time and
    /// the membership epoch the exchange was computed under.
    Data {
        /// Membership epoch the sender computed this exchange under.
        epoch: Epoch,
        /// Sender's logical time.
        time: LogicalTime,
        /// The updates carried.
        updates: Vec<WireUpdate>,
    },
    /// The control half of a rendezvous pair. Sent alone when the sender
    /// has no updates to report (e.g. it lost a contention arbitration and
    /// held still this interval).
    Sync {
        /// Membership epoch the sender computed this exchange under.
        epoch: Epoch,
        /// Sender's logical time.
        time: LogicalTime,
    },
    /// A pushed full object body (`async_put` / `sync_put`).
    Put {
        /// The object.
        object: ObjectId,
        /// Its version at the sender.
        version: Version,
        /// Full object contents.
        body: Vec<u8>,
        /// Whether the receiver must acknowledge (`sync_put`).
        wants_ack: bool,
    },
    /// A request to pull an object's current body (`async_get`/`sync_get`).
    GetReq {
        /// The object requested.
        object: ObjectId,
    },
    /// The reply to a [`DsoMessage::GetReq`].
    GetRep {
        /// The object.
        object: ObjectId,
        /// Its version at the replier.
        version: Version,
        /// Full object contents.
        body: Vec<u8>,
    },
    /// Acknowledgement of a `sync_put`.
    Ack,
    /// Opaque bytes for a protocol layered above the runtime, with an
    /// explicit accounting class.
    App {
        /// Accounting class of the embedded message.
        class: MsgClass,
        /// The embedded encoding.
        bytes: Vec<u8>,
    },
    /// A sequenced envelope added by the reliability layer: `inner` is the
    /// `seq`-th message on this link. Envelopes never nest and never carry
    /// a [`DsoMessage::SeqAck`] (the codec rejects both).
    Env {
        /// Per-link sequence number, starting at 0.
        seq: u64,
        /// The enveloped message.
        inner: Box<DsoMessage>,
    },
    /// Cumulative acknowledgement of [`DsoMessage::Env`] traffic: every
    /// sequence number below `next` has been delivered on this link. Sent
    /// outside any envelope (loss is repaired by the next ack).
    SeqAck {
        /// The receiver's next expected sequence number.
        next: u64,
    },
    /// A late joiner asking its designated donor for a state snapshot in
    /// `epoch` (the donor usually pushes unprompted at the view-change
    /// barrier; the request covers a joiner that raced ahead of it).
    SnapshotReq {
        /// The epoch the joiner is entering.
        epoch: Epoch,
    },
    /// A full-state transfer to a late joiner: every shared object's
    /// current body (as a from-zero diff reusing the rendezvous wire
    /// encoding) plus the donor's logical-clock frontier. O(objects) bytes,
    /// never O(history).
    Snapshot {
        /// The epoch this snapshot is consistent with.
        epoch: Epoch,
        /// The donor's logical time at the view-change barrier.
        time: LogicalTime,
        /// The donor's Lamport stamp, so the joiner's future writes order
        /// after everything folded into the snapshot.
        lamport: u64,
        /// Current state of every modified object.
        updates: Vec<WireUpdate>,
    },
    /// A codec capability offer (wire format v2 negotiation, §14). Sent at
    /// most once per link per codec generation; the receiver records the
    /// offered version, replies with its own offer if it has not already,
    /// and consumes the message in the admission layer — protocol dispatch
    /// never sees it. Until a peer's offer arrives, everything sent to it
    /// uses the v1 format.
    CodecOffer {
        /// Highest codec version the sender can decode.
        version: u8,
    },
    /// The v2 data half of a rendezvous pair: semantically identical to
    /// [`DsoMessage::Data`], but with the update list encoded by the
    /// varint/run-length (and optionally XOR-delta) codec into an opaque
    /// blob. The blob is resolved back into a plain `Data` at the
    /// exactly-once delivery point in the runtime (where the per-link XOR
    /// shadows live), keeping this decode pure so stored ARQ retransmit
    /// clones re-encode safely.
    Data2 {
        /// Membership epoch the sender computed this exchange under.
        epoch: Epoch,
        /// Sender's logical time.
        time: LogicalTime,
        /// Count of prior `Data2` messages the sender has put on this link
        /// since the last codec reset. The receiver cross-checks it against
        /// its own delivery count: a mismatch means the XOR shadows are out
        /// of lockstep and decoding must fail loudly instead of silently
        /// applying garbage.
        basis: u64,
        /// The codec-v2 encoded update list (see `crate::codec`).
        blob: Vec<u8>,
    },
}

const TAG_DATA: u8 = 1;
const TAG_SYNC: u8 = 2;
const TAG_PUT: u8 = 3;
const TAG_GET_REQ: u8 = 4;
const TAG_GET_REP: u8 = 5;
const TAG_ACK: u8 = 6;
const TAG_APP: u8 = 7;
const TAG_ENV: u8 = 8;
const TAG_SEQ_ACK: u8 = 9;
const TAG_SNAPSHOT_REQ: u8 = 10;
const TAG_SNAPSHOT: u8 = 11;
const TAG_CODEC_OFFER: u8 = 12;
const TAG_DATA2: u8 = 13;

impl DsoMessage {
    /// The membership epoch stamped on this message, for the kinds that
    /// carry one (rendezvous and snapshot traffic; unwrapping envelopes).
    pub fn epoch(&self) -> Option<Epoch> {
        match self {
            DsoMessage::Data { epoch, .. }
            | DsoMessage::Data2 { epoch, .. }
            | DsoMessage::Sync { epoch, .. }
            | DsoMessage::SnapshotReq { epoch }
            | DsoMessage::Snapshot { epoch, .. } => Some(*epoch),
            DsoMessage::Env { inner, .. } => inner.epoch(),
            DsoMessage::Put { .. }
            | DsoMessage::GetReq { .. }
            | DsoMessage::GetRep { .. }
            | DsoMessage::Ack
            | DsoMessage::App { .. }
            | DsoMessage::SeqAck { .. }
            | DsoMessage::CodecOffer { .. } => None,
        }
    }

    /// The accounting class of this message (data messages carry object
    /// state; everything else is control).
    pub fn class(&self) -> MsgClass {
        match self {
            DsoMessage::Data { .. }
            | DsoMessage::Data2 { .. }
            | DsoMessage::Put { .. }
            | DsoMessage::GetRep { .. }
            | DsoMessage::Snapshot { .. } => MsgClass::Data,
            DsoMessage::Sync { .. }
            | DsoMessage::GetReq { .. }
            | DsoMessage::Ack
            | DsoMessage::SnapshotReq { .. }
            | DsoMessage::CodecOffer { .. } => MsgClass::Control,
            DsoMessage::App { class, .. } => *class,
            DsoMessage::Env { inner, .. } => inner.class(),
            DsoMessage::SeqAck { .. } => MsgClass::Control,
        }
    }

    /// Encodes into a transport payload, padding the modelled wire size to
    /// `frame_wire_len` when configured (the paper's system exchanged
    /// fixed-size 2048-byte frames for control and data alike).
    ///
    /// Encoding goes through the global buffer pool: the scratch buffer is
    /// recycled from (and its storage returned to) the freelist, so steady
    /// state sends allocate nothing.
    ///
    /// sdso-check: hot-path
    pub fn into_payload(self, frame_wire_len: Option<u32>) -> Payload {
        let class = self.class();
        let bytes = sdso_net::wire::encode_pooled(&self, sdso_net::pool::global());
        let payload = Payload::new(class, bytes);
        match frame_wire_len {
            Some(len) => payload.with_wire_len(len),
            None => payload,
        }
    }
}

impl Wire for DsoMessage {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            DsoMessage::Data { epoch, time, updates } => {
                w.put_u8(TAG_DATA);
                w.put_u32(epoch.0);
                w.put_u64(time.as_ticks());
                w.put_seq(updates, |w, u| u.encode(w));
            }
            DsoMessage::Sync { epoch, time } => {
                w.put_u8(TAG_SYNC);
                w.put_u32(epoch.0);
                w.put_u64(time.as_ticks());
            }
            DsoMessage::Put { object, version, body, wants_ack } => {
                w.put_u8(TAG_PUT);
                object.encode(w);
                version.encode(w);
                w.put_bytes(body);
                w.put_bool(*wants_ack);
            }
            DsoMessage::GetReq { object } => {
                w.put_u8(TAG_GET_REQ);
                object.encode(w);
            }
            DsoMessage::GetRep { object, version, body } => {
                w.put_u8(TAG_GET_REP);
                object.encode(w);
                version.encode(w);
                w.put_bytes(body);
            }
            DsoMessage::Ack => w.put_u8(TAG_ACK),
            DsoMessage::App { class, bytes } => {
                w.put_u8(TAG_APP);
                w.put_u8(class.to_wire_u8());
                w.put_bytes(bytes);
            }
            DsoMessage::Env { seq, inner } => {
                w.put_u8(TAG_ENV);
                w.put_u64(*seq);
                inner.encode(w);
            }
            DsoMessage::SeqAck { next } => {
                w.put_u8(TAG_SEQ_ACK);
                w.put_u64(*next);
            }
            DsoMessage::SnapshotReq { epoch } => {
                w.put_u8(TAG_SNAPSHOT_REQ);
                w.put_u32(epoch.0);
            }
            DsoMessage::Snapshot { epoch, time, lamport, updates } => {
                w.put_u8(TAG_SNAPSHOT);
                w.put_u32(epoch.0);
                w.put_u64(time.as_ticks());
                w.put_u64(*lamport);
                w.put_seq(updates, |w, u| u.encode(w));
            }
            DsoMessage::CodecOffer { version } => {
                w.put_u8(TAG_CODEC_OFFER);
                w.put_u8(*version);
            }
            DsoMessage::Data2 { epoch, time, basis, blob } => {
                w.put_u8(TAG_DATA2);
                w.put_u32(epoch.0);
                w.put_u64(time.as_ticks());
                w.put_u64(*basis);
                w.put_bytes(blob);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        match r.get_u8()? {
            TAG_DATA => {
                let epoch = Epoch(r.get_u32()?);
                let time = LogicalTime::from_ticks(r.get_u64()?);
                let updates = r.get_seq(WireUpdate::decode)?;
                Ok(DsoMessage::Data { epoch, time, updates })
            }
            TAG_SYNC => {
                let epoch = Epoch(r.get_u32()?);
                let time = LogicalTime::from_ticks(r.get_u64()?);
                Ok(DsoMessage::Sync { epoch, time })
            }
            TAG_PUT => {
                let object = ObjectId::decode(r)?;
                let version = Version::decode(r)?;
                let body = r.get_bytes()?.to_vec();
                let wants_ack = r.get_bool()?;
                Ok(DsoMessage::Put { object, version, body, wants_ack })
            }
            TAG_GET_REQ => Ok(DsoMessage::GetReq { object: ObjectId::decode(r)? }),
            TAG_GET_REP => {
                let object = ObjectId::decode(r)?;
                let version = Version::decode(r)?;
                let body = r.get_bytes()?.to_vec();
                Ok(DsoMessage::GetRep { object, version, body })
            }
            TAG_ACK => Ok(DsoMessage::Ack),
            TAG_APP => {
                let class = MsgClass::from_wire_u8(r.get_u8()?)?;
                let bytes = r.get_bytes()?.to_vec();
                Ok(DsoMessage::App { class, bytes })
            }
            TAG_ENV => {
                let seq = r.get_u64()?;
                let inner = DsoMessage::decode(r)?;
                // Legitimate senders wrap exactly once and never envelope
                // acks; rejecting the alternatives here bounds decoder
                // recursion against adversarial input.
                if matches!(inner, DsoMessage::Env { .. } | DsoMessage::SeqAck { .. }) {
                    return Err(NetError::Codec("nested or ack-bearing envelope".into()));
                }
                Ok(DsoMessage::Env { seq, inner: Box::new(inner) })
            }
            TAG_SEQ_ACK => Ok(DsoMessage::SeqAck { next: r.get_u64()? }),
            TAG_SNAPSHOT_REQ => Ok(DsoMessage::SnapshotReq { epoch: Epoch(r.get_u32()?) }),
            TAG_SNAPSHOT => {
                let epoch = Epoch(r.get_u32()?);
                let time = LogicalTime::from_ticks(r.get_u64()?);
                let lamport = r.get_u64()?;
                let updates = r.get_seq(WireUpdate::decode)?;
                Ok(DsoMessage::Snapshot { epoch, time, lamport, updates })
            }
            TAG_CODEC_OFFER => Ok(DsoMessage::CodecOffer { version: r.get_u8()? }),
            TAG_DATA2 => {
                let epoch = Epoch(r.get_u32()?);
                let time = LogicalTime::from_ticks(r.get_u64()?);
                let basis = r.get_u64()?;
                let blob = r.get_bytes()?.to_vec();
                Ok(DsoMessage::Data2 { epoch, time, basis, blob })
            }
            tag => Err(NetError::Codec(format!("unknown DsoMessage tag {tag:#x}"))),
        }
    }
}

/// Local extension to convert [`MsgClass`] to/from a wire byte (the net
/// crate keeps its own conversion private).
trait MsgClassWire: Sized {
    fn to_wire_u8(self) -> u8;
    fn from_wire_u8(b: u8) -> Result<Self, NetError>;
}

impl MsgClassWire for MsgClass {
    fn to_wire_u8(self) -> u8 {
        match self {
            MsgClass::Control => 0,
            MsgClass::Data => 1,
        }
    }
    fn from_wire_u8(b: u8) -> Result<Self, NetError> {
        match b {
            0 => Ok(MsgClass::Control),
            1 => Ok(MsgClass::Data),
            _ => Err(NetError::Codec(format!("invalid message class byte {b:#x}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdso_net::wire;

    fn roundtrip(msg: DsoMessage) {
        let encoded = wire::encode(&msg);
        let decoded: DsoMessage = wire::decode(&encoded).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn all_variants_roundtrip() {
        let v = Version::new(LogicalTime::from_ticks(4), 2);
        roundtrip(DsoMessage::Data {
            epoch: Epoch(2),
            time: LogicalTime::from_ticks(9),
            updates: vec![WireUpdate {
                object: ObjectId(3),
                diff: Diff::single(2, vec![1, 2, 3]),
                version: v,
            }],
        });
        roundtrip(DsoMessage::Sync { epoch: Epoch(1), time: LogicalTime::from_ticks(1) });
        roundtrip(DsoMessage::Put {
            object: ObjectId(1),
            version: v,
            body: vec![0; 16],
            wants_ack: true,
        });
        roundtrip(DsoMessage::GetReq { object: ObjectId(8) });
        roundtrip(DsoMessage::GetRep { object: ObjectId(8), version: v, body: vec![7; 4] });
        roundtrip(DsoMessage::Ack);
        roundtrip(DsoMessage::App { class: MsgClass::Control, bytes: vec![9, 9] });
        roundtrip(DsoMessage::Env { seq: 17, inner: Box::new(DsoMessage::Ack) });
        roundtrip(DsoMessage::SeqAck { next: 42 });
        roundtrip(DsoMessage::SnapshotReq { epoch: Epoch(3) });
        roundtrip(DsoMessage::Snapshot {
            epoch: Epoch(3),
            time: LogicalTime::from_ticks(40),
            lamport: 77,
            updates: vec![WireUpdate {
                object: ObjectId(0),
                diff: Diff::single(0, vec![5; 8]),
                version: v,
            }],
        });
        roundtrip(DsoMessage::CodecOffer { version: 2 });
        roundtrip(DsoMessage::Data2 {
            epoch: Epoch(4),
            time: LogicalTime::from_ticks(11),
            basis: 3,
            blob: vec![0x81, 0x02, 0x00],
        });
    }

    #[test]
    fn envelope_class_follows_inner() {
        let env = DsoMessage::Env {
            seq: 0,
            inner: Box::new(DsoMessage::Sync { epoch: Epoch::ZERO, time: LogicalTime::ZERO }),
        };
        assert_eq!(env.class(), MsgClass::Control);
        let env = DsoMessage::Env {
            seq: 0,
            inner: Box::new(DsoMessage::Data {
                epoch: Epoch::ZERO,
                time: LogicalTime::ZERO,
                updates: vec![],
            }),
        };
        assert_eq!(env.class(), MsgClass::Data);
        assert_eq!(DsoMessage::SeqAck { next: 0 }.class(), MsgClass::Control);
    }

    #[test]
    fn nested_envelopes_rejected() {
        let nested = DsoMessage::Env {
            seq: 1,
            inner: Box::new(DsoMessage::Env { seq: 2, inner: Box::new(DsoMessage::Ack) }),
        };
        let encoded = wire::encode(&nested);
        assert!(wire::decode::<DsoMessage>(&encoded).is_err());
        let acked = DsoMessage::Env { seq: 1, inner: Box::new(DsoMessage::SeqAck { next: 0 }) };
        assert!(wire::decode::<DsoMessage>(&wire::encode(&acked)).is_err());
    }

    #[test]
    fn classes_match_paper_accounting() {
        let v = Version::INITIAL;
        assert_eq!(
            DsoMessage::Data { epoch: Epoch::ZERO, time: LogicalTime::ZERO, updates: vec![] }
                .class(),
            MsgClass::Data
        );
        assert_eq!(
            DsoMessage::Sync { epoch: Epoch::ZERO, time: LogicalTime::ZERO }.class(),
            MsgClass::Control
        );
        assert_eq!(DsoMessage::SnapshotReq { epoch: Epoch::ZERO }.class(), MsgClass::Control);
        assert_eq!(
            DsoMessage::Snapshot {
                epoch: Epoch::ZERO,
                time: LogicalTime::ZERO,
                lamport: 0,
                updates: vec![],
            }
            .class(),
            MsgClass::Data,
            "snapshots carry object state"
        );
        assert_eq!(
            DsoMessage::Put { object: ObjectId(0), version: v, body: vec![], wants_ack: false }
                .class(),
            MsgClass::Data
        );
        assert_eq!(DsoMessage::GetReq { object: ObjectId(0) }.class(), MsgClass::Control);
        assert_eq!(
            DsoMessage::GetRep { object: ObjectId(0), version: v, body: vec![] }.class(),
            MsgClass::Data
        );
        assert_eq!(DsoMessage::Ack.class(), MsgClass::Control);
        assert_eq!(DsoMessage::CodecOffer { version: 2 }.class(), MsgClass::Control);
        let d2 =
            DsoMessage::Data2 { epoch: Epoch(1), time: LogicalTime::ZERO, basis: 0, blob: vec![] };
        assert_eq!(d2.class(), MsgClass::Data, "compressed data is still data");
        assert_eq!(d2.epoch(), Some(Epoch(1)));
        assert_eq!(DsoMessage::CodecOffer { version: 2 }.epoch(), None);
    }

    #[test]
    fn payload_padding_models_fixed_frames() {
        let msg = DsoMessage::Sync { epoch: Epoch::ZERO, time: LogicalTime::ZERO };
        let padded = msg.clone().into_payload(Some(2048));
        assert_eq!(padded.wire_len(), 2048);
        let unpadded = msg.into_payload(None);
        assert!(unpadded.wire_len() < 2048);
    }

    #[test]
    fn unknown_tag_rejected() {
        let res: Result<DsoMessage, _> = wire::decode(&[0xEE]);
        assert!(res.is_err());
    }

    fn sample_messages() -> Vec<DsoMessage> {
        let v = Version::new(LogicalTime::from_ticks(4), 2);
        vec![
            DsoMessage::Data {
                epoch: Epoch(1),
                time: LogicalTime::from_ticks(9),
                updates: vec![WireUpdate {
                    object: ObjectId(3),
                    diff: Diff::single(2, vec![1, 2, 3]),
                    version: v,
                }],
            },
            DsoMessage::Sync { epoch: Epoch(1), time: LogicalTime::from_ticks(1) },
            DsoMessage::Put { object: ObjectId(1), version: v, body: vec![0; 16], wants_ack: true },
            DsoMessage::GetReq { object: ObjectId(8) },
            DsoMessage::GetRep { object: ObjectId(8), version: v, body: vec![7; 4] },
            DsoMessage::App { class: MsgClass::Data, bytes: vec![9, 9, 9] },
            DsoMessage::Env { seq: 17, inner: Box::new(DsoMessage::Ack) },
            DsoMessage::SeqAck { next: 42 },
            DsoMessage::SnapshotReq { epoch: Epoch(2) },
            DsoMessage::CodecOffer { version: 2 },
            DsoMessage::Data2 {
                epoch: Epoch(2),
                time: LogicalTime::from_ticks(6),
                basis: 1,
                blob: vec![3, 1, 4, 1, 5],
            },
            DsoMessage::Snapshot {
                epoch: Epoch(2),
                time: LogicalTime::from_ticks(12),
                lamport: 30,
                updates: vec![WireUpdate {
                    object: ObjectId(1),
                    diff: Diff::single(0, vec![4, 4]),
                    version: v,
                }],
            },
        ]
    }

    #[test]
    fn every_truncated_payload_errors_and_never_panics() {
        for msg in sample_messages() {
            let encoded = wire::encode(&msg).to_vec();
            for cut in 0..encoded.len() {
                let res: Result<DsoMessage, _> = wire::decode(&encoded[..cut]);
                assert!(res.is_err(), "strict prefix of {cut} bytes decoded as {msg:?}");
            }
            assert_eq!(wire::decode::<DsoMessage>(&encoded).unwrap(), msg);
        }
    }

    #[test]
    fn corrupt_tag_bytes_error_and_never_panic() {
        // Smash each byte of each encoding to 0xFF in turn: decoding must
        // either fail cleanly or yield some *other* well-formed message —
        // it must never panic on hostile input.
        for msg in sample_messages() {
            let encoded = wire::encode(&msg).to_vec();
            for i in 0..encoded.len() {
                let mut bad = encoded.clone();
                bad[i] = 0xFF;
                let _ = wire::decode::<DsoMessage>(&bad);
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut encoded = wire::encode(&DsoMessage::Ack).to_vec();
        encoded.push(0x00);
        assert!(wire::decode::<DsoMessage>(&encoded).is_err());
    }
}
