//! Property tests of the core data structures' invariants.

use proptest::prelude::*;
use sdso_core::{Diff, DirtyRanges, ExchangeList, LogicalTime, ObjectId, SlottedBuffer, Version};

// ---------------------------------------------------------------------
// ExchangeList: earliest-first ordering, uniqueness, due semantics
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn exchange_list_keeps_one_entry_per_peer(
        ops in proptest::collection::vec((0u16..8, 1u64..100), 0..64)
    ) {
        let mut list = ExchangeList::new();
        let mut expected = std::collections::BTreeMap::new();
        for (peer, time) in ops {
            list.schedule(peer, LogicalTime::from_ticks(time));
            expected.insert(peer, time);
        }
        prop_assert_eq!(list.len(), expected.len());
        for (&peer, &time) in &expected {
            prop_assert_eq!(list.time_for(peer), Some(LogicalTime::from_ticks(time)));
        }
    }

    #[test]
    fn exchange_list_iterates_earliest_first(
        ops in proptest::collection::vec((0u16..16, 1u64..100), 1..64)
    ) {
        let mut list = ExchangeList::new();
        for (peer, time) in ops {
            list.schedule(peer, LogicalTime::from_ticks(time));
        }
        let times: Vec<u64> = list.iter().map(|(t, _)| t.as_ticks()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(times, sorted, "iteration must be time-ordered");
    }

    #[test]
    fn due_splits_the_list_consistently(
        ops in proptest::collection::vec((0u16..16, 1u64..100), 1..64),
        now in 0u64..120,
    ) {
        let mut list = ExchangeList::new();
        for (peer, time) in ops {
            list.schedule(peer, LogicalTime::from_ticks(time));
        }
        let now_t = LogicalTime::from_ticks(now);
        let due = list.due(now_t);
        for peer in &due {
            prop_assert!(list.time_for(*peer).unwrap() <= now_t);
        }
        let due_set: std::collections::BTreeSet<u16> = due.iter().copied().collect();
        for (time, peer) in list.iter() {
            prop_assert_eq!(time <= now_t, due_set.contains(&peer));
        }
    }

    #[test]
    fn remove_then_peek_is_consistent(
        ops in proptest::collection::vec((0u16..8, 1u64..50), 1..32),
        victim in 0u16..8,
    ) {
        let mut list = ExchangeList::new();
        for (peer, time) in &ops {
            list.schedule(*peer, LogicalTime::from_ticks(*time));
        }
        let had = list.time_for(victim).is_some();
        let removed = list.remove(victim);
        prop_assert_eq!(removed.is_some(), had);
        prop_assert_eq!(list.time_for(victim), None);
        if let Some((_, p)) = list.peek_next() {
            prop_assert_ne!(p, victim);
        }
    }
}

// ---------------------------------------------------------------------
// SlottedBuffer: merged slots reproduce sequential application
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn slotted_buffer_merging_preserves_final_state(
        writes in proptest::collection::vec((0u32..4, 0u32..16, any::<u8>()), 1..40)
    ) {
        // Apply the same write sequence (a) directly to a buffer and
        // (b) through the slotted buffer's merged diffs: results match.
        const SIZE: usize = 24;
        let mut direct = vec![vec![0u8; SIZE]; 4];
        let mut buf = SlottedBuffer::new(2, 0, true);

        for (i, &(obj, offset, byte)) in writes.iter().enumerate() {
            let offset = offset % (SIZE as u32 - 1);
            direct[obj as usize][offset as usize] = byte;
            let stamp = Version::new(LogicalTime::from_ticks(i as u64 + 1), 0);
            buf.buffer_for_all(ObjectId(obj), &Diff::single(offset, vec![byte]), stamp, &[]);
        }

        let mut via_slots = vec![vec![0u8; SIZE]; 4];
        for update in buf.drain_slot(1) {
            update.diff.apply(&mut via_slots[update.object.0 as usize]).unwrap();
        }
        prop_assert_eq!(via_slots, direct);
    }

    #[test]
    fn slotted_buffer_unmerged_replay_matches_too(
        writes in proptest::collection::vec((0u32..3, 0u32..8, any::<u8>()), 1..24)
    ) {
        const SIZE: usize = 12;
        let mut direct = vec![vec![0u8; SIZE]; 3];
        let mut buf = SlottedBuffer::new(2, 0, false);
        for (i, &(obj, offset, byte)) in writes.iter().enumerate() {
            let offset = offset % (SIZE as u32 - 1);
            direct[obj as usize][offset as usize] = byte;
            let stamp = Version::new(LogicalTime::from_ticks(i as u64 + 1), 0);
            buf.buffer_for_all(ObjectId(obj), &Diff::single(offset, vec![byte]), stamp, &[]);
        }
        let mut replayed = vec![vec![0u8; SIZE]; 3];
        for update in buf.drain_slot(1) {
            update.diff.apply(&mut replayed[update.object.0 as usize]).unwrap();
        }
        prop_assert_eq!(replayed, direct);
    }
}

// ---------------------------------------------------------------------
// Dirty-range tracking: the change-proportional diff path is
// indistinguishable from the full scan
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn tracked_diff_matches_full_scan(
        size in 16usize..192,
        writes in proptest::collection::vec((0u32..192, 1u32..24, any::<u8>()), 0..24),
    ) {
        // Apply random write spans to an image, recording each span in a
        // DirtyRanges. The range-guided diff must equal the full scan
        // byte for byte — including coalescing across span boundaries.
        let old = vec![0u8; size];
        let mut new = old.clone();
        let mut dirty = DirtyRanges::new();
        for &(off, len, byte) in &writes {
            let off = (off as usize) % size;
            let len = (len as usize).min(size - off);
            for b in &mut new[off..off + len] {
                *b = byte;
            }
            dirty.record(off as u32, len as u32);
        }
        let tracked = Diff::between_ranges(&old, &new, &dirty);
        let full = Diff::between(&old, &new);
        prop_assert_eq!(tracked, full);
    }

    #[test]
    fn tracked_diff_survives_span_overflow(
        writes in proptest::collection::vec((0u32..4096, 1u32..8), 60..120),
    ) {
        // Enough scattered writes overflow the span cap and collapse the
        // tracker to "untracked"; the diff must still be the full scan.
        const SIZE: usize = 4096;
        let old = vec![0u8; SIZE];
        let mut new = old.clone();
        let mut dirty = DirtyRanges::new();
        for &(off, len) in &writes {
            let off = (off as usize) % SIZE;
            let len = (len as usize).min(SIZE - off);
            for b in &mut new[off..off + len] {
                *b = 0xAB;
            }
            dirty.record(off as u32, len as u32);
        }
        prop_assert_eq!(
            Diff::between_ranges(&old, &new, &dirty),
            Diff::between(&old, &new)
        );
    }

    #[test]
    fn merge_in_place_is_equivalent_to_overlay_merge(
        size in 8usize..96,
        old_writes in proptest::collection::vec((0u32..96, 1u32..12, any::<u8>()), 0..12),
        new_writes in proptest::collection::vec((0u32..96, 1u32..12, any::<u8>()), 0..12),
    ) {
        // Build two well-formed diffs from random images and merge them
        // both ways: the in-place run-list merge must produce exactly the
        // diff the allocating overlay merge produces.
        let base = vec![0u8; size];
        let mut img_a = base.clone();
        for &(off, len, byte) in &old_writes {
            let off = (off as usize) % size;
            let len = (len as usize).min(size - off);
            img_a[off..off + len].fill(byte);
        }
        let mut img_b = base.clone();
        for &(off, len, byte) in &new_writes {
            let off = (off as usize) % size;
            let len = (len as usize).min(size - off);
            img_b[off..off + len].fill(byte);
        }
        let older = Diff::between(&base, &img_a);
        let newer = Diff::between(&base, &img_b);

        let overlay = older.merge(&newer);
        let mut in_place = older.clone();
        in_place.merge_in_place(&newer);
        prop_assert_eq!(in_place, overlay);
    }
}

// ---------------------------------------------------------------------
// Diff: wire fuzz — decoding arbitrary bytes never panics
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn diff_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = sdso_net::wire::decode::<Diff>(&bytes); // Err is fine, panic is not
    }

    #[test]
    fn dso_message_decode_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        let _ = sdso_net::wire::decode::<sdso_core::wire::DsoMessage>(&bytes);
    }
}

// ---------------------------------------------------------------------
// SlottedBuffer: per-peer merging is idempotent under duplicates
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn slotted_buffer_per_peer_merge_is_idempotent(
        writes in proptest::collection::vec((0u32..4, 0u32..10, any::<u8>()), 1..32),
        dup_mask in proptest::collection::vec(any::<bool>(), 32),
    ) {
        // Buffering a write twice (a duplicated delivery) must leave every
        // peer's slot with the same merged content as buffering it once:
        // overwrite diffs satisfy merge(d, d) = d, and versions take max.
        const SIZE: usize = 16;
        let mut once = SlottedBuffer::new(3, 0, true);
        let mut twice = SlottedBuffer::new(3, 0, true);
        for (i, &(obj, offset, byte)) in writes.iter().enumerate() {
            let offset = offset % (SIZE as u32 - 1);
            let stamp = Version::new(LogicalTime::from_ticks(i as u64 + 1), 0);
            let diff = Diff::single(offset, vec![byte]);
            once.buffer_for_all(ObjectId(obj), &diff, stamp, &[]);
            twice.buffer_for_all(ObjectId(obj), &diff, stamp, &[]);
            if dup_mask[i % dup_mask.len()] {
                twice.buffer_for_all(ObjectId(obj), &diff, stamp, &[]);
            }
        }
        // Slots are independent per peer: drain both remote peers and
        // compare the replayed bytes object by object.
        for peer in [1u16, 2] {
            let mut from_once = vec![vec![0u8; SIZE]; 4];
            let mut from_twice = vec![vec![0u8; SIZE]; 4];
            for u in once.drain_slot(peer) {
                u.diff.apply(&mut from_once[u.object.0 as usize]).unwrap();
            }
            let drained = twice.drain_slot(peer);
            for u in &drained {
                u.diff.apply(&mut from_twice[u.object.0 as usize]).unwrap();
            }
            prop_assert_eq!(&from_once, &from_twice, "peer {} diverged", peer);
            // Merging keeps one pending update per touched object.
            let touched: std::collections::BTreeSet<u32> =
                drained.iter().map(|u| u.object.0).collect();
            prop_assert_eq!(drained.len(), touched.len());
        }
    }
}
