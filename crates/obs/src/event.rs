//! Compact binary event records.
//!
//! The flight recorder stores one [`EventRecord`] per event: a 24-byte
//! POD with a microsecond timestamp, a one-byte kind tag and three
//! kind-specific `u32` operands. Decoding into something human-readable
//! happens only at export time; the hot path never formats or allocates.

/// What happened. The operand meaning per kind is documented on each
/// variant as `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// An `exchange` call started. `(tick, due_peers, 0)`.
    ExchangeBegin = 0,
    /// An `exchange` call finished. `(tick, updates_sent, updates_applied)`.
    ExchangeEnd = 1,
    /// A rendezvous wait started. `(tick, outstanding_peers, 0)`.
    RendezvousWaitBegin = 2,
    /// A rendezvous wait completed. `(tick, 0, 0)`.
    RendezvousWaitEnd = 3,
    /// Two diffs to one object were merged in place. `(object, 0, 0)`.
    DiffMerge = 4,
    /// A lock acquisition was requested. `(object, mode: 0=read 1=write, 0)`.
    LockAcquire = 5,
    /// A lock was granted to this node. `(object, mode, 0)`.
    LockGrant = 6,
    /// A lock was released. `(object, 0, 0)`.
    LockRelease = 7,
    /// A message left this endpoint. `(peer, class: 0=control 1=data, wire_len)`.
    Send = 8,
    /// A message was delivered to this endpoint. `(peer, class, wire_len)`.
    Recv = 9,
    /// A blocking wait timed out and triggered the resync path.
    /// `(silent_rounds, 0, 0)`.
    Resync = 10,
    /// The reliability layer retransmitted one message. `(peer, seq_lo32, 0)`.
    Retransmit = 11,
    /// The fault layer acted on a message.
    /// `(bits: 1=drop 2=dup 4=delay, 0, 0)`.
    FaultInjected = 12,
    /// A membership view change was applied. `(epoch, joined, left)`.
    ViewChange = 13,
    /// A state snapshot was pushed to a late joiner.
    /// `(peer, encoded_bytes, epoch)`.
    SnapshotSend = 14,
    /// A late joiner installed a snapshot. `(donor, objects, epoch)`.
    SnapshotInstall = 15,
    /// A transport-level peer disconnect was observed. `(peer, 0, 0)`.
    PeerDown = 16,
    /// A batched transport flush: several frames to one peer left in a
    /// single write. `(peer, msgs_in_batch, wire_bytes)`. Emitted *in
    /// addition to* the per-message `Send` events.
    BatchSend = 17,
    /// This node spawned a helper thread, or another node's worker thread
    /// was spawned on this node's behalf. `(child, role, 0)` where `child`
    /// is the spawned node/thread id and `role` tags the thread's job
    /// (see `THREAD_ROLE_*`). The spawn happens-before everything the
    /// child records.
    ThreadSpawn = 18,
    /// This node joined a previously spawned thread. `(child, role, 0)`.
    /// Everything the child recorded happens-before the join.
    ThreadJoin = 19,
    /// A shared object was read through the runtime. `(object, version_lo32, 0)`.
    ObjectRead = 20,
    /// A shared object was written through the runtime.
    /// `(object, version_lo32, bytes)`.
    ObjectWrite = 21,
    /// A record was appended (and synced) to the write-ahead log.
    /// `(record_tag, payload_bytes, wal_len_lo32)`.
    WalAppend = 22,
    /// A recovering process replayed its write-ahead log.
    /// `(records_replayed, truncated_bytes, 0)`.
    WalReplay = 23,
    /// A crashed process finished local recovery and is rejoining.
    /// `(node, epoch, records_replayed)`.
    Recover = 24,
    /// A quorum replica won a leader election. `(replica, term, 0)`.
    ElectionWon = 25,
}

/// Number of distinct event kinds (size of the per-kind counter array).
pub const KIND_COUNT: usize = 26;

/// `ThreadSpawn`/`ThreadJoin` role operand: a transport poll/reactor thread.
pub const THREAD_ROLE_REACTOR: u32 = 1;
/// `ThreadSpawn`/`ThreadJoin` role operand: a transport dialer thread.
pub const THREAD_ROLE_DIALER: u32 = 2;
/// `ThreadSpawn`/`ThreadJoin` role operand: a test/application worker
/// running another node's endpoint (the operand `a` is that node's id).
pub const THREAD_ROLE_WORKER: u32 = 3;

impl EventKind {
    /// Every kind, indexable by its `u8` value.
    pub const ALL: [EventKind; KIND_COUNT] = [
        EventKind::ExchangeBegin,
        EventKind::ExchangeEnd,
        EventKind::RendezvousWaitBegin,
        EventKind::RendezvousWaitEnd,
        EventKind::DiffMerge,
        EventKind::LockAcquire,
        EventKind::LockGrant,
        EventKind::LockRelease,
        EventKind::Send,
        EventKind::Recv,
        EventKind::Resync,
        EventKind::Retransmit,
        EventKind::FaultInjected,
        EventKind::ViewChange,
        EventKind::SnapshotSend,
        EventKind::SnapshotInstall,
        EventKind::PeerDown,
        EventKind::BatchSend,
        EventKind::ThreadSpawn,
        EventKind::ThreadJoin,
        EventKind::ObjectRead,
        EventKind::ObjectWrite,
        EventKind::WalAppend,
        EventKind::WalReplay,
        EventKind::Recover,
        EventKind::ElectionWon,
    ];

    /// Stable lower-case name used by exporters and dumps.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::ExchangeBegin => "exchange_begin",
            EventKind::ExchangeEnd => "exchange_end",
            EventKind::RendezvousWaitBegin => "rendezvous_wait_begin",
            EventKind::RendezvousWaitEnd => "rendezvous_wait_end",
            EventKind::DiffMerge => "diff_merge",
            EventKind::LockAcquire => "lock_acquire",
            EventKind::LockGrant => "lock_grant",
            EventKind::LockRelease => "lock_release",
            EventKind::Send => "send",
            EventKind::Recv => "recv",
            EventKind::Resync => "resync",
            EventKind::Retransmit => "retransmit",
            EventKind::FaultInjected => "fault",
            EventKind::ViewChange => "view_change",
            EventKind::SnapshotSend => "snapshot_send",
            EventKind::SnapshotInstall => "snapshot_install",
            EventKind::PeerDown => "peer_down",
            EventKind::BatchSend => "batch_send",
            EventKind::ThreadSpawn => "thread_spawn",
            EventKind::ThreadJoin => "thread_join",
            EventKind::ObjectRead => "object_read",
            EventKind::ObjectWrite => "object_write",
            EventKind::WalAppend => "wal_append",
            EventKind::WalReplay => "wal_replay",
            EventKind::Recover => "recover",
            EventKind::ElectionWon => "election_won",
        }
    }
}

/// Fault bit for a dropped message (`FaultInjected` operand `a`).
pub const FAULT_DROP: u32 = 1;
/// Fault bit for a duplicated message.
pub const FAULT_DUP: u32 = 2;
/// Fault bit for a delayed (held-back) message.
pub const FAULT_DELAY: u32 = 4;

/// One recorded event: timestamp, kind, three operands.
///
/// Timestamps are microseconds on the owning endpoint's clock — virtual
/// time under the simulator, monotonic wall time on real transports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Microseconds since the transport epoch.
    pub at: u64,
    /// What happened.
    pub kind: EventKind,
    /// First operand (see [`EventKind`]).
    pub a: u32,
    /// Second operand.
    pub b: u32,
    /// Third operand.
    pub c: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_dense_and_named() {
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            assert_eq!(*kind as usize, i, "ALL must be indexed by discriminant");
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn record_is_compact() {
        assert!(std::mem::size_of::<EventRecord>() <= 24);
    }
}
