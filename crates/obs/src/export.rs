//! Exporters: Chrome-trace (Perfetto-loadable) JSON and a plain-text
//! histogram dump.
//!
//! The Chrome trace format is the stable subset documented by the
//! Trace Event Format spec: `"ph":"X"` complete events carry spans,
//! `"ph":"i"` carries instants, `"ph":"M"` names tracks. One process
//! (`pid` 1) represents the cluster; each node gets its own thread
//! (`tid` = node + 1), so Perfetto shows one track per node.

use std::fmt::Write as _;

use crate::event::{EventKind, EventRecord, FAULT_DELAY, FAULT_DROP, FAULT_DUP};
use crate::registry::{bucket_upper_bound, RegistrySnapshot};

/// Renders the event rings of a cluster — `(node, events)` pairs, events
/// oldest-first — as a Chrome-trace JSON document.
///
/// Spans are reconstructed by pairing begin/end records: `exchange` from
/// `ExchangeBegin`/`ExchangeEnd`, `rendezvous_wait` from the wait pair,
/// and `lock_hold` from `LockGrant` to the matching `LockRelease` of the
/// same object. Faults, resyncs, retransmits and lock requests become
/// instants. Send/Recv records are summarized in track metadata counts
/// rather than emitted individually (they dominate event volume without
/// adding visual information at cluster scale).
pub fn chrome_trace(nodes: &[(u16, Vec<EventRecord>)]) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let emit = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };

    emit(
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"sdso cluster\"}}"
            .to_owned(),
        &mut out,
        &mut first,
    );

    for (node, events) in nodes {
        let tid = u64::from(*node) + 1;
        emit(
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"node {node}\"}}}}"
            ),
            &mut out,
            &mut first,
        );
        emit(
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{tid}}}}}"
            ),
            &mut out,
            &mut first,
        );

        // Open begin-records awaiting their end; lock holds keyed by object.
        let mut open_exchange: Option<&EventRecord> = None;
        let mut open_wait: Option<&EventRecord> = None;
        let mut open_locks: Vec<(u32, u64, u32)> = Vec::new(); // (object, ts, mode)

        for ev in events {
            match ev.kind {
                EventKind::ExchangeBegin => open_exchange = Some(ev),
                EventKind::ExchangeEnd => {
                    if let Some(begin) = open_exchange.take() {
                        emit(
                            span(
                                tid,
                                "exchange",
                                begin.at,
                                ev.at,
                                &format!(
                                    "\"tick\":{},\"due_peers\":{},\"updates_sent\":{},\
                                     \"updates_applied\":{}",
                                    begin.a, begin.b, ev.b, ev.c
                                ),
                            ),
                            &mut out,
                            &mut first,
                        );
                    }
                }
                EventKind::RendezvousWaitBegin => open_wait = Some(ev),
                EventKind::RendezvousWaitEnd => {
                    if let Some(begin) = open_wait.take() {
                        emit(
                            span(
                                tid,
                                "rendezvous_wait",
                                begin.at,
                                ev.at,
                                &format!("\"tick\":{},\"outstanding\":{}", begin.a, begin.b),
                            ),
                            &mut out,
                            &mut first,
                        );
                    }
                }
                EventKind::LockGrant => open_locks.push((ev.a, ev.at, ev.b)),
                EventKind::LockRelease => {
                    if let Some(pos) = open_locks.iter().position(|(obj, _, _)| *obj == ev.a) {
                        let (obj, begin_ts, mode) = open_locks.remove(pos);
                        emit(
                            span(
                                tid,
                                "lock_hold",
                                begin_ts,
                                ev.at,
                                &format!(
                                    "\"object\":{obj},\"mode\":\"{}\"",
                                    if mode == 0 { "read" } else { "write" }
                                ),
                            ),
                            &mut out,
                            &mut first,
                        );
                    }
                }
                EventKind::LockAcquire => emit(
                    instant(
                        tid,
                        "lock_acquire",
                        ev.at,
                        &format!(
                            "\"object\":{},\"mode\":\"{}\"",
                            ev.a,
                            if ev.b == 0 { "read" } else { "write" }
                        ),
                    ),
                    &mut out,
                    &mut first,
                ),
                EventKind::FaultInjected => emit(
                    instant(tid, "fault", ev.at, &format!("\"verdict\":\"{}\"", fault_name(ev.a))),
                    &mut out,
                    &mut first,
                ),
                EventKind::Resync => emit(
                    instant(tid, "resync", ev.at, &format!("\"silent_rounds\":{}", ev.a)),
                    &mut out,
                    &mut first,
                ),
                EventKind::Retransmit => emit(
                    instant(
                        tid,
                        "retransmit",
                        ev.at,
                        &format!("\"peer\":{},\"seq\":{}", ev.a, ev.b),
                    ),
                    &mut out,
                    &mut first,
                ),
                EventKind::DiffMerge => emit(
                    instant(tid, "diff_merge", ev.at, &format!("\"object\":{}", ev.a)),
                    &mut out,
                    &mut first,
                ),
                EventKind::ViewChange => emit(
                    instant(
                        tid,
                        "view_change",
                        ev.at,
                        &format!("\"epoch\":{},\"joined\":{},\"left\":{}", ev.a, ev.b, ev.c),
                    ),
                    &mut out,
                    &mut first,
                ),
                EventKind::SnapshotSend => emit(
                    instant(
                        tid,
                        "snapshot_send",
                        ev.at,
                        &format!("\"peer\":{},\"bytes\":{},\"epoch\":{}", ev.a, ev.b, ev.c),
                    ),
                    &mut out,
                    &mut first,
                ),
                EventKind::SnapshotInstall => emit(
                    instant(
                        tid,
                        "snapshot_install",
                        ev.at,
                        &format!("\"donor\":{},\"objects\":{},\"epoch\":{}", ev.a, ev.b, ev.c),
                    ),
                    &mut out,
                    &mut first,
                ),
                EventKind::PeerDown => emit(
                    instant(tid, "peer_down", ev.at, &format!("\"peer\":{}", ev.a)),
                    &mut out,
                    &mut first,
                ),
                EventKind::BatchSend => emit(
                    instant(
                        tid,
                        "batch_send",
                        ev.at,
                        &format!("\"peer\":{},\"msgs\":{},\"bytes\":{}", ev.a, ev.b, ev.c),
                    ),
                    &mut out,
                    &mut first,
                ),
                EventKind::ThreadSpawn => emit(
                    instant(
                        tid,
                        "thread_spawn",
                        ev.at,
                        &format!("\"child\":{},\"role\":{}", ev.a, ev.b),
                    ),
                    &mut out,
                    &mut first,
                ),
                EventKind::ThreadJoin => emit(
                    instant(
                        tid,
                        "thread_join",
                        ev.at,
                        &format!("\"child\":{},\"role\":{}", ev.a, ev.b),
                    ),
                    &mut out,
                    &mut first,
                ),
                EventKind::WalReplay => emit(
                    instant(
                        tid,
                        "wal_replay",
                        ev.at,
                        &format!("\"records\":{},\"truncated\":{}", ev.a, ev.b),
                    ),
                    &mut out,
                    &mut first,
                ),
                EventKind::Recover => emit(
                    instant(
                        tid,
                        "recover",
                        ev.at,
                        &format!("\"node\":{},\"epoch\":{},\"records\":{}", ev.a, ev.b, ev.c),
                    ),
                    &mut out,
                    &mut first,
                ),
                EventKind::ElectionWon => emit(
                    instant(
                        tid,
                        "election_won",
                        ev.at,
                        &format!("\"replica\":{},\"term\":{}", ev.a, ev.b),
                    ),
                    &mut out,
                    &mut first,
                ),
                // Like Send/Recv, per-access object events dominate volume
                // without adding visual information; the race checker reads
                // them from the event log instead.
                EventKind::Send
                | EventKind::Recv
                | EventKind::ObjectRead
                | EventKind::ObjectWrite
                | EventKind::WalAppend => {}
            }
        }
    }

    out.push_str("\n]}\n");
    out
}

/// Renders per-node event rings as the raw event-log JSON consumed by
/// `sdso-check race`: every record verbatim as a `[at, kind, a, b, c]`
/// tuple, plus the per-node drop count so the checker knows when the ring
/// truncated history (dropped prefixes weaken, but do not invalidate,
/// happens-before edges).
///
/// Each input tuple is `(node, dropped, events)`, events oldest-first.
/// The format is versioned and append-only:
///
/// ```json
/// {"version":1,"nodes":[{"node":0,"dropped":0,"events":[[12,8,1,0,64]]}]}
/// ```
pub fn event_log(nodes: &[(u16, u64, Vec<EventRecord>)]) -> String {
    let mut out = String::from("{\"version\":1,\"nodes\":[\n");
    for (i, (node, dropped, events)) in nodes.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(out, "{{\"node\":{node},\"dropped\":{dropped},\"events\":[");
        for (j, ev) in events.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            if j % 16 == 0 {
                out.push('\n');
            }
            let _ = write!(out, "[{},{},{},{},{}]", ev.at, ev.kind as u8, ev.a, ev.b, ev.c);
        }
        out.push_str("]}");
    }
    out.push_str("\n]}\n");
    out
}

fn span(tid: u64, name: &str, begin: u64, end: u64, args: &str) -> String {
    let dur = end.saturating_sub(begin);
    format!(
        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"name\":\"{name}\",\"cat\":\"sdso\",\
         \"ts\":{begin},\"dur\":{dur},\"args\":{{{args}}}}}"
    )
}

fn instant(tid: u64, name: &str, ts: u64, args: &str) -> String {
    format!(
        "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"name\":\"{name}\",\"cat\":\"sdso\",\
         \"ts\":{ts},\"s\":\"t\",\"args\":{{{args}}}}}"
    )
}

fn fault_name(bits: u32) -> &'static str {
    if bits & FAULT_DROP != 0 {
        "drop"
    } else if bits & FAULT_DUP != 0 {
        "duplicate"
    } else if bits & FAULT_DELAY != 0 {
        "delay"
    } else {
        "deliver"
    }
}

/// Renders every histogram in a registry snapshot as an aligned
/// plain-text dump with count, mean, percentiles and per-bucket bars.
pub fn text_histogram_dump(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, h) in &snapshot.histograms {
        let _ = writeln!(
            out,
            "{name}: count={} mean={:.1} p50<={} p90<={} p99<={}",
            h.count,
            h.mean(),
            h.percentile(50.0),
            h.percentile(90.0),
            h.percentile(99.0),
        );
        let max = h.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (i, &n) in h.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let bar_len = (n * 40).div_ceil(max) as usize;
            let _ = writeln!(
                out,
                "  <= {:>20}  {:>8}  {}",
                bucket_upper_bound(i),
                n,
                "#".repeat(bar_len)
            );
        }
        out.push('\n');
    }
    if out.is_empty() {
        out.push_str("(no histograms recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Histogram;

    fn ev(at: u64, kind: EventKind, a: u32, b: u32, c: u32) -> EventRecord {
        EventRecord { at, kind, a, b, c }
    }

    #[test]
    fn trace_pairs_spans_and_names_tracks() {
        let events = vec![
            ev(100, EventKind::ExchangeBegin, 1, 3, 0),
            ev(110, EventKind::RendezvousWaitBegin, 1, 3, 0),
            ev(150, EventKind::RendezvousWaitEnd, 1, 0, 0),
            ev(160, EventKind::ExchangeEnd, 1, 2, 5),
            ev(200, EventKind::LockGrant, 7, 1, 0),
            ev(260, EventKind::LockRelease, 7, 0, 0),
            ev(300, EventKind::FaultInjected, FAULT_DROP, 0, 0),
            ev(310, EventKind::BatchSend, 2, 3, 6144),
        ];
        let json = chrome_trace(&[(4, events)]);
        assert!(json.contains("\"name\":\"node 4\""));
        assert!(json.contains("\"name\":\"exchange\""));
        assert!(json.contains("\"ts\":100,\"dur\":60"));
        assert!(json.contains("\"name\":\"rendezvous_wait\""));
        assert!(json.contains("\"name\":\"lock_hold\""));
        assert!(json.contains("\"mode\":\"write\""));
        assert!(json.contains("\"verdict\":\"drop\""));
        assert!(json.contains("\"name\":\"batch_send\""));
        assert!(json.contains("\"msgs\":3,\"bytes\":6144"));
        // Structural sanity: balanced braces/brackets means parseable JSON
        // for this escape-free subset.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn unmatched_begin_records_do_not_break_export() {
        let events = vec![ev(10, EventKind::ExchangeBegin, 0, 1, 0)];
        let json = chrome_trace(&[(0, events)]);
        assert!(!json.contains("\"name\":\"exchange\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn event_log_round_trips_records_verbatim() {
        let events = vec![
            ev(12, EventKind::Send, 1, 0, 64),
            ev(15, EventKind::ThreadSpawn, 3, 3, 0),
            ev(20, EventKind::ObjectWrite, 7, 2, 128),
        ];
        let json = event_log(&[(0, 0, events), (1, 5, Vec::new())]);
        assert!(json.starts_with("{\"version\":1"));
        assert!(json.contains("\"node\":0,\"dropped\":0"));
        assert!(json.contains("\"node\":1,\"dropped\":5"));
        assert!(json.contains("[12,8,1,0,64]"));
        assert!(json.contains("[15,18,3,3,0]"));
        assert!(json.contains("[20,21,7,2,128]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn histogram_dump_lists_percentiles() {
        let reg = crate::registry::MetricsRegistry::new();
        let h: Histogram = reg.histogram("net.wire_bytes");
        for v in [10u64, 20, 300, 4000] {
            h.observe(v);
        }
        let dump = text_histogram_dump(&reg.snapshot());
        assert!(dump.contains("net.wire_bytes"));
        assert!(dump.contains("count=4"));
        assert!(dump.contains("p99<="));
        assert!(dump.contains('#'));
    }
}
