//! `sdso-obs` — the observability substrate for the S-DSO reproduction.
//!
//! Four parts, matching the evaluation needs of the paper's §4.1:
//!
//! 1. **Flight recorder** ([`Recorder`]): per-node fixed-capacity rings of
//!    compact binary [`EventRecord`]s, gated by an atomic [`TraceMode`] so
//!    the disabled path costs one relaxed load.
//! 2. **Metrics registry** ([`MetricsRegistry`]): labeled [`Counter`]s and
//!    log₂-bucket [`Histogram`]s with mergeable snapshots; `DsoMetrics`
//!    and `NetMetrics` in the upper crates are thin views over it.
//! 3. **Exporters** ([`chrome_trace`], [`text_histogram_dump`]): a
//!    Perfetto-loadable Chrome trace of a cluster run and a plain-text
//!    histogram dump.
//! 4. The perf-regression runner in `sdso-bench` builds on the three
//!    above to emit and check `BENCH_<k>.json` baselines.
//!
//! The crate is dependency-free and sits below `sdso-net` in the crate
//! graph so every layer can record into it.

#![warn(missing_docs)]

mod clock;
mod event;
mod export;
mod recorder;
mod registry;

pub use clock::MonoClock;
pub use event::{
    EventKind, EventRecord, FAULT_DELAY, FAULT_DROP, FAULT_DUP, KIND_COUNT, THREAD_ROLE_DIALER,
    THREAD_ROLE_REACTOR, THREAD_ROLE_WORKER,
};
pub use export::{chrome_trace, event_log, text_histogram_dump};
pub use recorder::{Recorder, TraceConfig, TraceMode};
pub use registry::{
    bucket_upper_bound, Counter, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
    BUCKETS,
};

use std::sync::Arc;

/// One node's observability bundle: its flight recorder plus the metrics
/// registry it records into. Cheap to clone; clones share state.
#[derive(Debug, Clone)]
pub struct Obs {
    recorder: Recorder,
    registry: MetricsRegistry,
}

impl Obs {
    /// Observability for `node` with the given trace configuration and a
    /// fresh private registry.
    pub fn new(node: u16, config: TraceConfig) -> Self {
        Obs { recorder: Recorder::new(node, config), registry: MetricsRegistry::new() }
    }

    /// Observability that records nothing (the default for library users
    /// who never opt in). Counters still work — they are how the thin
    /// `DsoMetrics`/`NetMetrics` views are backed — but no events are
    /// traced.
    pub fn disabled() -> Self {
        Obs { recorder: Recorder::disabled(), registry: MetricsRegistry::new() }
    }

    /// The node's flight recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The node's metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Shorthand for recording into the flight recorder.
    #[inline]
    pub fn record(&self, at: u64, kind: EventKind, a: u32, b: u32, c: u32) {
        self.recorder.record(at, kind, a, b, c);
    }
}

/// Observability for a whole cluster: one [`Obs`] per node, constructed
/// up front so a harness can hand node `i` its bundle inside the spawned
/// closure and still hold the full set for export afterwards.
#[derive(Debug, Clone)]
pub struct ObsSet {
    nodes: Arc<Vec<Obs>>,
}

impl ObsSet {
    /// A set of `n` per-node bundles sharing one trace configuration.
    pub fn new(n: u16, config: TraceConfig) -> Self {
        ObsSet { nodes: Arc::new((0..n).map(|i| Obs::new(i, config)).collect()) }
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the set holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The bundle for `node`. Panics if out of range.
    pub fn node(&self, node: u16) -> Obs {
        self.nodes[node as usize].clone()
    }

    /// Per-node event rings, oldest-first, ready for [`chrome_trace`].
    pub fn events(&self) -> Vec<(u16, Vec<EventRecord>)> {
        self.nodes.iter().map(|obs| (obs.recorder().node(), obs.recorder().events())).collect()
    }

    /// A Chrome-trace JSON document covering every node in the set.
    pub fn chrome_trace(&self) -> String {
        chrome_trace(&self.events())
    }

    /// The raw event-log JSON for `sdso-check race`: every node's ring
    /// verbatim plus its drop count.
    pub fn event_log(&self) -> String {
        let nodes: Vec<(u16, u64, Vec<EventRecord>)> = self
            .nodes
            .iter()
            .map(|obs| (obs.recorder().node(), obs.recorder().dropped(), obs.recorder().events()))
            .collect();
        event_log(&nodes)
    }

    /// The union of every node's registry snapshot.
    pub fn merged_snapshot(&self) -> RegistrySnapshot {
        self.nodes
            .iter()
            .map(|obs| obs.registry().snapshot())
            .fold(RegistrySnapshot::default(), |acc, s| acc.merged(&s))
    }

    /// Total events recorded across all nodes' recorders.
    pub fn total_events(&self) -> u64 {
        self.nodes.iter().map(|obs| obs.recorder().total_events()).sum()
    }

    /// Total events evicted across all nodes' rings.
    pub fn total_dropped(&self) -> u64 {
        self.nodes.iter().map(|obs| obs.recorder().dropped()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_set_hands_out_per_node_bundles() {
        let set = ObsSet::new(3, TraceConfig::full());
        set.node(1).record(5, EventKind::Resync, 0, 0, 0);
        assert_eq!(set.node(1).recorder().total_events(), 1);
        assert_eq!(set.node(0).recorder().total_events(), 0);
        assert_eq!(set.total_events(), 1);
        let events = set.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[1].0, 1);
        assert_eq!(events[1].1.len(), 1);
    }

    #[test]
    fn merged_snapshot_sums_across_nodes() {
        let set = ObsSet::new(2, TraceConfig::off());
        set.node(0).registry().counter("dso.exchanges").add(3);
        set.node(1).registry().counter("dso.exchanges").add(4);
        assert_eq!(set.merged_snapshot().counter("dso.exchanges"), 7);
    }
}
