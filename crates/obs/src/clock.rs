//! Monotonic wall-clock timestamping for real (non-deterministic)
//! transports.
//!
//! This module is the single place in the workspace where observability
//! code may read the host clock: the deterministic sim stamps events with
//! virtual time from its scheduler, while `TcpEndpoint`/`MemoryEndpoint`
//! stamp with a [`MonoClock`]. The `sdso-check` wall-clock lint scopes
//! `crates/obs` and allowlists exactly this file.

use std::time::Instant;

/// Microseconds elapsed since a fixed epoch, read from the host's
/// monotonic clock. Cheap to clone; clones share the epoch.
#[derive(Debug, Clone, Copy)]
pub struct MonoClock {
    epoch: Instant,
}

impl MonoClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        MonoClock { epoch: Instant::now() }
    }

    /// Microseconds since the epoch.
    pub fn micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

impl Default for MonoClock {
    fn default() -> Self {
        MonoClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let clock = MonoClock::new();
        let a = clock.micros();
        let b = clock.micros();
        assert!(b >= a);
    }

    #[test]
    fn clones_share_the_epoch() {
        let clock = MonoClock::new();
        let clone = clock;
        // Both readings come from the same epoch, so they stay within the
        // time that elapsed between the two calls (generous bound).
        let a = clock.micros();
        let b = clone.micros();
        assert!(b.abs_diff(a) < 1_000_000);
    }
}
