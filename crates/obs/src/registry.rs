//! Unified metrics registry: labeled counters and log₂-bucket histograms
//! with mergeable snapshots.
//!
//! The registry is the successor of the ad-hoc `DsoMetrics`/`NetMetrics`
//! structs: every layer allocates its counters and histograms here under a
//! dotted name (`net.data.sent.msgs`, `dso.exchange_micros`, …), and the
//! harness takes [`RegistrySnapshot`]s that merge across nodes and runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one per power of two a `u64` can hold,
/// plus a dedicated zero bucket.
pub const BUCKETS: usize = 65;

/// A shared monotonically-increasing counter handle.
///
/// Cloning shares the underlying cell, so a counter can be handed to the
/// hot path while the registry keeps a reference for snapshotting.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh zero counter (unregistered).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared log₂-bucket histogram handle for latencies and sizes.
///
/// Value `v` lands in bucket `0` when `v == 0` and bucket
/// `64 - v.leading_zeros()` otherwise, i.e. bucket `i > 0` covers
/// `[2^(i-1), 2^i - 1]`. Elementwise-additive buckets make merging
/// associative and commutative by construction.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: [(); BUCKETS].map(|()| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// A fresh empty histogram (unregistered).
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; BUCKETS];
        for (slot, b) in buckets.iter_mut().zip(&self.inner.buckets) {
            *slot = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.inner.count.load(Ordering::Relaxed),
            sum: self.inner.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`buckets[0]` is the zero bucket).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Elementwise sum of two snapshots. Saturating, which keeps the
    /// operation associative and commutative even at the `u64` ceiling.
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let len = self.buckets.len().max(other.buckets.len());
        let mut buckets = vec![0u64; len];
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self
                .buckets
                .get(i)
                .copied()
                .unwrap_or(0)
                .saturating_add(other.buckets.get(i).copied().unwrap_or(0));
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_add(other.count),
            sum: self.sum.saturating_add(other.sum),
        }
    }

    /// Upper-bound estimate of the `p`-th percentile (0.0–100.0): the
    /// inclusive upper edge of the bucket holding that rank. Returns 0 for
    /// an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(self.buckets.len().saturating_sub(1))
    }

    /// Mean of all observations (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Inclusive upper edge of bucket `i`: 0 for the zero bucket, otherwise
/// `2^i - 1`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of counters and histograms.
///
/// `counter`/`histogram` are get-or-create, so independent layers can bind
/// the same name and share the cell — that is how `NetMetrics` for a
/// faulty wrapper and its inner endpoint aggregate without plumbing.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// A fresh empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter named `name`, creating it at zero if absent.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.counters.entry(name.to_owned()).or_default().clone()
    }

    /// Returns the histogram named `name`, creating it empty if absent.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.histograms.entry(name.to_owned()).or_default().clone()
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        RegistrySnapshot {
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: inner.histograms.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
        }
    }
}

/// An owned, mergeable copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Merges two snapshots: counters add, histograms merge elementwise.
    pub fn merged(&self, other: &RegistrySnapshot) -> RegistrySnapshot {
        let mut out = self.clone();
        for (k, v) in &other.counters {
            *out.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            let slot = out.histograms.entry(k.clone()).or_default();
            *slot = slot.merged(h);
        }
        out
    }

    /// Counter value by name, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_indices_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn registry_get_or_create_shares_cells() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counter("x"), 3);
    }

    #[test]
    fn percentiles_bound_observations() {
        let h = Histogram::new();
        for v in [3u64, 5, 9, 100, 1000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert!(snap.percentile(50.0) >= 9);
        assert!(snap.percentile(100.0) >= 1000);
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1117);
        assert!((snap.mean() - 223.4).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_percentile_is_zero() {
        assert_eq!(HistogramSnapshot::default().percentile(99.0), 0);
    }

    fn snap_from(values: &[u64]) -> HistogramSnapshot {
        let h = Histogram::new();
        for &v in values {
            h.observe(v);
        }
        h.snapshot()
    }

    proptest! {
        #[test]
        fn histogram_merge_is_commutative(
            xs in proptest::collection::vec(any::<u64>(), 0..64),
            ys in proptest::collection::vec(any::<u64>(), 0..64),
        ) {
            let (a, b) = (snap_from(&xs), snap_from(&ys));
            prop_assert_eq!(a.merged(&b), b.merged(&a));
        }

        #[test]
        fn histogram_merge_is_associative(
            xs in proptest::collection::vec(any::<u64>(), 0..32),
            ys in proptest::collection::vec(any::<u64>(), 0..32),
            zs in proptest::collection::vec(any::<u64>(), 0..32),
        ) {
            let (a, b, c) = (snap_from(&xs), snap_from(&ys), snap_from(&zs));
            prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
        }

        #[test]
        fn merge_preserves_count_and_sum(
            xs in proptest::collection::vec(0u64..1_000_000, 0..64),
            ys in proptest::collection::vec(0u64..1_000_000, 0..64),
        ) {
            let merged = snap_from(&xs).merged(&snap_from(&ys));
            prop_assert_eq!(merged.count, (xs.len() + ys.len()) as u64);
            prop_assert_eq!(merged.sum, xs.iter().sum::<u64>() + ys.iter().sum::<u64>());
        }
    }
}
