//! The lock-light flight recorder.
//!
//! One [`Recorder`] per node. Recording is gated by an atomic mode flag:
//! with tracing [`TraceMode::Off`] the whole record path is a single
//! relaxed load and a branch, so instrumented code can stay instrumented
//! in production builds. [`TraceMode::Counters`] additionally bumps one
//! per-kind atomic counter; [`TraceMode::Full`] also appends the record to
//! a fixed-capacity ring buffer that drops oldest-first under pressure and
//! counts what it dropped.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{EventKind, EventRecord, KIND_COUNT};

/// How much the recorder records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record nothing; the record path is one atomic load.
    #[default]
    Off,
    /// Per-kind event counters only — no per-event storage.
    Counters,
    /// Counters plus the full event ring.
    Full,
}

const MODE_OFF: u8 = 0;
const MODE_COUNTERS: u8 = 1;
const MODE_FULL: u8 = 2;

impl TraceMode {
    fn as_u8(self) -> u8 {
        match self {
            TraceMode::Off => MODE_OFF,
            TraceMode::Counters => MODE_COUNTERS,
            TraceMode::Full => MODE_FULL,
        }
    }
}

/// Recorder configuration: mode plus ring capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// How much to record.
    pub mode: TraceMode,
    /// Ring capacity in events (only relevant in [`TraceMode::Full`]).
    pub capacity: usize,
}

impl TraceConfig {
    /// Tracing disabled (the production default).
    pub fn off() -> Self {
        TraceConfig { mode: TraceMode::Off, capacity: 0 }
    }

    /// Counters only, no event storage.
    pub fn counters() -> Self {
        TraceConfig { mode: TraceMode::Counters, capacity: 0 }
    }

    /// Full event recording with the default ring capacity (64 Ki events
    /// per node — 1.5 MiB — which comfortably holds a 16-process,
    /// 200-tick evaluation run).
    pub fn full() -> Self {
        TraceConfig { mode: TraceMode::Full, capacity: 64 * 1024 }
    }

    /// Full recording with an explicit ring capacity.
    pub fn full_with_capacity(capacity: usize) -> Self {
        TraceConfig { mode: TraceMode::Full, capacity: capacity.max(1) }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

#[derive(Debug)]
struct Shared {
    node: u16,
    mode: AtomicU8,
    capacity: usize,
    counts: [AtomicU64; KIND_COUNT],
    dropped: AtomicU64,
    ring: Mutex<VecDeque<EventRecord>>,
}

/// A per-node flight recorder handle. Cloning shares the underlying
/// buffers, so a recorder can be attached to an endpoint, a runtime and a
/// protocol layer at once.
#[derive(Debug, Clone)]
pub struct Recorder {
    shared: Arc<Shared>,
}

impl Recorder {
    /// Creates a recorder for `node` with the given configuration.
    pub fn new(node: u16, config: TraceConfig) -> Self {
        Recorder {
            shared: Arc::new(Shared {
                node,
                mode: AtomicU8::new(config.mode.as_u8()),
                capacity: config.capacity.max(1),
                counts: [(); KIND_COUNT].map(|()| AtomicU64::new(0)),
                dropped: AtomicU64::new(0),
                ring: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// A recorder that records nothing (mode [`TraceMode::Off`]).
    pub fn disabled() -> Self {
        Recorder::new(0, TraceConfig::off())
    }

    /// The node this recorder belongs to.
    pub fn node(&self) -> u16 {
        self.shared.node
    }

    /// Switches the recording mode at runtime.
    pub fn set_mode(&self, mode: TraceMode) {
        self.shared.mode.store(mode.as_u8(), Ordering::Relaxed);
    }

    /// True unless the mode is [`TraceMode::Off`].
    pub fn enabled(&self) -> bool {
        self.shared.mode.load(Ordering::Relaxed) != MODE_OFF
    }

    /// Records one event. With tracing off this is one relaxed atomic load.
    #[inline]
    pub fn record(&self, at: u64, kind: EventKind, a: u32, b: u32, c: u32) {
        let mode = self.shared.mode.load(Ordering::Relaxed);
        if mode == MODE_OFF {
            return;
        }
        self.shared.counts[kind as usize].fetch_add(1, Ordering::Relaxed);
        if mode == MODE_FULL {
            self.push(EventRecord { at, kind, a, b, c });
        }
    }

    fn push(&self, rec: EventRecord) {
        let mut ring = self.shared.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.len() >= self.shared.capacity {
            // Drop oldest-first so the tail of a run — usually the part
            // being debugged — survives, and account for the loss.
            ring.pop_front();
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(rec);
    }

    /// Events recorded per kind (live in all modes but `Off`).
    pub fn counts(&self) -> [u64; KIND_COUNT] {
        let mut out = [0u64; KIND_COUNT];
        for (slot, counter) in out.iter_mut().zip(&self.shared.counts) {
            *slot = counter.load(Ordering::Relaxed);
        }
        out
    }

    /// Total events recorded across all kinds.
    pub fn total_events(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// Events evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// A copy of the ring's current contents, oldest first.
    pub fn events(&self) -> Vec<EventRecord> {
        let ring = self.shared.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        ring.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_mode_records_nothing() {
        let r = Recorder::new(3, TraceConfig::off());
        r.record(10, EventKind::Send, 1, 1, 64);
        assert_eq!(r.total_events(), 0);
        assert!(r.events().is_empty());
        assert!(!r.enabled());
    }

    #[test]
    fn counters_mode_counts_without_storing() {
        let r = Recorder::new(3, TraceConfig::counters());
        r.record(10, EventKind::Send, 1, 1, 64);
        r.record(11, EventKind::Send, 1, 0, 32);
        r.record(12, EventKind::Recv, 0, 1, 64);
        assert_eq!(r.counts()[EventKind::Send as usize], 2);
        assert_eq!(r.counts()[EventKind::Recv as usize], 1);
        assert!(r.events().is_empty(), "counters mode keeps no event bodies");
    }

    #[test]
    fn full_mode_drops_oldest_first_at_capacity_and_counts_drops() {
        let r = Recorder::new(0, TraceConfig::full_with_capacity(4));
        for i in 0..10u32 {
            r.record(u64::from(i), EventKind::DiffMerge, i, 0, 0);
        }
        let events = r.events();
        assert_eq!(events.len(), 4, "ring capped at capacity");
        // The survivors are the *newest* four, in order: 6, 7, 8, 9.
        assert_eq!(events.iter().map(|e| e.a).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(r.dropped(), 6, "evictions are accounted");
        assert_eq!(r.counts()[EventKind::DiffMerge as usize], 10, "counters see every event");
    }

    #[test]
    fn mode_can_change_at_runtime() {
        let r = Recorder::new(0, TraceConfig::off());
        r.record(1, EventKind::Resync, 0, 0, 0);
        r.set_mode(TraceMode::Full);
        r.record(2, EventKind::Resync, 1, 0, 0);
        assert_eq!(r.total_events(), 1);
        assert_eq!(r.events().len(), 1);
    }

    #[test]
    fn clones_share_state() {
        let r = Recorder::new(7, TraceConfig::full());
        let r2 = r.clone();
        r2.record(5, EventKind::LockGrant, 42, 1, 0);
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.node(), r2.node());
    }
}
